"""Extension — observability overhead and fidelity.

The telemetry layer promises two things at once: it is *free to ignore*
(telemetry off takes bit-identical code paths to the seed) and it is
*honest when on* (enabling tracing, the metrics registry, SLO tracking
and the sampler changes no simulated result, because every instrument is
a view over state the simulation already maintains).  Three checks:

1. **Off is bit-identical** — ``telemetry=None`` and a default
   (disabled) ``TelemetryConfig`` both reproduce the seed's
   ``RunMetrics`` exactly.
2. **On is observer-neutral** — a fully enabled session (trace + SLO +
   monitor) still yields bit-identical ``RunMetrics``, while the
   registry's completion counter matches the collector's and the
   streaming histogram's p99 lands within one geometric bucket of the
   exact-sample p99.
3. **The trace shows real concurrency** — the exported Perfetto events
   contain a dynamic batch as one shared inference slice flow-linked
   from >= 2 member requests, with queue spans overlapping other
   requests' compute.
"""

import pytest

from repro.core import ServerConfig
from repro.serving import ExperimentConfig, run_experiment
from repro.telemetry import SloConfig, TelemetryConfig, parse_prometheus_text

SERVER = ServerConfig(model="resnet-50")
LOAD = dict(concurrency=64, warmup_requests=300, measure_requests=1500, seed=0)

FULL_TELEMETRY = TelemetryConfig(
    enabled=True,
    trace=True,
    trace_limit=4000,
    slo=SloConfig(latency_objective_seconds=0.2, target=0.99),
    monitor_interval_seconds=0.005,
)


@pytest.mark.figure("ext-telemetry")
def test_telemetry_off_is_bit_identical(run_once):
    def sweep():
        base = run_experiment(ExperimentConfig(server=SERVER, **LOAD))
        off = run_experiment(
            ExperimentConfig(server=SERVER, telemetry=None, **LOAD)
        )
        disabled = run_experiment(
            ExperimentConfig(server=SERVER, telemetry=TelemetryConfig(), **LOAD)
        )
        return base, off, disabled

    base, off, disabled = run_once(sweep)
    assert off.metrics == base.metrics
    assert disabled.metrics == base.metrics
    assert off.telemetry is None and disabled.telemetry is None
    print("\ntelemetry off: metrics bit-identical to seed path")
    print(base.summary())


@pytest.mark.figure("ext-telemetry")
def test_enabled_telemetry_is_observer_neutral(run_once):
    def sweep():
        base = run_experiment(ExperimentConfig(server=SERVER, **LOAD))
        traced = run_experiment(
            ExperimentConfig(server=SERVER, telemetry=FULL_TELEMETRY, **LOAD)
        )
        return base, traced

    base, traced = run_once(sweep)
    assert traced.metrics == base.metrics

    session = traced.telemetry
    snap = session.snapshots[-1]
    completed = snap.metric("repro_requests_completed_total")["samples"][0]["value"]
    assert completed >= base.metrics.completed

    # Streaming histogram p99 within one geometric bucket of the exact p99.
    histogram = session.latency
    exact = sorted(
        request.latency
        for request in session.tracer.requests
        if request.completion_time is not None
    )
    exact_p99 = exact[int(0.99 * len(exact)) - 1]
    index = histogram._index(exact_p99)
    width = histogram.bound(index) - (histogram.bound(index - 1) if index else 0.0)
    assert abs(histogram.quantile(0.99) - exact_p99) <= width

    # The Prometheus exposition round-trips through the parser.
    families = parse_prometheus_text(session.prometheus_text())
    assert families["repro_requests_completed_total"]["samples"][0]["value"] == completed
    assert families["repro_request_latency_seconds"]["kind"] == "histogram"

    report = session.slo_report()
    print("\ntelemetry on: observer-neutral (RunMetrics bit-identical)")
    print(f"registry families : {len(session.registry)}")
    print(f"traced requests   : {len(session.tracer.requests)}")
    print(f"p99 exact/estimate: {exact_p99 * 1e3:.2f} / "
          f"{histogram.quantile(0.99) * 1e3:.2f} ms")
    print(f"SLO compliance    : {report.compliance * 100:.2f}% "
          f"({'met' if report.met else 'missed'})")


@pytest.mark.figure("ext-telemetry")
def test_trace_shows_shared_batches_and_overlap(run_once):
    from repro.analysis.tracing import PID_DEVICES, PID_REQUESTS

    def sweep():
        result = run_experiment(
            ExperimentConfig(server=SERVER, telemetry=FULL_TELEMETRY, **LOAD)
        )
        session = result.telemetry
        return session.tracer.trace_events(monitor=session.monitor)

    events = run_once(sweep)
    shared = [
        e
        for e in events
        if e["ph"] == "X"
        and e["pid"] == PID_DEVICES
        and "inference" in e["name"]
        and len(e["args"].get("requests", [])) >= 2
    ]
    assert shared, "expected >= 1 dynamic batch as a shared inference slice"
    flow_tids = {e["tid"] for e in events if e["ph"] == "s"}
    members = shared[0]["args"]["requests"]
    assert all(rid in flow_tids for rid in members)

    request_slices = [
        e for e in events if e["ph"] == "X" and e["pid"] == PID_REQUESTS
    ]
    queues = [e for e in request_slices if e["args"].get("kind") == "queue"]
    computes = [e for e in request_slices if e["args"].get("kind") == "compute"]

    def overlaps(a, b):
        return a["ts"] < b["ts"] + b["dur"] and b["ts"] < a["ts"] + a["dur"]

    assert any(
        c["tid"] != q["tid"] and overlaps(q, c) for q in queues for c in computes
    ), "queue spans must overlap other requests' compute in a loaded trace"
    largest = max(len(e["args"]["requests"]) for e in shared)
    print(f"\nshared inference slices: {len(shared)} (largest batch {largest})")
    print(f"trace events: {len(events)}")
