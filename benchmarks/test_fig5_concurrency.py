"""Fig. 5 — throughput, latency, and queue time vs concurrency.

Paper (Sec. 4.3): as concurrency grows, throughput and latency both
rise; GPU preprocessing gives higher throughput and lower latency than
CPU preprocessing, but *declines* at very high concurrency as GPU
memory saturates and queued tensors are evicted/reloaded, whereas CPU
preprocessing saturates flat (host RAM buffers).  Queue time grows to
~3 s at 4096 concurrency and accounts for 34-91% of latency at the
optimal concurrencies (64-512).
"""

import pytest

from repro.analysis import ClaimSet, format_rate, format_table
from repro.core import ServerConfig
from repro.serving import ExperimentConfig, run_experiment
from repro.vision import reference_dataset

CONCURRENCIES = (1, 16, 64, 256, 1024, 2048, 4096)
MODEL = "resnet-50"
DATASET = reference_dataset("medium")


def run_concurrency_sweep():
    data = {}
    for device in ("cpu", "gpu"):
        series = []
        for concurrency in CONCURRENCIES:
            result = run_experiment(
                ExperimentConfig(
                    server=ServerConfig(
                        model=MODEL,
                        preprocess_device=device,
                        preprocess_batch_size=64,
                    ),
                    dataset=DATASET,
                    concurrency=concurrency,
                    warmup_requests=max(400, concurrency),
                    measure_requests=max(2000, 2 * concurrency),
                )
            )
            queue = result.metrics.span_mean("queue") + result.metrics.span_mean(
                "preprocess_wait"
            )
            series.append(
                {
                    "concurrency": concurrency,
                    "throughput": result.throughput,
                    "latency": result.mean_latency,
                    "queue": queue,
                    "queue_fraction": queue / result.mean_latency,
                    "evictions": result.metrics.eviction_count,
                }
            )
        data[device] = series
    return data


@pytest.mark.figure("fig5")
def test_fig5_concurrency(run_once):
    data = run_once(run_concurrency_sweep)

    rows = []
    for device in ("cpu", "gpu"):
        for point in data[device]:
            rows.append(
                [
                    device,
                    str(point["concurrency"]),
                    format_rate(point["throughput"]),
                    f"{point['latency'] * 1e3:.1f} ms",
                    f"{point['queue'] * 1e3:.1f} ms",
                    f"{point['queue_fraction'] * 100:.0f}%",
                    str(point["evictions"]),
                ]
            )
    print(
        "\n"
        + format_table(
            ["preproc", "concurrency", "img/s", "avg latency", "queue", "queue %", "evictions"],
            rows,
            title=f"Fig. 5 — {MODEL} at different concurrencies",
        )
    )

    cpu = {p["concurrency"]: p for p in data["cpu"]}
    gpu = {p["concurrency"]: p for p in data["gpu"]}

    # Throughput grows with concurrency then saturates (both devices).
    for series in (data["cpu"], data["gpu"]):
        assert series[0]["throughput"] < series[2]["throughput"] < max(
            p["throughput"] for p in series
        ) * 1.01
        # Latency rises monotonically with concurrency past saturation.
        assert series[-1]["latency"] > series[2]["latency"] > series[0]["latency"]

    # GPU preprocessing peaks higher than CPU preprocessing.
    gpu_peak = max(p["throughput"] for p in data["gpu"])
    cpu_peak = max(p["throughput"] for p in data["cpu"])
    assert gpu_peak > cpu_peak, "GPU preprocessing provides higher throughput"

    # ...and declines at very high concurrency due to GPU-memory
    # eviction, while CPU preprocessing saturates flat.
    assert gpu[4096]["throughput"] < 0.9 * gpu_peak, "GPU preproc declines at 4096"
    assert gpu[4096]["evictions"] > 0, "the decline is driven by evictions"
    assert cpu[4096]["throughput"] > 0.95 * cpu_peak, "CPU preproc saturates"
    assert cpu[4096]["evictions"] == 0

    # Queue time dominates at high concurrency.
    claims = ClaimSet("Fig. 5")
    claims.check(
        "queue seconds at 4096 concurrency (paper: up to ~3 s)",
        3.0,
        max(cpu[4096]["queue"], gpu[4096]["queue"]),
        unit="s",
        rel_tolerance=0.8,
    )
    optimal = [cpu[64], cpu[256], gpu[64], gpu[256]]
    claims.check(
        "min queue share at optimal concurrency (paper: 34%)",
        0.34,
        min(p["queue_fraction"] for p in optimal),
        rel_tolerance=1.0,
    )
    claims.check(
        "max queue share at optimal concurrency (paper: 91%)",
        0.91,
        max(p["queue_fraction"] for p in optimal),
        rel_tolerance=0.3,
    )
    print(claims.render())

    # Queueing accounts for an increasing share of latency.
    for series in (data["cpu"], data["gpu"]):
        assert series[-1]["queue_fraction"] > series[1]["queue_fraction"]
    assert claims.all_within_tolerance, "\n" + claims.render()
