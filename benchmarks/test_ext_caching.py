"""Extension — content-aware caching under Zipf request popularity.

The paper serves a unique-image stream, so every request pays decode +
resize/normalize + H2D + DNN.  Production streams are skewed: a small
set of popular images covers most requests.  This benchmark measures
what the :mod:`repro.cache` hierarchy buys on such a stream.  Three
checks:

1. **Zero cost when off** — with ``cache=None`` (and with a disabled
   ``CacheConfig``) the server takes *bit-identical* code paths to the
   seed, so every paper-figure number is unchanged.
2. **Warm caches beat cold pipelines** — under Zipf(s=1.0) the decoded
   -image + tensor tiers materially raise throughput and cut the mean
   preprocess+transfer stage time; hit rates and eviction counters are
   reported through ``RunMetrics.to_dict()``.
3. **Skew scales the win** — the cached speedup grows with the Zipf
   exponent (more skew, more reuse), and hit fractions track the
   analytic top-of-catalog mass of the distribution.
"""

import pytest

from repro.analysis import cache_summary, format_table
from repro.cache import CacheConfig
from repro.core import ServerConfig
from repro.serving import ExperimentConfig, run_experiment
from repro.vision import ImageNetLikeDataset, ZipfDataset

MIB = float(1024 * 1024)
SERVER = ServerConfig(model="resnet-50")
LOAD = dict(concurrency=64, warmup_requests=300, measure_requests=1500, seed=0)


def _zipf(skew: float, catalog_size: int = 200, seed: int = 0) -> ZipfDataset:
    return ZipfDataset(
        ImageNetLikeDataset(), catalog_size=catalog_size, skew=skew, seed=seed
    )


def _cached_server(**tiers) -> ServerConfig:
    return SERVER.with_overrides(cache=CacheConfig(**tiers))


@pytest.mark.figure("ext-caching")
def test_caching_off_is_bit_identical(run_once):
    def sweep():
        dataset = _zipf(1.0)
        base = run_experiment(ExperimentConfig(server=SERVER, dataset=dataset, **LOAD))
        off = run_experiment(
            ExperimentConfig(
                server=SERVER.with_overrides(cache=None), dataset=dataset, **LOAD
            )
        )
        disabled = run_experiment(
            ExperimentConfig(
                server=SERVER.with_overrides(
                    cache=CacheConfig(enabled=False, image_cache_bytes=1024 * MIB)
                ),
                dataset=dataset,
                **LOAD,
            )
        )
        return base, off, disabled

    base, off, disabled = run_once(sweep)
    assert off.metrics == base.metrics
    assert disabled.metrics == base.metrics
    assert base.metrics.cache_hits == {}
    assert not any(key.startswith("cache_") for key in base.metrics.to_dict())
    print("\ncaching off: metrics bit-identical to seed path")
    print(base.summary())


@pytest.mark.figure("ext-caching")
def test_warm_cache_beats_cold_pipeline_under_zipf(run_once):
    def sweep():
        dataset = _zipf(1.0)
        cold = run_experiment(ExperimentConfig(server=SERVER, dataset=dataset, **LOAD))
        warm = run_experiment(
            ExperimentConfig(
                server=_cached_server(
                    image_cache_bytes=256 * MIB, tensor_cache_bytes=128 * MIB
                ),
                dataset=dataset,
                **LOAD,
            )
        )
        return cold, warm

    cold, warm = run_once(sweep)

    def stage_ms(result):
        spans = result.metrics.span_means
        return (spans.get("preprocess", 0.0) + spans.get("transfer", 0.0)) * 1e3

    # The win the tiers are built for: materially higher throughput and
    # a materially cheaper preprocess+H2D stage.
    assert warm.throughput >= 1.3 * cold.throughput
    assert stage_ms(warm) <= 0.5 * stage_ms(cold)
    assert warm.metrics.cache_hit_fraction > 0.5

    # Counters flow all the way into the flat export.
    exported = warm.metrics.to_dict()
    for key in ("cache_image_hit_rate", "cache_tensor_hit_rate",
                "cache_tensor_evicted_bytes", "cache_image_evicted_bytes"):
        assert key in exported
    assert exported["cache_tensor_hit_rate"] > 0.0 or exported["cache_image_hit_rate"] > 0.0

    summary = cache_summary(warm.metrics)
    headers = ["run", "throughput", "preproc+H2D (ms)", "hit fraction"]
    print("\n" + format_table(headers, [
        ["cold (no cache)", f"{cold.throughput:.0f}", f"{stage_ms(cold):.3f}", "-"],
        ["warm (image+tensor)", f"{warm.throughput:.0f}", f"{stage_ms(warm):.3f}",
         f"{summary['cache_hit_fraction']:.3f}"],
    ], title="Zipf(s=1.0) catalog=200: warm multi-tier cache vs cold pipeline"))


@pytest.mark.figure("ext-caching")
def test_speedup_scales_with_popularity_skew(run_once):
    skews = (0.0, 0.8, 1.4)

    def sweep():
        out = []
        for skew in skews:
            dataset = _zipf(skew, catalog_size=600)
            cold = run_experiment(
                ExperimentConfig(server=SERVER, dataset=dataset, **LOAD)
            )
            warm = run_experiment(
                ExperimentConfig(
                    server=_cached_server(
                        image_cache_bytes=64 * MIB,
                        tensor_cache_bytes=32 * MIB,
                        result_cache_bytes=1 * MIB,
                    ),
                    dataset=dataset,
                    **LOAD,
                )
            )
            out.append((skew, cold, warm))
        return out

    points = run_once(sweep)
    speedups = {skew: warm.throughput / cold.throughput for skew, cold, warm in points}
    fractions = {skew: warm.metrics.cache_hit_fraction for skew, _, warm in points}

    # More skew concentrates requests on cache-resident content: the
    # hit fraction — and with it the speedup — must grow monotonically.
    assert fractions[0.8] > fractions[0.0]
    assert fractions[1.4] > fractions[0.8]
    assert speedups[1.4] > speedups[0.0]
    # At s=1.4 a small cache covers most of the mass of a 600-item
    # catalog (analytic top-weight check, not a tuned threshold).
    dataset = _zipf(1.4, catalog_size=600)
    assert dataset.top_fraction(60) > 0.75

    headers = ["skew", "cold (img/s)", "warm (img/s)", "speedup", "hit fraction"]
    rows = [
        [f"{skew:g}", f"{cold.throughput:.0f}", f"{warm.throughput:.0f}",
         f"{speedups[skew]:.2f}x", f"{fractions[skew]:.3f}"]
        for skew, cold, warm in points
    ]
    print("\n" + format_table(headers, rows,
                              title="Cached speedup vs Zipf skew (64 MiB image / 32 MiB tensor / 1 MiB result)"))
