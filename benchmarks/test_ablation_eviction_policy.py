"""Ablation — GPU-memory eviction policy (DESIGN.md Sec. 6).

The Fig. 5 high-concurrency regime spills waiting tensors to host
memory.  We compare spilling the *newest* tensor (default: the one
furthest from its inference slot) against the naive *oldest*-first
spill, and against disabling eviction entirely (allocations block).
Victim choice matters because reloads of spilled working sets block
the compute stream.
"""

import pytest

from repro.analysis import format_rate, format_table
from repro.core import ServerConfig
from repro.hardware import DEFAULT_CALIBRATION
from repro.hardware.calibration import GpuCalibration
from repro.serving import ExperimentConfig, run_experiment
from repro.vision import reference_dataset

#: A shrunk pool (~1.5 GB usable) recreates the Fig. 5 eviction regime
#: at a simulation-friendly concurrency.
SMALL_GPU = GpuCalibration(
    memory_bytes=5.5 * 1024**3,
    reserved_bytes=4 * 1024**3,
)


def run_policy_comparison():
    data = {}
    for label, policy, allow in (
        ("evict newest (default)", "newest", True),
        ("evict oldest", "oldest", True),
        ("no eviction (block)", "newest", False),
    ):
        calibration = DEFAULT_CALIBRATION.with_overrides(
            gpu=GpuCalibration(
                memory_bytes=SMALL_GPU.memory_bytes,
                reserved_bytes=SMALL_GPU.reserved_bytes,
                eviction_policy=policy,
            )
        )
        result = run_experiment(
            ExperimentConfig(
                server=ServerConfig(
                    model="resnet-50",
                    preprocess_device="gpu",
                    preprocess_batch_size=64,
                    allow_eviction=allow,
                ),
                dataset=reference_dataset("medium"),
                concurrency=512,
                calibration=calibration,
                warmup_requests=500,
                measure_requests=2000,
            )
        )
        data[label] = {
            "throughput": result.throughput,
            "p99": result.p99_latency,
            "evictions": result.metrics.eviction_count,
        }
    return data


@pytest.mark.figure("ablation-eviction")
def test_ablation_eviction_policy(run_once):
    data = run_once(run_policy_comparison)

    print(
        "\n"
        + format_table(
            ["policy", "img/s", "p99", "evictions"],
            [
                [label, format_rate(e["throughput"]), f"{e['p99'] * 1e3:.0f} ms",
                 str(e["evictions"])]
                for label, e in data.items()
            ],
            title="Ablation — eviction policy under memory pressure",
        )
    )

    newest = data["evict newest (default)"]
    oldest = data["evict oldest"]

    # Memory pressure is actually exercised.
    assert newest["evictions"] > 0

    # Evicting the next-to-infer tensor (oldest) forces far more
    # critical-path reloads: strictly more evictions and no better
    # throughput than the default.
    assert oldest["evictions"] > newest["evictions"]
    assert newest["throughput"] >= 0.95 * oldest["throughput"]
