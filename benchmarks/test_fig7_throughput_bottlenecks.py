"""Fig. 7 — comparative stage throughput (preprocess / inference / E2E).

Paper (Sec. 4.4): isolating the stages of a GPU-preprocessing server
shows end-to-end throughput tracking whichever stage is the
bottleneck.  For large images preprocessing limits everything — ViT
end-to-end runs at just 19.5% of inference-only throughput.  The
outlier: for small/medium images on TinyViT, end-to-end is *faster*
than inference-only, root-caused to data transfer — inference-only
clients ship the decoded raw image, ~5x larger than the JPEG.
"""

import pytest

from repro.analysis import ClaimSet, format_rate, format_table
from repro.core import ServerConfig
from repro.serving import ExperimentConfig, run_experiment
from repro.vision import reference_dataset

MODELS = ("vit-base-16", "resnet-50", "tinyvit-5m")
SIZES = ("small", "medium", "large")
MODES = ("end_to_end", "preprocess_only", "inference_only")


def run_stage_matrix():
    data = {}
    for model in MODELS:
        for size in SIZES:
            for mode in MODES:
                result = run_experiment(
                    ExperimentConfig(
                        server=ServerConfig(
                            model=model,
                            preprocess_device="gpu",
                            preprocess_batch_size=64,
                            mode=mode,
                        ),
                        dataset=reference_dataset(size),
                        concurrency=512,
                        warmup_requests=600,
                        measure_requests=2000,
                    )
                )
                data[(model, size, mode)] = result.throughput
    return data


@pytest.mark.figure("fig7")
def test_fig7_throughput_bottlenecks(run_once):
    data = run_once(run_stage_matrix)

    rows = []
    for model in MODELS:
        for size in SIZES:
            e2e = data[(model, size, "end_to_end")]
            pre = data[(model, size, "preprocess_only")]
            inf = data[(model, size, "inference_only")]
            rows.append(
                [model, size, format_rate(e2e), format_rate(pre), format_rate(inf),
                 f"{e2e / inf:.2f}"]
            )
    print(
        "\n"
        + format_table(
            ["model", "image", "end-to-end", "preprocess-only", "inference-only", "e2e/inf"],
            rows,
            title="Fig. 7 — stage-isolated throughput (GPU preprocessing)",
        )
    )

    claims = ClaimSet("Fig. 7")
    claims.check(
        "ViT large-image E2E as a share of inference-only (paper: 19.5%)",
        0.195,
        data[("vit-base-16", "large", "end_to_end")]
        / data[("vit-base-16", "large", "inference_only")],
        rel_tolerance=0.4,
    )
    claims.check(
        "TinyViT medium E2E vs inference-only (paper outlier: >1)",
        1.0,
        data[("tinyvit-5m", "medium", "end_to_end")]
        / data[("tinyvit-5m", "medium", "inference_only")],
        rel_tolerance=0.6,
    )
    print(claims.render())

    # E2E never exceeds the preprocessing stage alone.
    for model in MODELS:
        for size in SIZES:
            assert data[(model, size, "end_to_end")] <= 1.05 * data[
                (model, size, "preprocess_only")
            ]

    # Large images: preprocessing is the bottleneck for every model.
    for model in MODELS:
        e2e = data[(model, "large", "end_to_end")]
        pre = data[(model, "large", "preprocess_only")]
        inf = data[(model, "large", "inference_only")]
        assert e2e < 0.3 * inf, f"{model}: large-image E2E must be preprocessing-bound"
        assert e2e > 0.6 * pre, f"{model}: large-image E2E tracks the preprocessing stage"

    # The TinyViT anomaly: E2E faster than inference-only for small and
    # medium images (compressed vs raw transfer).
    for size in ("small", "medium"):
        e2e = data[("tinyvit-5m", size, "end_to_end")]
        inf = data[("tinyvit-5m", size, "inference_only")]
        assert e2e > inf, f"TinyViT {size}: end-to-end must beat inference-only"

    # No anomaly for the big model: ViT medium E2E is slower than
    # inference-only (inference dominates).
    assert (
        data[("vit-base-16", "medium", "end_to_end")]
        < data[("vit-base-16", "medium", "inference_only")]
    )

    # Medium images: preprocessing and inference stages are comparable
    # for the mid-size model ("both need to be optimized").
    rn50_pre = data[("resnet-50", "medium", "preprocess_only")]
    rn50_inf = data[("resnet-50", "medium", "inference_only")]
    assert 0.3 < rn50_pre / rn50_inf < 3.5

    assert claims.all_within_tolerance, "\n" + claims.render()
