"""Fig. 6 — zero-load latency breakdown of ViT across image sizes.

Paper (Sec. 4.2): with requests served one at a time, the
preprocessing share of ViT request latency reaches 56% (CPU) / 49%
(GPU) for the medium image and 97% / 88% for the large image; CPU
preprocessing has *lower latency* than GPU preprocessing for the small
image (the GPU is vastly underutilized at batch 1).
"""

import pytest

from repro.analysis import ClaimSet, breakdown_from_metrics, format_table
from repro.apps import zero_load_breakdown


def run_breakdowns():
    data = {}
    for size in ("small", "medium", "large"):
        for device in ("cpu", "gpu"):
            result = zero_load_breakdown(
                model="vit-base-16", preprocess_device=device, image_size=size
            )
            data[(size, device)] = breakdown_from_metrics(result.metrics)
    return data


@pytest.mark.figure("fig6")
def test_fig6_zero_load_breakdown(run_once):
    data = run_once(run_breakdowns)

    print(
        "\n"
        + format_table(
            ["image", "preproc", "latency", "preprocess", "inference", "preproc share"],
            [
                [
                    size,
                    device,
                    f"{b.total * 1e3:.2f} ms",
                    f"{b.preprocess * 1e3:.2f} ms",
                    f"{b.inference * 1e3:.2f} ms",
                    f"{b.preprocess_fraction * 100:.1f}%",
                ]
                for (size, device), b in data.items()
            ],
            title="Fig. 6 — zero-load ViT latency breakdown",
        )
    )

    claims = ClaimSet("Fig. 6")
    claims.check(
        "medium image, CPU preprocessing share (paper: 56%)",
        0.56,
        data[("medium", "cpu")].preprocess_fraction,
        rel_tolerance=0.15,
    )
    claims.check(
        "medium image, GPU preprocessing share (paper: 49%)",
        0.49,
        data[("medium", "gpu")].preprocess_fraction,
        rel_tolerance=0.15,
    )
    claims.check(
        "large image, CPU preprocessing share (paper: 97%)",
        0.97,
        data[("large", "cpu")].preprocess_fraction,
        rel_tolerance=0.05,
    )
    claims.check(
        "large image, GPU preprocessing share (paper: 88%)",
        0.88,
        data[("large", "gpu")].preprocess_fraction,
        rel_tolerance=0.10,
    )
    print(claims.render())

    # CPU preprocessing outperforms GPU for small images (latency).
    assert data[("small", "cpu")].total < data[("small", "gpu")].total

    # GPU preprocessing wins increasingly as the image grows.
    assert data[("large", "gpu")].total < data[("large", "cpu")].total / 3

    # Preprocessing share grows with image size on both devices.
    for device in ("cpu", "gpu"):
        shares = [data[(size, device)].preprocess_fraction for size in ("small", "medium", "large")]
        assert shares == sorted(shares)

    # DNN inference time itself is size-independent (always 224x224).
    inference_times = [b.inference for b in data.values()]
    assert max(inference_times) < 1.3 * min(inference_times)

    assert claims.all_within_tolerance, "\n" + claims.render()
