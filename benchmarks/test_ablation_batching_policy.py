"""Ablation — dynamic batching policy knobs (DESIGN.md Sec. 6).

Sweeps the batcher's three policy dimensions on one deployment:

1. *max queue delay*: longer gathering builds bigger batches (higher
   peak throughput) at a zero-load latency cost;
2. *fixed vs dynamic*: the pre-dynamic-batching configuration;
3. *max batch size*: the GPU efficiency curve's operating point.
"""

import pytest

from repro.analysis import format_rate, format_table
from repro.core import ServerConfig
from repro.serving import ExperimentConfig, run_experiment
from repro.vision import reference_dataset


def _run(concurrency, **server_kwargs):
    return run_experiment(
        ExperimentConfig(
            server=ServerConfig(
                model="vit-base-16",
                preprocess_device="gpu",
                preprocess_batch_size=64,
                **server_kwargs,
            ),
            dataset=reference_dataset("medium"),
            concurrency=concurrency,
            warmup_requests=300,
            measure_requests=1500,
        )
    )


def run_policy_sweep():
    data = {}
    for delay_ms in (0.0, 1.0, 4.0):
        result = _run(512, max_queue_delay_seconds=delay_ms * 1e-3)
        data[("delay", delay_ms)] = result
    data[("fixed", 64)] = _run(512, max_queue_delay_seconds=None)
    for max_batch in (8, 32, 128):
        result = _run(512, max_batch_size=max_batch)
        data[("max_batch", max_batch)] = result
    # Zero-load latency under each delay (the latency price of gathering).
    for delay_ms in (0.0, 4.0):
        result = _run(1, max_queue_delay_seconds=delay_ms * 1e-3)
        data[("zero_load_delay", delay_ms)] = result
    return data


@pytest.mark.figure("ablation-batching")
def test_ablation_batching_policy(run_once):
    data = run_once(run_policy_sweep)

    print(
        "\n"
        + format_table(
            ["policy", "img/s", "mean batch", "p99"],
            [
                [
                    f"{kind}={value:g}",
                    format_rate(r.throughput),
                    f"{r.metrics.mean_batch_size:.1f}",
                    f"{r.p99_latency * 1e3:.0f} ms",
                ]
                for (kind, value), r in data.items()
                if kind in ("delay", "fixed", "max_batch")
            ],
            title="Ablation — dynamic batching policy (ViT-base, concurrency 512)",
        )
    )

    # Bigger max batches climb the efficiency curve.
    assert (
        data[("max_batch", 128)].throughput
        > data[("max_batch", 32)].throughput
        > data[("max_batch", 8)].throughput
    )
    assert data[("max_batch", 8)].metrics.mean_batch_size <= 8

    # Triton's greedy scheduling makes throughput insensitive to the
    # delay under saturated closed-loop load (batches fill from the
    # backlog), while zero-load latency is unharmed because an idle
    # instance dispatches immediately.
    delays = [data[("delay", d)].throughput for d in (0.0, 1.0, 4.0)]
    assert max(delays) < 1.15 * min(delays)
    zero_fast = data[("zero_load_delay", 0.0)].mean_latency
    zero_slow = data[("zero_load_delay", 4.0)].mean_latency
    assert zero_slow < zero_fast * 1.15

    # The fixed-batch config reaches full batches too, but cannot serve
    # partial batches — its tail risk shows up under open-loop load
    # (see test_fig3's 55->38 ms reproduction), not here.
    assert data[("fixed", 64)].metrics.mean_batch_size == pytest.approx(64, rel=0.02)
