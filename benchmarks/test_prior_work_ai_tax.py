"""Revisiting the prior work ("AI Tax", Richins et al.) broker numbers.

The prior work studied the same face detection -> identification
pipeline with Apache Kafka between the stages and reported that DNN
inference amounted to only ~60% of latency, with 35.9% spent in the
Kafka broker.  This paper's Sec. 4.7 revises that overhead down to
~6% using Redis.

We reproduce the comparison: under a Kafka deployment the broker eats
a large latency share (the prior-work regime — at moderate fan-out the
ratio lands near theirs), and the Redis deployment revises it to a few
percent.
"""

import pytest

from repro.analysis import ClaimSet, format_table
from repro.apps import FacePipelineConfig
from repro.serving import run_face_pipeline


def run_prior_work_comparison():
    data = {}
    for broker in ("kafka", "redis"):
        # Moderate fan-out, zero-load: the prior work's measurement style.
        result = run_face_pipeline(
            FacePipelineConfig(broker=broker, faces_per_frame=10),
            concurrency=1,
            warmup_requests=20,
            measure_requests=150,
        )
        metrics = result.metrics
        total = metrics.latency.mean
        data[broker] = {
            "latency": total,
            "broker_share": metrics.span_mean("broker") / total,
            "dnn_share": (
                metrics.span_mean("inference") + metrics.span_mean("identify")
            )
            / total,
        }
    return data


@pytest.mark.figure("prior-work")
def test_prior_work_ai_tax(run_once):
    data = run_once(run_prior_work_comparison)

    print(
        "\n"
        + format_table(
            ["broker", "zero-load latency", "DNN share", "broker share"],
            [
                [
                    broker,
                    f"{entry['latency'] * 1e3:.1f} ms",
                    f"{entry['dnn_share'] * 100:.1f}%",
                    f"{entry['broker_share'] * 100:.1f}%",
                ]
                for broker, entry in data.items()
            ],
            title="AI-Tax comparison — 10 faces/frame, zero load",
        )
    )

    claims = ClaimSet("Prior work (AI Tax)")
    claims.check(
        "Kafka broker share of latency (prior work: 35.9%)",
        0.359,
        data["kafka"]["broker_share"],
        rel_tolerance=0.8,
    )
    claims.check(
        "Redis revises the broker share to a few percent (paper: 6%)",
        0.06,
        data["redis"]["broker_share"],
        rel_tolerance=1.0,
    )
    print(claims.render())

    # The structural finding: swapping the disk-backed broker for the
    # in-memory one removes most of the broker tax.
    assert data["kafka"]["broker_share"] > 4 * data["redis"]["broker_share"]
    assert data["redis"]["latency"] < data["kafka"]["latency"]
    # Prior work's "DNN inference is only ~60% of latency" regime holds
    # in the Kafka deployment (spans are wall-clock and may overlap, so
    # this is a loose band).
    assert 0.4 < data["kafka"]["dnn_share"] < 0.85
    assert claims.all_within_tolerance, "\n" + claims.render()
