"""Extension — what if the GPU had a dedicated JPEG decode engine?

The paper points at "the inclusion of a dedicated hardware JPEG decoder
specifically for DNN preprocessing on modern GPUs such as NVIDIA A100"
(Sec. 2.2) and concludes that accelerated preprocessing "can alleviate
these scaling limitations but only to a certain extent" (Sec. 5).  This
benchmark quantifies the what-if on our platform: repeat the
large-image single-GPU and multi-GPU experiments with an A100-style
fixed-function decode engine (decode off the SMs, reduced host
staging).
"""

import dataclasses

import pytest

from repro.analysis import format_rate, format_table
from repro.core import ServerConfig
from repro.hardware import DEFAULT_CALIBRATION
from repro.serving import ExperimentConfig, run_experiment
from repro.vision import reference_dataset

HW_CALIBRATION = DEFAULT_CALIBRATION.with_overrides(
    gpu=dataclasses.replace(DEFAULT_CALIBRATION.gpu, hardware_jpeg_decoder=True)
)


def run_what_if():
    data = {}
    for label, calibration in (("software decode", DEFAULT_CALIBRATION),
                               ("hardware decoder", HW_CALIBRATION)):
        for gpus in (1, 2, 4):
            result = run_experiment(
                ExperimentConfig(
                    server=ServerConfig(
                        model="vit-base-16",
                        preprocess_device="gpu",
                        preprocess_batch_size=64,
                    ),
                    dataset=reference_dataset("large"),
                    concurrency=256 * gpus,
                    gpu_count=gpus,
                    calibration=calibration,
                    warmup_requests=300,
                    measure_requests=1200,
                )
            )
            data[(label, gpus)] = result.throughput
    return data


@pytest.mark.figure("ext-hw-decoder")
def test_ext_hardware_decoder(run_once):
    data = run_once(run_what_if)

    print(
        "\n"
        + format_table(
            ["decode path", "1 GPU", "2 GPUs", "4 GPUs", "4-GPU scaling"],
            [
                [
                    label,
                    format_rate(data[(label, 1)]),
                    format_rate(data[(label, 2)]),
                    format_rate(data[(label, 4)]),
                    f"{data[(label, 4)] / data[(label, 1)]:.2f}x",
                ]
                for label in ("software decode", "hardware decoder")
            ],
            title="Extension — large-image ViT serving with an A100-style JPEG engine",
        )
    )

    # The engine lifts single-GPU large-image throughput substantially...
    assert data[("hardware decoder", 1)] > 1.5 * data[("software decode", 1)]
    # ...and restores multi-GPU scaling that software decode throttles.
    soft_scaling = data[("software decode", 4)] / data[("software decode", 1)]
    hard_scaling = data[("hardware decoder", 4)] / data[("hardware decoder", 1)]
    assert soft_scaling < 2.2, "software decode throttles beyond 2 GPUs"
    assert hard_scaling > 2.8, "the decode engine restores near-linear scaling"
