"""The paper's abstract-level headline claims, checked end to end.

1. "data processing and data movement ... up to 56% of end-to-end
   latency in a medium-sized image" (zero-load, CPU preprocessing).
2. "~80% impact on system throughput in a large image": large-image
   end-to-end throughput is a small fraction of what inference alone
   could deliver.
3. "Under high concurrency ... queuing accounted for ~60% of total
   latency" (conclusion).
4. "achieves 2.25x better throughput compared to prior work" (Redis
   vs the Kafka configuration at 25 faces/frame).
"""

import pytest

from repro.analysis import ClaimSet, breakdown_from_metrics
from repro.apps import FacePipelineConfig, serve_classification, zero_load_breakdown
from repro.core import ServerConfig
from repro.serving import ExperimentConfig, run_experiment, run_face_pipeline
from repro.vision import reference_dataset


def run_headline_measurements():
    data = {}

    # 1. Zero-load medium-image overhead share (CPU preprocessing).
    result = zero_load_breakdown(model="vit-base-16", preprocess_device="cpu",
                                 image_size="medium")
    b = breakdown_from_metrics(result.metrics)
    data["medium_overhead_share"] = 1 - b.inference_fraction
    data["medium_preprocess_share"] = b.preprocess_fraction

    # 2. Large-image throughput impact vs inference alone.
    e2e = serve_classification(model="vit-base-16", image_size="large",
                               concurrency=512, measure_requests=1500)
    inf = serve_classification(model="vit-base-16", image_size="large",
                               concurrency=512, measure_requests=1500,
                               mode="inference_only")
    data["large_throughput_impact"] = 1 - e2e.throughput / inf.throughput

    # 3. Queue share under high concurrency.
    result = run_experiment(
        ExperimentConfig(
            server=ServerConfig(model="resnet-50", preprocess_batch_size=64),
            dataset=reference_dataset("medium"),
            concurrency=1024,
            warmup_requests=1024,
            measure_requests=2500,
        )
    )
    queue = result.metrics.span_mean("queue") + result.metrics.span_mean("preprocess_wait")
    data["high_concurrency_queue_share"] = queue / result.mean_latency

    # 4. Redis vs Kafka at 25 faces/frame.
    rates = {}
    for broker in ("redis", "kafka"):
        rates[broker] = run_face_pipeline(
            FacePipelineConfig(broker=broker, faces_per_frame=25),
            concurrency=96,
            warmup_requests=150,
            measure_requests=1000,
        ).throughput
    data["broker_speedup"] = rates["redis"] / rates["kafka"]

    return data


@pytest.mark.figure("headline")
def test_headline_claims(run_once):
    data = run_once(run_headline_measurements)

    claims = ClaimSet("Headline")
    claims.check(
        "non-DNN share of zero-load medium-image latency (paper: up to 56%)",
        0.56,
        data["medium_preprocess_share"],
        rel_tolerance=0.15,
    )
    claims.check(
        "large-image throughput impact vs inference alone (paper: ~80%)",
        0.80,
        data["large_throughput_impact"],
        rel_tolerance=0.15,
    )
    claims.check(
        "queue share of latency under high concurrency (paper: ~60%)",
        0.60,
        data["high_concurrency_queue_share"],
        rel_tolerance=0.6,
    )
    claims.check(
        "Redis over prior work's Kafka at 25 faces (paper: 2.25x)",
        2.25,
        data["broker_speedup"],
        rel_tolerance=0.25,
    )
    print("\n" + claims.render())
    assert claims.all_within_tolerance, "\n" + claims.render()
