"""Extension — fault tolerance of the serving fleet.

The paper measures a healthy testbed; this benchmark asks what the
resilience layer buys when GPUs crash.  Three checks:

1. **Zero cost when off** — with no fault plan and no resilience policy
   the fleet produces *bit-identical* metrics to the seed code path, so
   every paper-figure number is unchanged.
2. **Graceful degradation** — under GPU crashes (restart longer than
   the request deadline, so stalls are observable) deadlines + retries
   keep goodput >= 90 % of fault-free and hold p99 near the deadline
   instead of the restart time.
3. **Degradation scales with fault rate** — a downtime sweep shows
   retries/timeouts growing with injected downtime while goodput stays
   bounded.
"""

import pytest

from repro.analysis import format_table, resilience_summary
from repro.core import ServerConfig
from repro.faults import FaultPlan, gpu_crash_plan, run_fault_experiment, sweep_fault_rates
from repro.serving import ResiliencePolicy, run_fleet_experiment

SERVER = ServerConfig(model="resnet-50")
LOAD = dict(node_count=2, offered_rate=150.0, warmup_requests=200,
            measure_requests=1200, seed=0)
#: Long enough (~40 simulated seconds) that a 1 % downtime profile
#: (mtbf ~49.5 s per GPU, two GPUs) reliably fires.
LONG_LOAD = dict(node_count=2, offered_rate=200.0, warmup_requests=300,
                 measure_requests=8000, seed=0, max_sim_seconds=60.0)
#: Restart (0.5 s) deliberately exceeds the deadline (0.25 s) throughout:
#: a crash must surface as attempt timeouts, not just a slow success.


@pytest.mark.figure("ext-fault-tolerance")
def test_fault_injection_off_is_bit_identical(run_once):
    def sweep():
        base = run_fleet_experiment(SERVER, **LOAD)
        off = run_fleet_experiment(SERVER, resilience=None, faults=None, **LOAD)
        plan = FaultPlan()  # empty plan: enabled is False
        empty = run_fault_experiment(SERVER, faults=plan, resilience=None, **LOAD)
        return base, off, empty

    base, off, empty = run_once(sweep)
    assert off.metrics == base.metrics
    assert empty.metrics == base.metrics
    assert base.fault_count == off.fault_count == empty.fault_count == 0
    print("\nfault machinery off: metrics bit-identical to seed path")
    print(base.summary())


@pytest.mark.figure("ext-fault-tolerance")
def test_goodput_survives_one_percent_gpu_crashes(run_once):
    def sweep():
        baseline = run_fleet_experiment(
            SERVER, resilience=ResiliencePolicy(), **LONG_LOAD
        )
        faulty = run_fault_experiment(
            SERVER, faults=gpu_crash_plan(0.01, restart_seconds=0.5), **LONG_LOAD
        )
        return baseline, faulty

    baseline, faulty = run_once(sweep)
    deadline = ResiliencePolicy().deadline_seconds

    assert faulty.fault_count > 0, "no faults fired; mtbf too long for the run"
    assert faulty.metrics.retry_count > 0
    assert faulty.metrics.timeout_count > 0
    # Retries keep goodput within 10 % of the fault-free fleet.
    assert faulty.throughput >= 0.9 * baseline.throughput
    # Deadline bounds the tail: p99 tracks the deadline, not the 0.5 s
    # restart a deadline-less client would eat.
    assert faulty.metrics.latency.p99 <= 2.0 * deadline

    headers = ["run", "throughput", "p99 (ms)", "timeouts", "retries", "goodput"]

    def row(label, result):
        summary = resilience_summary(result.metrics)
        return [label, f"{result.throughput:.1f}",
                f"{result.metrics.latency.p99 * 1e3:.1f}",
                str(summary["timeout_count"]), str(summary["retry_count"]),
                f"{summary['success_fraction']:.3f}"]

    print("\n" + format_table(headers, [
        row("fault-free", baseline),
        row(f"gpu-crash x{faulty.fault_count}", faulty),
    ], title="GPU crashes: deadline=250ms, restart=500ms"))


@pytest.mark.figure("ext-fault-tolerance")
def test_degradation_scales_with_fault_rate(run_once):
    def sweep():
        return sweep_fault_rates(
            SERVER,
            downtime_fractions=(0.05, 0.15),
            restart_seconds=0.5,
            **LOAD,
        )

    points = run_once(sweep)
    assert len(points) == 2
    light, heavy = points
    assert heavy.result.fault_count >= light.result.fault_count
    for point in points:
        assert point.goodput_ratio >= 0.7
        assert point.result.metrics.latency.p99 <= 2.0 * 0.25
    assert heavy.timeouts + heavy.retries > 0

    headers = ["downtime", "faults", "goodput ratio", "p99 ratio", "timeouts", "retries"]
    rows = [
        [f"{p.downtime_fraction:.0%}", str(p.result.fault_count),
         f"{p.goodput_ratio:.3f}", f"{p.p99_ratio:.2f}",
         str(p.timeouts), str(p.retries)]
        for p in points
    ]
    print("\n" + format_table(headers, rows, title="GPU-crash downtime sweep"))
