"""Fig. 3 — throughput across software configurations (ViT-base).

Paper (Sec. 2.3): a naive PyTorch loop reaches ~431 img/s; DALI CPU
preprocessing ~446; DALI GPU preprocessing ~842; Triton with the ONNX
runtime improves further; enabling dynamic batching trades a little
throughput for much better tail latency (55 ms -> 38 ms p99); a quick
server-parameter search adds ~300 img/s; TensorRT pushes past
1600 img/s.

We regenerate the same ladder on the simulated platform and check the
*shape*: each optimization's direction and rough magnitude.
"""

import pytest

from repro.analysis import ClaimSet, format_rate, format_table
from repro.apps import NaiveLoopConfig, run_naive_loop
from repro.core import ServerConfig
from repro.core.tuner import tune_server
from repro.serving import ExperimentConfig, run_experiment, run_open_loop
from repro.vision import reference_dataset

DATASET = reference_dataset("medium")
LADDER_CONCURRENCY = 256


def _serve(server: ServerConfig, concurrency: int = LADDER_CONCURRENCY, seed: int = 0):
    return run_experiment(
        ExperimentConfig(
            server=server,
            dataset=DATASET,
            concurrency=concurrency,
            warmup_requests=400,
            measure_requests=2000,
            seed=seed,
            think_jitter_seconds=1e-3,
        )
    )


def run_ladder():
    rows = {}

    # Rungs 1-3: no serving software, synchronous loop.
    for name, preprocess in (
        ("pytorch loop", "python"),
        ("+ DALI CPU decode", "dali-cpu"),
        ("+ DALI GPU preprocessing", "dali-gpu"),
    ):
        result = run_naive_loop(
            NaiveLoopConfig(runtime="pytorch", preprocess=preprocess, batches=40), DATASET
        )
        rows[name] = {"throughput": result.throughput, "p99_ms": None}

    # Rung 4: Triton-like server, ONNX runtime, fixed batch.  Peak
    # throughput is measured closed-loop; the tail latency the paper
    # quotes (55 ms) is measured under open-loop load below capacity,
    # where fixed batches accrue long batch-fill waits.
    onnx_fixed = ServerConfig(
        runtime="onnxruntime",
        preprocess_device="gpu",
        preprocess_batch_size=64,
        max_queue_delay_seconds=None,
        preprocess_workers=8,
        inference_instances=1,
    )
    result = _serve(onnx_fixed, concurrency=96)
    open_loop = run_open_loop(
        ExperimentConfig(
            server=onnx_fixed.with_overrides(preprocess_queue_delay_seconds=5e-3),
            dataset=DATASET,
            warmup_requests=200,
            measure_requests=1200,
            max_sim_seconds=30,
        ),
        offered_rate=600,
    )
    rows["TrIS + ONNX (fixed batch)"] = {
        "throughput": result.throughput,
        "p99_ms": open_loop.p99_latency * 1e3,
    }

    # Rung 5: dynamic batching — slightly lower peak throughput, far
    # better tail latency (paper: 55 ms -> 38 ms p99).
    onnx_dynamic = onnx_fixed.with_overrides(max_queue_delay_seconds=1.0e-3)
    result = _serve(onnx_dynamic, concurrency=96)
    open_loop = run_open_loop(
        ExperimentConfig(
            server=onnx_dynamic.with_overrides(preprocess_queue_delay_seconds=5e-3),
            dataset=DATASET,
            warmup_requests=200,
            measure_requests=1200,
            max_sim_seconds=30,
        ),
        offered_rate=600,
    )
    rows["+ dynamic batching"] = {
        "throughput": result.throughput,
        "p99_ms": open_loop.p99_latency * 1e3,
    }

    # Rung 6: quick server-parameter search (paper: ~ +300 img/s).
    tuned = tune_server(
        onnx_dynamic,
        dataset=DATASET,
        search_space={
            "preprocess_workers": (8, 16, 24),
            "inference_instances": (1, 2),
            "max_batch_size": (64, 128),
            "concurrency": (256, 512),
        },
        baseline_concurrency=LADDER_CONCURRENCY,
        measure_requests=1200,
        warmup_requests=300,
    )
    rows["+ tuned server settings"] = {
        "throughput": tuned.best.throughput,
        "p99_ms": tuned.best.p99_latency * 1e3,
    }

    # Rung 7: TensorRT with the tuned settings.
    trt = tuned.best.server.with_overrides(runtime="tensorrt")
    result = _serve(trt, concurrency=tuned.best.concurrency)
    rows["+ TensorRT"] = {
        "throughput": result.throughput,
        "p99_ms": result.p99_latency * 1e3,
    }

    return rows


@pytest.mark.figure("fig3")
def test_fig3_software_ladder(run_once):
    rows = run_once(run_ladder)

    table = format_table(
        ["configuration", "img/s", "p99"],
        [
            [name, format_rate(row["throughput"]),
             "-" if row["p99_ms"] is None else f"{row['p99_ms']:.0f} ms"]
            for name, row in rows.items()
        ],
        title="Fig. 3 — ViT-base throughput across software configurations",
    )
    print("\n" + table)

    ladder = [row["throughput"] for row in rows.values()]
    names = list(rows)

    claims = ClaimSet("Fig. 3")
    claims.check("PyTorch loop img/s", 431, ladder[0], rel_tolerance=0.6)
    claims.check("DALI CPU gain over loop", 446 / 431, ladder[1] / ladder[0], rel_tolerance=0.15)
    claims.check("DALI GPU preprocessing img/s", 842, ladder[2], rel_tolerance=0.5)
    claims.check("TrIS+TensorRT img/s", 1600, ladder[6], rel_tolerance=0.35)
    claims.check(
        "overall ladder speedup (paper: >=3.7x, quoted up to 8x)",
        3.7,
        ladder[6] / ladder[0],
        rel_tolerance=1.5,
    )
    print(claims.render())

    # Directional shape of the ladder.
    assert ladder[1] > ladder[0], "DALI CPU must beat the python loop"
    assert ladder[2] > 1.5 * ladder[0], "GPU preprocessing is a large jump"
    assert ladder[3] > ladder[2], "serving software beats the naive loop"
    assert ladder[5] >= ladder[4], "tuning never hurts"
    assert ladder[6] > ladder[5], "TensorRT is the fastest rung"
    assert ladder[6] == max(ladder)

    # Dynamic batching: small throughput cost, better tail latency
    # (paper: 55 ms -> 38 ms p99).
    fixed = rows["TrIS + ONNX (fixed batch)"]
    dynamic = rows["+ dynamic batching"]
    assert dynamic["throughput"] > 0.8 * fixed["throughput"]
    assert dynamic["throughput"] < fixed["throughput"], "dynamic trades a little peak throughput"
    assert dynamic["p99_ms"] < fixed["p99_ms"], "dynamic batching improves p99"
    claims.check(
        "dynamic batching p99 improvement factor",
        55 / 38,
        fixed["p99_ms"] / dynamic["p99_ms"],
        rel_tolerance=0.7,
    )

    assert claims.all_within_tolerance, "\n" + claims.render()
