"""Fig. 11 — message brokers in the multi-DNN face pipeline.

Paper (Sec. 4.7): face detection -> identification connected via a
broker.  Versus the disk-backed Kafka of prior work, the in-memory
Redis broker gives +125% throughput (2.25x) and 67% lower zero-load
latency at 25 faces/frame, with the broker's latency share falling
from 71% (Kafka) to 6% (Redis).  The fused (no-broker) system wins at
low fan-out, but Redis overtakes it as faces/frame grow (paper: >= 9).
"""

import pytest

from repro.analysis import ClaimSet, format_rate, format_table
from repro.apps import FacePipelineConfig
from repro.serving import run_face_pipeline

FACE_COUNTS = (1, 3, 5, 9, 15, 25)
BROKERS = ("fused", "redis", "kafka")


def run_broker_sweep():
    data = {"throughput": {}, "zero_load": {}}
    for faces in FACE_COUNTS:
        for broker in BROKERS:
            result = run_face_pipeline(
                FacePipelineConfig(broker=broker, faces_per_frame=faces),
                concurrency=96,
                warmup_requests=150,
                measure_requests=1200,
            )
            data["throughput"][(broker, faces)] = result.throughput
    for broker in BROKERS:
        result = run_face_pipeline(
            FacePipelineConfig(broker=broker, faces_per_frame=25),
            concurrency=1,
            warmup_requests=20,
            measure_requests=120,
        )
        data["zero_load"][broker] = {
            "latency": result.mean_latency,
            "broker_fraction": result.metrics.span_mean("broker") / result.mean_latency,
        }
    return data


@pytest.mark.figure("fig11")
def test_fig11_brokers(run_once):
    data = run_once(run_broker_sweep)
    throughput = data["throughput"]
    zero_load = data["zero_load"]

    print(
        "\n"
        + format_table(
            ["faces/frame"] + list(BROKERS) + ["redis/kafka"],
            [
                [str(faces)]
                + [format_rate(throughput[(broker, faces)]) for broker in BROKERS]
                + [f"{throughput[('redis', faces)] / throughput[('kafka', faces)]:.2f}x"]
                for faces in FACE_COUNTS
            ],
            title="Fig. 11 (top) — pipeline throughput (frames/s)",
        )
    )
    print(
        "\n"
        + format_table(
            ["broker", "zero-load latency", "broker share"],
            [
                [
                    broker,
                    f"{zero_load[broker]['latency'] * 1e3:.1f} ms",
                    f"{zero_load[broker]['broker_fraction'] * 100:.1f}%",
                ]
                for broker in BROKERS
            ],
            title="Fig. 11 (bottom) — zero-load latency at 25 faces/frame",
        )
    )

    claims = ClaimSet("Fig. 11")
    claims.check(
        "Redis over Kafka throughput at 25 faces (paper: 2.25x)",
        2.25,
        throughput[("redis", 25)] / throughput[("kafka", 25)],
        rel_tolerance=0.25,
    )
    claims.check(
        "Kafka share of zero-load latency (paper: 71%)",
        0.71,
        zero_load["kafka"]["broker_fraction"],
        rel_tolerance=0.15,
    )
    claims.check(
        "Redis share of zero-load latency (paper: 6%)",
        0.06,
        zero_load["redis"]["broker_fraction"],
        rel_tolerance=0.8,
    )
    claims.check(
        "Redis zero-load latency improvement over Kafka (paper: 67%)",
        0.67,
        1 - zero_load["redis"]["latency"] / zero_load["kafka"]["latency"],
        rel_tolerance=0.2,
    )
    print(claims.render())

    # The fused system wins at low fan-out...
    assert throughput[("fused", 1)] > throughput[("redis", 1)]
    assert throughput[("fused", 1)] > throughput[("kafka", 1)]
    # ...but Redis overtakes it at high fan-out (paper: >= 9 faces).
    assert throughput[("redis", 9)] > throughput[("fused", 9)]
    assert throughput[("redis", 25)] > throughput[("fused", 25)]
    # The fused/redis gap narrows then inverts as fan-out grows.
    gaps = [
        throughput[("fused", faces)] / throughput[("redis", faces)] for faces in FACE_COUNTS
    ]
    assert gaps[0] > gaps[-1]

    # Redis always at least matches Kafka, and the advantage grows with
    # the message rate.
    ratios = [
        throughput[("redis", faces)] / throughput[("kafka", faces)] for faces in FACE_COUNTS
    ]
    assert all(r > 0.9 for r in ratios)
    assert ratios[-1] == max(ratios)

    assert claims.all_within_tolerance, "\n" + claims.render()
