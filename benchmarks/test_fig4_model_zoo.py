"""Fig. 4 — broad analysis of computer-vision DNNs.

Paper (Sec. 4.1): across a large HuggingFace model sweep with both CPU
and GPU preprocessing,

- throughput decreases as model FLOPs increase (top panel);
- GPU preprocessing improves throughput by -2.9%..104%, mean ~34%;
- the DNN-inference share of request latency rises with FLOPs
  (bottom panel): models below ~5 GFLOPs are dominated by non-inference
  time, and even >10 GFLOPs models spend 16-49% outside the DNN.
"""

import pytest

from repro.analysis import ClaimSet, breakdown_from_metrics, format_pct, format_rate, format_table
from repro.apps import serve_classification
from repro.models import FIG4_MODELS, get_model
from repro.vision import reference_dataset

DATASET = reference_dataset("medium")


def run_model_sweep():
    rows = []
    for name in FIG4_MODELS:
        spec = get_model(name)
        entry = {"model": name, "gflops": spec.gflops}
        for device in ("cpu", "gpu"):
            result = serve_classification(
                model=name,
                preprocess_device=device,
                dataset=DATASET,
                concurrency=512,
                measure_requests=1200,
            )
            entry[device] = result.throughput
        # The inference-share panel (Fig. 4 bottom) is a latency
        # decomposition "from the point at which an image enters the
        # host CPU until the DNN result is returned": measured at light
        # load so queueing does not swamp the request anatomy.
        light = serve_classification(
            model=name,
            preprocess_device="gpu",
            dataset=DATASET,
            concurrency=16,
            measure_requests=600,
        )
        entry["inference_fraction"] = breakdown_from_metrics(
            light.metrics
        ).inference_fraction
        entry["gain"] = entry["gpu"] / entry["cpu"] - 1.0
        rows.append(entry)
    return rows


@pytest.mark.figure("fig4")
def test_fig4_model_zoo(run_once):
    rows = run_once(run_model_sweep)

    table = format_table(
        ["model", "GFLOPs", "CPU-pre img/s", "GPU-pre img/s", "GPU gain", "inference %"],
        [
            [
                r["model"],
                f"{r['gflops']:.1f}",
                format_rate(r["cpu"]),
                format_rate(r["gpu"]),
                f"{r['gain'] * 100:+.0f}%",
                format_pct(r["inference_fraction"]),
            ]
            for r in rows
        ],
        title="Fig. 4 — HuggingFace model sweep (medium image)",
    )
    print("\n" + table)

    gains = [r["gain"] for r in rows]
    mean_gain = sum(gains) / len(gains)

    claims = ClaimSet("Fig. 4")
    claims.check("mean GPU-preprocessing gain", 0.34, mean_gain, rel_tolerance=0.6)
    claims.check("max GPU-preprocessing gain", 1.04, max(gains), rel_tolerance=0.6)
    claims.check(
        "min GPU-preprocessing gain (paper: -2.9%)",
        -0.029,
        min(gains),
        rel_tolerance=None,  # directional: checked below
    )
    print(claims.render())

    # Throughput decreases with FLOPs (top panel): compare the FLOPs
    # extremes rather than every neighbouring pair (same-size models
    # legitimately reorder).
    lightest = rows[0]
    heaviest = rows[-1]
    assert lightest["gpu"] > 3 * heaviest["gpu"]

    # Small models are overhead-dominated; large ones inference-dominated
    # (bottom panel).
    small = [r for r in rows if r["gflops"] < 5]
    large = [r for r in rows if r["gflops"] > 10]
    assert small and large
    overhead_dominated = [r for r in small if r["inference_fraction"] < 0.51]
    assert len(overhead_dominated) / len(small) >= 0.66, (
        "*most* models under 5 GFLOPs are dominated by non-inference time (Sec. 4.1)"
    )
    mean_small = sum(r["inference_fraction"] for r in small) / len(small)
    mean_large = sum(r["inference_fraction"] for r in large) / len(large)
    assert mean_large > mean_small, "inference share rises with FLOPs"
    # Even the largest models keep a real overhead share (paper: 16-49%).
    assert all(0.05 < 1 - r["inference_fraction"] for r in large)

    # GPU preprocessing mostly helps; any regressions stay small.
    assert mean_gain > 0.10
    assert min(gains) > -0.35

    assert claims.all_within_tolerance, "\n" + claims.render()
