"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's figures by simulating the
corresponding experiment sweep.  The wall-clock cost being measured by
pytest-benchmark is the *simulation* cost of the sweep; the scientific
output is the printed figure table plus the paper-claim checks.

Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the regenerated figure tables.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks a benchmark as regenerating one paper figure"
    )


@pytest.fixture
def run_once(benchmark):
    """Run a sweep exactly once under pytest-benchmark timing."""

    def runner(func):
        return benchmark.pedantic(func, rounds=1, iterations=1)

    return runner
