"""Ablation — DALI pipeline parallelism and batch size (DESIGN.md Sec. 6).

Two design choices in the GPU preprocessing path:

1. *Pipelines per GPU*: one pipeline serializes host staging with GPU
   decode kernels; two overlap them (DALI's prefetch).  The effect is
   largest for large images, whose staging time rivals kernel time —
   this is the mechanism behind the >2-GPU throttle of Fig. 9.
2. *Preprocessing batch size*: the per-call kernel-launch chain is the
   dominant cost at batch 1 and amortizes with larger batches.
"""

import pytest

from repro.analysis import format_rate, format_table
from repro.core import ServerConfig
from repro.serving import ExperimentConfig, run_experiment
from repro.vision import reference_dataset


def _run(pipelines, batch, size):
    result = run_experiment(
        ExperimentConfig(
            server=ServerConfig(
                model="resnet-50",
                preprocess_device="gpu",
                preprocess_pipelines=pipelines,
                preprocess_batch_size=batch,
            ),
            dataset=reference_dataset(size),
            concurrency=512,
            warmup_requests=400,
            measure_requests=1500,
        )
    )
    return result.throughput


def run_ablation():
    data = {}
    for size in ("medium", "large"):
        for pipelines in (1, 2):
            data[(size, "pipelines", pipelines)] = _run(pipelines, 64, size)
    for batch in (4, 16, 64):
        data[("medium", "batch", batch)] = _run(2, batch, "medium")
    return data


@pytest.mark.figure("ablation-preprocess")
def test_ablation_preprocess_pipelines(run_once):
    data = run_once(run_ablation)

    print(
        "\n"
        + format_table(
            ["configuration", "img/s"],
            [[f"{k[0]}, {k[1]}={k[2]}", format_rate(v)] for k, v in data.items()],
            title="Ablation — GPU preprocessing pipeline structure",
        )
    )

    # Stage overlap matters most for large images (staging ~ kernels).
    large_gain = data[("large", "pipelines", 2)] / data[("large", "pipelines", 1)]
    medium_gain = data[("medium", "pipelines", 2)] / data[("medium", "pipelines", 1)]
    assert large_gain > 1.2, "2 pipelines must clearly help large images"
    assert large_gain > medium_gain

    # Larger preprocessing batches amortize the launch chain.
    assert (
        data[("medium", "batch", 64)]
        > data[("medium", "batch", 16)]
        > data[("medium", "batch", 4)]
    )
    assert data[("medium", "batch", 64)] > 1.5 * data[("medium", "batch", 4)]
