"""Ablation — broker persistence medium and message size (DESIGN.md Sec. 6).

The Kafka-vs-Redis gap of Fig. 11 is a *disk vs memory* story: sweep
the disk-backed log's write bandwidth and the per-face message size to
show the broker ceiling moving exactly with bytes/bandwidth, and that
the in-memory broker is insensitive to both.
"""

import pytest

from repro.analysis import format_rate, format_table
from repro.apps import FacePipelineConfig
from repro.hardware import DEFAULT_CALIBRATION
from repro.hardware.calibration import BrokerCalibration
from repro.serving import run_face_pipeline

FACES = 25


def _run(broker, disk_bandwidth=None):
    calibration = DEFAULT_CALIBRATION
    if disk_bandwidth is not None:
        base = DEFAULT_CALIBRATION.broker
        calibration = DEFAULT_CALIBRATION.with_overrides(
            broker=BrokerCalibration(
                kafka_produce_seconds=base.kafka_produce_seconds,
                kafka_broker_cpu_seconds=base.kafka_broker_cpu_seconds,
                kafka_consume_seconds=base.kafka_consume_seconds,
                kafka_disk_bandwidth=disk_bandwidth,
                kafka_poll_interval_seconds=base.kafka_poll_interval_seconds,
            )
        )
    return run_face_pipeline(
        FacePipelineConfig(broker=broker, faces_per_frame=FACES),
        concurrency=96,
        calibration=calibration,
        warmup_requests=120,
        measure_requests=900,
    ).throughput


def run_media_sweep():
    data = {}
    for bandwidth in (60e6, 115e6, 230e6, 460e6):
        data[("kafka", bandwidth)] = _run("kafka", disk_bandwidth=bandwidth)
    data[("redis", None)] = _run("redis")
    return data


@pytest.mark.figure("ablation-broker")
def test_ablation_broker_media(run_once):
    data = run_once(run_media_sweep)

    print(
        "\n"
        + format_table(
            ["broker", "disk bandwidth", "frames/s"],
            [
                [
                    broker,
                    "-" if bandwidth is None else f"{bandwidth / 1e6:.0f} MB/s",
                    format_rate(rate),
                ]
                for (broker, bandwidth), rate in data.items()
            ],
            title=f"Ablation — broker persistence medium ({FACES} faces/frame)",
        )
    )

    kafka_rates = [rate for (broker, _), rate in data.items() if broker == "kafka"]
    # Kafka throughput rises monotonically with disk bandwidth...
    assert kafka_rates == sorted(kafka_rates)
    assert kafka_rates[-1] > 1.8 * kafka_rates[0]
    # ...but even a 4x-faster disk does not reach the in-memory broker.
    assert data[("redis", None)] > kafka_rates[-1]
