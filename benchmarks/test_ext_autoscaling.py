"""Extension — autoscaling under time-varying load (paper Sec. 2.1).

The paper's datacenter model adds servers when incoming requests exceed
capacity.  This benchmark closes that loop: a diurnal load wave against
a reactive autoscaler, compared with two static fleets — one sized for
the trough (cheap, melts at peak) and one for the peak (meets latency,
wastes nodes).  The autoscaler should approach peak-fleet latency at
closer to trough-fleet cost.
"""

import pytest

from repro.analysis import format_table
from repro.core import MetricsCollector, ServerConfig
from repro.serving import (
    AutoscaledFleet,
    AutoscalerPolicy,
    DiurnalArrivals,
    Fleet,
    PatternedClient,
)
from repro.sim import Environment, RandomStreams
from repro.vision import reference_dataset

SERVER = ServerConfig(model="resnet-50", preprocess_batch_size=64)
ARRIVALS = lambda: DiurnalArrivals(mean_rate=7000, swing=0.7, period_seconds=18)
HORIZON = 36.0


def _run_static(nodes):
    env = Environment()
    collector = MetricsCollector()
    collector.arm(0.0)
    fleet = Fleet(env, nodes, SERVER, per_node_cap=512, metrics=collector)
    PatternedClient(env, fleet, reference_dataset("medium"), ARRIVALS(),
                    RandomStreams(0))
    env.run(until=HORIZON)
    collector.disarm(env.now)
    return {"metrics": collector.finalize(), "node_seconds": nodes * HORIZON}


def _run_autoscaled():
    env = Environment()
    collector = MetricsCollector()
    collector.arm(0.0)
    policy = AutoscalerPolicy(
        target_outstanding_per_node=256,
        min_nodes=1,
        max_nodes=4,
        provision_delay_seconds=0.8,
        cooldown_seconds=0.5,
    )
    fleet = AutoscaledFleet(env, SERVER, policy, metrics=collector)
    PatternedClient(env, fleet, reference_dataset("medium"), ARRIVALS(),
                    RandomStreams(0))
    # Integrate active-node-seconds from the scaling timeline.
    node_seconds = 0.0
    last_time, last_nodes = 0.0, policy.min_nodes
    env.run(until=HORIZON)
    for event in fleet.events:
        node_seconds += last_nodes * (event.at_time - last_time)
        last_time, last_nodes = event.at_time, event.active_nodes
    node_seconds += last_nodes * (HORIZON - last_time)
    collector.disarm(env.now)
    return {"metrics": collector.finalize(), "node_seconds": node_seconds,
            "events": len(fleet.events)}


def run_comparison():
    return {
        "static 1 node (trough-sized)": _run_static(1),
        "static 4 nodes (peak-sized)": _run_static(4),
        "autoscaled 1-4 nodes": _run_autoscaled(),
    }


@pytest.mark.figure("ext-autoscaling")
def test_ext_autoscaling(run_once):
    data = run_once(run_comparison)

    print(
        "\n"
        + format_table(
            ["fleet", "served/s", "p99", "node-seconds"],
            [
                [
                    label,
                    f"{entry['metrics'].throughput:,.0f}",
                    f"{entry['metrics'].latency.p99 * 1e3:,.0f} ms",
                    f"{entry['node_seconds']:.0f}",
                ]
                for label, entry in data.items()
            ],
            title="Extension — diurnal load (mean 7,000 req/s, 0.3x-1.7x swing)",
        )
    )

    trough = data["static 1 node (trough-sized)"]
    peak = data["static 4 nodes (peak-sized)"]
    auto = data["autoscaled 1-4 nodes"]

    # The trough-sized fleet cannot absorb the offered load.
    assert trough["metrics"].throughput < 0.85 * peak["metrics"].throughput
    # The autoscaler serves nearly as much as the peak-sized fleet...
    assert auto["metrics"].throughput > 0.9 * peak["metrics"].throughput
    # ...with a far better tail than the trough fleet...
    assert auto["metrics"].latency.p99 < 0.5 * trough["metrics"].latency.p99
    # ...at lower node cost than static peak sizing (the 1s provision
    # delay and anti-flapping cooldown bound how much a 2-period run can
    # save; longer horizons save more).
    assert auto["node_seconds"] < 0.95 * peak["node_seconds"]
    assert auto["events"] >= 4  # it actually scaled with the wave
