"""Fig. 9 — throughput scaling with the number of GPUs.

Paper (Sec. 4.6): for the medium image, throughput scales ~linearly
from 1 to 4 GPUs with either preprocessing device.  For the large
image, preprocessing is the bottleneck: CPU preprocessing is flat (the
host is saturated, extra GPUs starve), GPU preprocessing gains notably
from 1 -> 2 GPUs and then stalls (the shared DALI host-staging pool
caps batched preprocessing), while inference-only keeps scaling
linearly — confirming inference is not the limit.
"""

import pytest

from repro.analysis import format_rate, format_table
from repro.core import ServerConfig
from repro.serving import ExperimentConfig, run_experiment
from repro.vision import reference_dataset

GPU_COUNTS = (1, 2, 3, 4)
MODEL = "vit-base-16"


def _run(size, variant, gpu_count):
    if variant == "inference_only":
        server = ServerConfig(model=MODEL, preprocess_device="gpu", mode="inference_only",
                              preprocess_batch_size=64)
    else:
        server = ServerConfig(
            model=MODEL,
            preprocess_device=variant,
            preprocess_batch_size=64,
            preprocess_workers=24,  # tuned: one worker per host core
        )
    result = run_experiment(
        ExperimentConfig(
            server=server,
            dataset=reference_dataset(size),
            concurrency=448 * gpu_count,
            gpu_count=gpu_count,
            warmup_requests=500,
            measure_requests=2200,
        )
    )
    return result.throughput


def run_scaling_matrix():
    data = {}
    for size in ("medium", "large"):
        for variant in ("cpu", "gpu", "inference_only"):
            data[(size, variant)] = [_run(size, variant, n) for n in GPU_COUNTS]
    return data


@pytest.mark.figure("fig9")
def test_fig9_multigpu(run_once):
    data = run_once(run_scaling_matrix)

    print(
        "\n"
        + format_table(
            ["image", "variant", "1 GPU", "2 GPUs", "3 GPUs", "4 GPUs", "4-GPU scaling"],
            [
                [size, variant]
                + [format_rate(x) for x in series]
                + [f"{series[3] / series[0]:.2f}x"]
                for (size, variant), series in data.items()
            ],
            title=f"Fig. 9 — {MODEL} multi-GPU scaling",
        )
    )

    # Medium image: ~linear scaling for both preprocessing devices.
    for variant in ("cpu", "gpu"):
        series = data[("medium", variant)]
        assert series[3] > 2.4 * series[0], (
            f"medium/{variant}: expected near-linear scaling to 4 GPUs"
        )
        assert series[0] < series[1] < series[3] * 1.01

    # Inference-only scales linearly for both sizes (inference is never
    # the bottleneck in the large-image regime).
    for size in ("medium", "large"):
        series = data[(size, "inference_only")]
        assert series[3] > 3.0 * series[0]

    # Large image, CPU preprocessing: flat — extra GPUs are wasted.
    series = data[("large", "cpu")]
    assert series[3] < 1.15 * series[0], "large/cpu must not scale with GPUs"

    # Large image, GPU preprocessing: notable 1 -> 2 gain, then marginal.
    series = data[("large", "gpu")]
    gain_12 = series[1] / series[0]
    gain_24 = series[3] / series[1]
    assert gain_12 > 1.3, "1 -> 2 GPUs must give a notable enhancement"
    assert gain_24 < 1.25, "beyond 2 GPUs the gains must be marginal"
    # The large-image ceiling sits far below linear inference scaling.
    assert series[3] < 0.3 * data[("large", "inference_only")][3]
