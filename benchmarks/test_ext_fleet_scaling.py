"""Extension — the paper's Sec. 2.1 datacenter model, executed.

"The load balancer imposes a cap on the number of concurrent requests
each server can handle.  In instances where incoming requests exceed
the system's predefined capacity, additional servers are added."  This
benchmark runs that model: Poisson load against fleets of 1-4 nodes,
showing goodput saturation per node count, and the capacity-planning
loop that converts the paper's per-node throughput into a fleet size.
"""

import pytest

from repro.analysis import format_rate, format_table
from repro.core import ServerConfig
from repro.serving import plan_capacity, run_fleet_experiment
from repro.vision import reference_dataset

SERVER = ServerConfig(model="resnet-50", preprocess_batch_size=64)
OFFERED = 16000.0


def run_fleet_sweep():
    data = {"sweep": [], "plan": None}
    for nodes in (1, 2, 3, 4):
        result = run_fleet_experiment(
            SERVER,
            node_count=nodes,
            offered_rate=OFFERED,
            dataset=reference_dataset("medium"),
            warmup_requests=1500,
            measure_requests=3000,
        )
        data["sweep"].append(result)
    data["plan"] = plan_capacity(
        SERVER,
        offered_rate=OFFERED,
        p99_slo_seconds=0.2,
        dataset=reference_dataset("medium"),
        warmup_requests=1500,
        measure_requests=3000,
    )
    return data


@pytest.mark.figure("ext-fleet")
def test_ext_fleet_scaling(run_once):
    data = run_once(run_fleet_sweep)
    sweep = data["sweep"]
    plan = data["plan"]

    print(
        "\n"
        + format_table(
            ["nodes", "served", "goodput", "p99", "balance", "peak backlog"],
            [
                [
                    str(r.node_count),
                    format_rate(r.throughput),
                    f"{r.goodput_fraction * 100:.0f}%",
                    f"{r.metrics.latency.p99 * 1e3:.0f} ms",
                    f"{r.balance_ratio:.2f}",
                    str(r.peak_backlog),
                ]
                for r in sweep
            ],
            title=f"Extension — fleet scaling at {OFFERED:,.0f} req/s offered",
        )
    )
    print(f"capacity plan: {plan.nodes_required} nodes for p99 <= "
          f"{plan.p99_slo_seconds * 1e3:.0f} ms "
          f"(achieved {plan.achieved_p99 * 1e3:.1f} ms)")

    # Served load grows with nodes until the offer is absorbed.
    served = [r.throughput for r in sweep]
    assert served[0] < served[1] < served[2]
    # Under-provisioned fleets shed/queue load; provisioned ones do not.
    assert sweep[0].goodput_fraction < 0.5
    assert sweep[-1].goodput_fraction > 0.95
    # The balancer keeps nodes even.
    assert all(r.balance_ratio < 1.25 for r in sweep)
    # The planner lands on the smallest sufficient fleet found above.
    sufficient = [r.node_count for r in sweep if r.goodput_fraction > 0.95]
    assert plan.nodes_required <= min(sufficient) + 1
