"""Fig. 8 — energy per image for CPU vs GPU preprocessing.

Paper (Sec. 4.5): CPU preprocessing costs more energy per image across
the board (lower device utilization, more transfers); moving from the
medium to the large image raises CPU energy substantially; and the
GPU's energy share is *smaller* when the GPU does both preprocessing
and inference, because better utilization over-compensates for the
extra work.
"""

import pytest

from repro.analysis import format_table
from repro.apps import serve_classification
from repro.vision import reference_dataset

MODELS = ("tinyvit-5m", "resnet-50", "vit-base-16")
SIZES = ("medium", "large")


def run_energy_matrix():
    data = {}
    for model in MODELS:
        for size in SIZES:
            for device in ("cpu", "gpu"):
                result = serve_classification(
                    model=model,
                    preprocess_device=device,
                    dataset=reference_dataset(size),
                    concurrency=512,
                    measure_requests=1500,
                )
                data[(model, size, device)] = {
                    "cpu_j": result.cpu_joules_per_image,
                    "gpu_j": result.gpu_joules_per_image,
                    "total_j": result.joules_per_image,
                    "gpu_util": result.gpu_utilization,
                }
    return data


@pytest.mark.figure("fig8")
def test_fig8_energy(run_once):
    data = run_once(run_energy_matrix)

    print(
        "\n"
        + format_table(
            ["model", "image", "preproc", "CPU J/img", "GPU J/img", "total J/img", "GPU util"],
            [
                [
                    model,
                    size,
                    device,
                    f"{entry['cpu_j']:.3f}",
                    f"{entry['gpu_j']:.3f}",
                    f"{entry['total_j']:.3f}",
                    f"{entry['gpu_util'] * 100:.0f}%",
                ]
                for (model, size, device), entry in data.items()
            ],
            title="Fig. 8 — energy per image (left/right bars = CPU/GPU preprocessing)",
        )
    )

    for model in MODELS:
        for size in SIZES:
            cpu_pre = data[(model, size, "cpu")]
            gpu_pre = data[(model, size, "gpu")]
            # CPU-based preprocessing costs more energy across the board.
            assert cpu_pre["total_j"] > gpu_pre["total_j"], (
                f"{model}/{size}: CPU preprocessing must cost more J/img"
            )
        # The GPU energy share is smaller when the GPU does both jobs,
        # despite doing more work (utilization over-compensates).  Our
        # utilization-linear power model reproduces this for the medium
        # image; for the large image the near-idle GPU of the collapsed
        # CPU-preprocessing configuration spreads its idle power over
        # very few images, which flips the comparison — a documented
        # deviation (see EXPERIMENTS.md).
        medium_cpu = data[(model, "medium", "cpu")]
        medium_gpu = data[(model, "medium", "gpu")]
        # 5% slack: for ViT-base the two deployments throughput-tie, so
        # the GPU shares tie as well.
        assert medium_gpu["gpu_j"] < medium_cpu["gpu_j"] * 1.05, (
            f"{model}/medium: GPU J/img must shrink with GPU preprocessing"
        )

    for model in MODELS:
        # Medium -> large raises CPU energy per image clearly for CPU
        # preprocessing (more compute) and for GPU preprocessing (more
        # staging/transfer work).
        assert (
            data[(model, "large", "cpu")]["cpu_j"]
            > 2 * data[(model, "medium", "cpu")]["cpu_j"]
        )
        assert (
            data[(model, "large", "gpu")]["cpu_j"]
            > data[(model, "medium", "gpu")]["cpu_j"]
        )
