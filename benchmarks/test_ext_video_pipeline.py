"""Extension — the paper's Sec. 1 video-classification scenario.

"A video classification service receives the video in a compressed
format like MPEG, decodes the video, samples a number of frames, then
resizes and normalizes the resulting images into the format required
by the DNN."  This benchmark executes that pipeline end to end and
quantifies how much *more* preprocessing-dominated video serving is
than image serving, plus the GOP amplification that makes sparse frame
sampling expensive.
"""

import pytest

from repro.analysis import format_table
from repro.apps import VideoClassificationServer, VideoServerConfig
from repro.core import MetricsCollector
from repro.hardware import DEFAULT_CALIBRATION, ServerNode
from repro.serving.client import ClosedLoopClient
from repro.sim import Environment, RandomStreams
from repro.vision import (
    VideoClipDataset,
    keyframe_sample_indices,
    uniform_sample_indices,
    video_decode_cost,
)


def _run_video(frames_per_clip, concurrency=32, clips=400):
    env = Environment()
    node = ServerNode(env)
    collector = MetricsCollector()
    done_ev = env.event()
    state = {"n": 0}

    def on_complete(_request):
        state["n"] += 1
        if state["n"] == clips + 60:
            done_ev.succeed()
        elif state["n"] == 60:
            collector.arm(env.now)

    server = VideoClassificationServer(
        env, node, VideoServerConfig(frames_per_clip=frames_per_clip),
        metrics=collector, on_complete=on_complete,
    )
    client = ClosedLoopClient(
        env, server, VideoClipDataset(mean_duration_seconds=6.0),
        concurrency, RandomStreams(0),
    )

    def ctrl():
        yield done_ev | env.timeout(300)
        collector.disarm(env.now)
        client.stop()

    env.run(until=env.process(ctrl()))
    return collector.finalize()


def run_video_study():
    data = {"serving": {}, "gop": {}}
    for frames in (4, 8, 16):
        data["serving"][frames] = _run_video(frames)
    # GOP amplification: uniform vs keyframe-aligned sampling.
    clip = VideoClipDataset(mean_duration_seconds=8.0).sample(
        RandomStreams(0).stream("gop")
    )
    for label, sampler in (("uniform", uniform_sample_indices),
                           ("keyframe-aligned", keyframe_sample_indices)):
        cost = video_decode_cost(clip, sampler(clip, 8), DEFAULT_CALIBRATION)
        data["gop"][label] = cost
    return data


@pytest.mark.figure("ext-video")
def test_ext_video_pipeline(run_once):
    data = run_once(run_video_study)

    print(
        "\n"
        + format_table(
            ["frames/clip", "clips/s", "mean latency", "preproc share", "DNN share"],
            [
                [
                    str(frames),
                    f"{m.throughput:.1f}",
                    f"{m.latency.mean * 1e3:.0f} ms",
                    f"{m.span_fraction('preprocess') * 100:.0f}%",
                    f"{m.span_fraction('inference') * 100:.0f}%",
                ]
                for frames, m in data["serving"].items()
            ],
            title="Extension — video classification serving (720p clips)",
        )
    )
    for label, cost in data["gop"].items():
        print(f"  {label:17s}: {cost.decoded_frames} frames decoded for "
              f"{cost.sampled_frames} samples "
              f"({cost.amplification:.1f}x, {cost.total_seconds * 1e3:.0f} ms CPU)")

    # Video serving is even more overhead-dominated than image serving.
    for metrics in data["serving"].values():
        assert metrics.span_fraction("preprocess") > 0.5
        assert metrics.span_fraction("inference") < 0.2

    # More sampled frames -> lower clip throughput.
    rates = [m.throughput for m in data["serving"].values()]
    assert rates[0] > rates[1] > rates[2]

    # The GOP tax: uniform sampling decodes several frames per sample;
    # keyframe-aligned sampling avoids it.
    uniform = data["gop"]["uniform"]
    keyed = data["gop"]["keyframe-aligned"]
    assert uniform.amplification > 3
    assert keyed.amplification == pytest.approx(1.0)
    assert keyed.total_seconds < uniform.total_seconds / 3
