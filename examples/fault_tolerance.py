#!/usr/bin/env python3
"""Serve through GPU crashes: deadlines, retries, and circuit breaking.

The paper measures a healthy testbed; this example injects GPU crashes
into a two-node fleet and shows what the resilience layer buys.  Three
runs over identical load and seed:

1. fault-free baseline;
2. crashes with no resilience policy (requests ride out each 500 ms
   restart);
3. the same crashes with deadlines + retries + per-node circuit
   breakers (stalled attempts time out at 250 ms and retry on the
   healthy node).

Run:  python examples/fault_tolerance.py
"""

from repro.analysis import format_table, resilience_summary
from repro.core import ServerConfig
from repro.faults import FaultPlan, GpuCrash, run_fault_experiment
from repro.serving import ResiliencePolicy, run_fleet_experiment

LOAD = dict(node_count=2, offered_rate=150.0, warmup_requests=200,
            measure_requests=1500, seed=0)
#: Restart longer than the 250 ms deadline, so crashes are observable
#: as attempt timeouts rather than merely slow successes.
CRASHES = FaultPlan(profiles=(GpuCrash(mtbf_seconds=4.0, restart_seconds=0.5),))


def main() -> None:
    server = ServerConfig(model="resnet-50")

    baseline = run_fleet_experiment(server, **LOAD)
    unprotected = run_fault_experiment(
        server,
        faults=CRASHES,
        resilience=ResiliencePolicy(deadline_seconds=None, breaker=None),
        **LOAD,
    )
    protected = run_fault_experiment(server, faults=CRASHES, **LOAD)

    headers = ["run", "faults", "throughput", "p99 (ms)", "timeouts", "retries"]
    rows = []
    for label, result in [
        ("fault-free", baseline),
        ("crashes, no resilience", unprotected),
        ("crashes + deadlines/retries", protected),
    ]:
        counters = resilience_summary(result.metrics)
        rows.append([
            label,
            str(result.fault_count),
            f"{result.throughput:.1f}/s",
            f"{result.metrics.latency.p99 * 1e3:.1f}",
            str(counters["timeout_count"]),
            str(counters["retry_count"]),
        ])
    print(format_table(headers, rows, title="GPU crashes on a 2-node fleet"))
    print()
    print("protected :", protected.summary())
    print("goodput vs fault-free: "
          f"{protected.throughput / baseline.throughput:.1%}")
    print("exported  :", sorted(protected.to_dict().keys()))


if __name__ == "__main__":
    main()
