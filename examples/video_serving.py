#!/usr/bin/env python3
"""Serve video classification — the paper's Sec. 1 motivating scenario.

Drives the MPEG-decode -> frame-sample -> preprocess -> DNN pipeline
closed-loop, then shows (a) how much more preprocessing-dominated video
serving is than image serving, and (b) the GOP amplification that makes
uniformly-sampled frames expensive compared to keyframe-aligned
sampling.

Run:  python examples/video_serving.py [frames_per_clip]
"""

import sys

from repro.apps import VideoClassificationServer, VideoServerConfig
from repro.core import MetricsCollector
from repro.hardware import DEFAULT_CALIBRATION, ServerNode
from repro.serving.client import ClosedLoopClient
from repro.sim import Environment, RandomStreams
from repro.analysis import format_table
from repro.vision import (
    VideoClipDataset,
    keyframe_sample_indices,
    uniform_sample_indices,
    video_decode_cost,
)


def serve(frames_per_clip: int):
    env = Environment()
    node = ServerNode(env)
    collector = MetricsCollector()
    done_ev = env.event()
    state = {"n": 0}

    def on_complete(_request):
        state["n"] += 1
        if state["n"] == 60:
            collector.arm(env.now)
        elif state["n"] == 460:
            done_ev.succeed()

    server = VideoClassificationServer(
        env, node, VideoServerConfig(frames_per_clip=frames_per_clip),
        metrics=collector, on_complete=on_complete,
    )
    client = ClosedLoopClient(
        env, server, VideoClipDataset(mean_duration_seconds=6.0), 32, RandomStreams(0)
    )

    def ctrl():
        yield done_ev | env.timeout(300)
        collector.disarm(env.now)
        client.stop()

    env.run(until=env.process(ctrl()))
    return collector.finalize()


def main() -> None:
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    metrics = serve(frames)

    print(
        format_table(
            ["metric", "value"],
            [
                ["clips/s", f"{metrics.throughput:.1f}"],
                ["frames/s", f"{metrics.throughput * frames:.0f}"],
                ["mean clip latency", f"{metrics.latency.mean * 1e3:.0f} ms"],
                ["p99 clip latency", f"{metrics.latency.p99 * 1e3:.0f} ms"],
                ["decode+preprocess share", f"{metrics.span_fraction('preprocess') * 100:.0f}%"],
                ["DNN share", f"{metrics.span_fraction('inference') * 100:.0f}%"],
            ],
            title=f"Video classification — 720p clips, {frames} frames sampled per clip",
        )
    )

    clip = VideoClipDataset(mean_duration_seconds=8.0).sample(
        RandomStreams(0).stream("demo")
    )
    print("\nThe GOP tax (one 8 s 720p clip, 8 sampled frames):")
    for label, sampler in (("uniform sampling", uniform_sample_indices),
                           ("keyframe-aligned", keyframe_sample_indices)):
        cost = video_decode_cost(clip, sampler(clip, 8), DEFAULT_CALIBRATION)
        print(f"  {label:17s}: decode {cost.decoded_frames:3d} frames "
              f"({cost.amplification:.1f}x amplification) "
              f"= {cost.total_seconds * 1e3:.0f} ms CPU")
    print("\nInter-coded video cannot be random-accessed: sampling mid-GOP")
    print("frames decodes the whole lead-in. Aligning samples to keyframes")
    print("trades temporal coverage for a large preprocessing saving — an")
    print("optimization entirely outside the DNN, which is the paper's point.")


if __name__ == "__main__":
    main()
