#!/usr/bin/env python3
"""Capacity planning: how many GPUs per host CPU? (paper Sec. 4.6)

For a given model and image-size mix, sweeps 1-4 GPUs under both
preprocessing placements and reports throughput, scaling efficiency,
and energy per image — surfacing the paper's warning that a single
CPU cannot feed many GPUs once preprocessing dominates.

Run:  python examples/multi_gpu_planning.py [model] [small|medium|large]
"""

import sys

from repro import ExperimentConfig, ServerConfig, format_table, run_experiment
from repro.vision import reference_dataset


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "vit-base-16"
    size = sys.argv[2] if len(sys.argv) > 2 else "large"
    dataset = reference_dataset(size)

    rows = []
    for device in ("cpu", "gpu"):
        base = None
        for gpus in (1, 2, 3, 4):
            result = run_experiment(
                ExperimentConfig(
                    server=ServerConfig(
                        model=model,
                        preprocess_device=device,
                        preprocess_batch_size=64,
                        preprocess_workers=24,
                    ),
                    dataset=dataset,
                    concurrency=448 * gpus,
                    gpu_count=gpus,
                    warmup_requests=400,
                    measure_requests=1800,
                )
            )
            if base is None:
                base = result.throughput
            efficiency = result.throughput / (base * gpus)
            rows.append(
                [
                    device,
                    str(gpus),
                    f"{result.throughput:,.0f}",
                    f"{efficiency * 100:.0f}%",
                    f"{result.joules_per_image:.3f} J",
                    f"{result.gpu_utilization * 100:.0f}%",
                ]
            )

    print(
        format_table(
            ["preproc", "GPUs", "img/s", "scaling eff.", "energy/img", "GPU util"],
            rows,
            title=f"Multi-GPU scaling — {model}, {size} images",
        )
    )
    print()
    print("Reading the table: scaling efficiency is throughput relative to")
    print("perfect linear scaling of the 1-GPU number.  Low GPU utilization at")
    print("high GPU counts means the host-side preprocessing path is starving")
    print("the accelerators — add host cores or move preprocessing before")
    print("adding a third GPU (the paper's Sec. 4.6 conclusion).")


if __name__ == "__main__":
    main()
