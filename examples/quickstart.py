#!/usr/bin/env python3
"""Quickstart: serve one vision model and inspect where time goes.

Deploys a throughput-optimized ResNet-50 (TensorRT, GPU preprocessing)
on the simulated i9-13900K + RTX 4090 node, drives it closed-loop, and
prints throughput, latency percentiles, the per-stage latency
breakdown, and energy per image — the core measurements of the paper.

Run:  python examples/quickstart.py
"""

from repro import breakdown_from_metrics, format_table, serve_classification


def main() -> None:
    result = serve_classification(
        model="resnet-50",
        preprocess_device="gpu",
        image_size="medium",
        concurrency=512,
    )

    metrics = result.metrics
    print(f"throughput      : {metrics.throughput:,.0f} img/s")
    print(f"mean latency    : {metrics.latency.mean * 1e3:.1f} ms")
    print(f"p99 latency     : {metrics.latency.p99 * 1e3:.1f} ms")
    print(f"mean batch size : {metrics.mean_batch_size:.1f}")
    print(f"energy          : {result.joules_per_image:.3f} J/img "
          f"(CPU {result.cpu_joules_per_image:.3f} + GPU {result.gpu_joules_per_image:.3f})")
    print(f"GPU utilization : {result.gpu_utilization * 100:.0f}%")

    breakdown = breakdown_from_metrics(metrics)
    print()
    print(
        format_table(
            ["stage", "mean per request", "share of latency"],
            [
                ["preprocess", f"{breakdown.preprocess * 1e3:.2f} ms",
                 f"{breakdown.preprocess_fraction * 100:.1f}%"],
                ["queueing", f"{breakdown.queue * 1e3:.2f} ms",
                 f"{breakdown.queue_fraction * 100:.1f}%"],
                ["data transfer", f"{breakdown.transfer * 1e3:.2f} ms", ""],
                ["DNN inference", f"{breakdown.inference * 1e3:.2f} ms",
                 f"{breakdown.inference_fraction * 100:.1f}%"],
                ["other", f"{breakdown.other * 1e3:.2f} ms", ""],
            ],
            title="Where an average request spends its time",
        )
    )
    print()
    print(
        f"-> {breakdown.overhead_fraction * 100:.0f}% of request latency is "
        f"*not* DNN inference — the paper's central observation."
    )


if __name__ == "__main__":
    main()
