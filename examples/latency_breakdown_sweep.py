#!/usr/bin/env python3
"""Zero-load latency anatomy across image sizes and preprocessing devices.

Recreates the paper's Sec. 4.2 analysis interactively: for each of the
three reference ImageNet images (4 kB small, 121 kB medium, 9.5 MB
large) and each preprocessing device, print the latency breakdown and
the preprocessing share — the quantity the paper headlines at 56%
(medium/CPU) and 97% (large/CPU).

Run:  python examples/latency_breakdown_sweep.py [model]
"""

import sys

from repro import breakdown_from_metrics, format_table, zero_load_breakdown
from repro.vision import REFERENCE_IMAGES


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "vit-base-16"
    rows = []
    for size, image in REFERENCE_IMAGES.items():
        for device in ("cpu", "gpu"):
            result = zero_load_breakdown(
                model=model, preprocess_device=device, image_size=size
            )
            b = breakdown_from_metrics(result.metrics)
            rows.append(
                [
                    f"{size} ({image.width}x{image.height})",
                    device,
                    f"{b.total * 1e3:7.2f} ms",
                    f"{b.preprocess * 1e3:7.2f} ms",
                    f"{b.inference * 1e3:5.2f} ms",
                    f"{b.preprocess_fraction * 100:5.1f}%",
                ]
            )

    print(
        format_table(
            ["image", "preproc", "latency", "preprocessing", "inference", "preproc share"],
            rows,
            title=f"Zero-load latency breakdown — {model}",
        )
    )
    print()
    print("Notes (match paper Sec. 4.2):")
    print(" * DNN inference time is constant: every image is resized to the")
    print("   model's input before the DNN sees it.")
    print(" * CPU preprocessing beats GPU for the small image (launch overheads),")
    print("   loses by >5x for the large one (parallel decode wins).")


if __name__ == "__main__":
    main()
