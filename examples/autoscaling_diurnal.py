#!/usr/bin/env python3
"""Autoscale a serving fleet through a diurnal load wave.

The paper's datacenter model (Sec. 2.1) adds servers when incoming
requests exceed capacity.  This example drives a sinusoidal "day" of
traffic (compressed to 60 simulated seconds) against a reactive
autoscaler and prints the scaling timeline, a load sparkline, and the
served-vs-offered summary.

Run:  python examples/autoscaling_diurnal.py
"""

from repro.analysis import format_table, sparkline
from repro.core import MetricsCollector, ServerConfig
from repro.serving import (
    AutoscaledFleet,
    AutoscalerPolicy,
    DiurnalArrivals,
    PatternedClient,
)
from repro.sim import Environment, Monitor, RandomStreams
from repro.vision import reference_dataset


def main() -> None:
    env = Environment()
    collector = MetricsCollector()
    collector.arm(0.0)

    policy = AutoscalerPolicy(
        target_outstanding_per_node=256,
        min_nodes=1,
        max_nodes=4,
        provision_delay_seconds=1.5,
    )
    fleet = AutoscaledFleet(
        env,
        ServerConfig(model="resnet-50", preprocess_batch_size=64),
        policy,
        metrics=collector,
    )
    arrivals = DiurnalArrivals(mean_rate=9000, swing=0.7, period_seconds=30)
    PatternedClient(env, fleet, reference_dataset("medium"), arrivals,
                    RandomStreams(0))

    monitor = Monitor(env, interval=1.0)
    monitor.probe("offered_rate", lambda: arrivals.rate_at(env.now))
    monitor.probe("active_nodes", lambda: fleet.active_count)
    monitor.probe("outstanding", lambda: fleet.total_outstanding)
    monitor.start()

    env.run(until=60.0)
    collector.disarm(env.now)
    metrics = collector.finalize()

    print("offered load :", sparkline(monitor.series("offered_rate").values))
    print("active nodes :", sparkline(monitor.series("active_nodes").values,
                                      bounds=(0, policy.max_nodes)))
    print("outstanding  :", sparkline(monitor.series("outstanding").values))
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["mean offered", f"{arrivals.mean_rate:,.0f} req/s"],
                ["served", f"{metrics.throughput:,.0f} req/s"],
                ["mean latency", f"{metrics.latency.mean * 1e3:.0f} ms"],
                ["p99 latency", f"{metrics.latency.p99 * 1e3:.0f} ms"],
                ["scaling actions", str(len(fleet.events))],
                ["mean active nodes",
                 f"{monitor.series('active_nodes').time_average():.2f}"],
            ],
            title="Autoscaled fleet over two diurnal periods",
        )
    )
    print("\nScaling timeline:")
    for event in fleet.events[:16]:
        print(f"  t={event.at_time:5.1f}s  {event.action:9s} -> "
              f"{event.active_nodes} active node(s)")


if __name__ == "__main__":
    main()
