#!/usr/bin/env python3
"""Tune a serving deployment the way the paper does (Sec. 2.3).

Starts from a deliberately modest configuration of a ViT-base
deployment and runs the "quick search" over preprocessing workers,
inference instances, max batch size, and client concurrency, printing
every evaluated point and the final speedup — the paper found ~300
img/s this way before even switching to TensorRT.

Run:  python examples/server_tuning.py
"""

from repro import ServerConfig, format_table, tune_server
from repro.vision import reference_dataset


def main() -> None:
    base = ServerConfig(
        model="vit-base-16",
        runtime="onnxruntime",
        preprocess_device="gpu",
        preprocess_workers=8,
        inference_instances=1,
        max_batch_size=32,
        preprocess_batch_size=64,
    )
    result = tune_server(
        base,
        dataset=reference_dataset("medium"),
        search_space={
            "preprocess_workers": (8, 16, 24),
            "inference_instances": (1, 2, 3),
            "max_batch_size": (32, 64, 128),
            "concurrency": (128, 256, 512),
        },
        baseline_concurrency=128,
        measure_requests=1200,
    )

    print(
        format_table(
            ["workers", "instances", "max batch", "concurrency", "img/s", "p99"],
            [
                [
                    str(p.server.preprocess_workers),
                    str(p.server.inference_instances),
                    str(p.server.max_batch_size),
                    str(p.concurrency),
                    f"{p.throughput:,.0f}",
                    f"{p.p99_latency * 1e3:.0f} ms",
                ]
                for p in result.trace
            ],
            title="Server-parameter search trace",
        )
    )
    print()
    print(f"baseline : {result.baseline.throughput:,.0f} img/s")
    print(f"tuned    : {result.best.throughput:,.0f} img/s  "
          f"({result.improvement:+,.0f} img/s, {result.speedup:.2f}x)")
    print(f"best     : workers={result.best.server.preprocess_workers}, "
          f"instances={result.best.server.inference_instances}, "
          f"max_batch={result.best.server.max_batch_size}, "
          f"concurrency={result.best.concurrency}")
    print()
    print("The paper's equivalent search bought ~300 img/s — 'server software")
    print("parameters are critical to high performance'.")


if __name__ == "__main__":
    main()
