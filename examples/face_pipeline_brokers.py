#!/usr/bin/env python3
"""Choose a message broker for a multi-DNN pipeline (paper Sec. 4.7).

Sweeps faces-per-frame for the face-detection -> identification
pipeline under three inter-stage transports — Kafka-like (disk-backed),
Redis-like (in-memory), and fused (no broker, in-process) — and prints
both the throughput crossover and the zero-load broker tax.

Run:  python examples/face_pipeline_brokers.py
"""

from repro import FacePipelineConfig, format_table, run_face_pipeline

FACE_COUNTS = (1, 3, 5, 9, 15, 25)
BROKERS = ("fused", "redis", "kafka")


def main() -> None:
    rows = []
    winners = {}
    for faces in FACE_COUNTS:
        rates = {}
        for broker in BROKERS:
            result = run_face_pipeline(
                FacePipelineConfig(broker=broker, faces_per_frame=faces),
                concurrency=96,
                warmup_requests=120,
                measure_requests=800,
            )
            rates[broker] = result.throughput
        winner = max(rates, key=rates.get)
        winners[faces] = winner
        rows.append(
            [str(faces)]
            + [f"{rates[b]:,.0f}" for b in BROKERS]
            + [winner]
        )

    print(
        format_table(
            ["faces/frame", *BROKERS, "best"],
            rows,
            title="Pipeline throughput (frames/s) by broker",
        )
    )

    print()
    print("Zero-load broker tax at 25 faces/frame:")
    for broker in ("kafka", "redis"):
        result = run_face_pipeline(
            FacePipelineConfig(broker=broker, faces_per_frame=25),
            concurrency=1,
            warmup_requests=20,
            measure_requests=100,
        )
        share = result.metrics.span_mean("broker") / result.mean_latency
        print(f"  {broker:6s}: {result.mean_latency * 1e3:6.1f} ms/frame, "
              f"broker share {share * 100:4.1f}%")

    print()
    print("Guidance (matches the paper): skip the broker at low fan-out; once")
    print("a frame yields many faces, an in-memory broker with a batched")
    print("stage-2 server wins — and a disk-backed log is never the answer")
    print("for latency-sensitive pipelines.")


if __name__ == "__main__":
    main()
