"""Unit tests for the model zoo, runtimes, and roofline latency model."""

import pytest

from repro.hardware import DEFAULT_CALIBRATION
from repro.models import (
    FIG4_MODELS,
    MODEL_ZOO,
    ONNXRUNTIME,
    PYTORCH,
    RUNTIMES,
    TENSORRT,
    batch_efficiency,
    get_model,
    get_runtime,
    inference_cost,
    inference_latency,
    models_by_task,
    peak_throughput,
)

CAL = DEFAULT_CALIBRATION


class TestZoo:
    def test_lookup(self):
        vit = get_model("vit-base-16")
        assert vit.gflops == pytest.approx(17.6)
        assert vit.input_size == 224

    def test_unknown_model_message(self):
        with pytest.raises(KeyError, match="known models"):
            get_model("alexnet")

    def test_fig4_models_ordered_by_flops(self):
        flops = [MODEL_ZOO[name].gflops for name in FIG4_MODELS]
        assert flops == sorted(flops)

    def test_fig4_excludes_embedding_models(self):
        assert "facenet" not in FIG4_MODELS
        assert len(FIG4_MODELS) >= 20  # "a large number of DNNs"

    def test_all_tasks_covered(self):
        """The paper spans classification, segmentation, detection, depth."""
        tasks = {spec.task for spec in MODEL_ZOO.values()}
        assert {"classification", "segmentation", "detection", "depth", "embedding"} <= tasks

    def test_models_by_task(self):
        classifiers = models_by_task("classification")
        assert len(classifiers) >= 10
        assert classifiers[0].gflops <= classifiers[-1].gflops
        with pytest.raises(KeyError):
            models_by_task("text-generation")

    def test_derived_byte_counts(self):
        vit = get_model("vit-base-16")
        assert vit.param_bytes == pytest.approx(86.6e6 * 2)
        assert vit.input_pixels == 224 * 224


class TestRuntimes:
    def test_registry(self):
        assert set(RUNTIMES) == {"tensorrt", "onnxruntime", "pytorch"}
        assert get_runtime("tensorrt") is TENSORRT
        with pytest.raises(KeyError, match="known runtimes"):
            get_runtime("tvm")

    def test_efficiency_ordering(self):
        """TensorRT > ONNX runtime > eager PyTorch (paper Fig. 3 ladder)."""
        assert TENSORRT.efficiency_multiplier > ONNXRUNTIME.efficiency_multiplier
        assert ONNXRUNTIME.efficiency_multiplier > PYTORCH.efficiency_multiplier
        assert TENSORRT.dispatch_overhead_seconds < PYTORCH.dispatch_overhead_seconds


class TestRoofline:
    def test_batch_efficiency_increases_with_batch(self):
        e1 = batch_efficiency(1, TENSORRT, CAL)
        e8 = batch_efficiency(8, TENSORRT, CAL)
        e64 = batch_efficiency(64, TENSORRT, CAL)
        assert e1 < e8 < e64 < CAL.gpu.efficiency_max

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            batch_efficiency(0, TENSORRT, CAL)

    def test_model_half_batch_override(self):
        """Detectors saturate the GPU at batch 1 (flat batching curve)."""
        rcnn = get_model("faster-rcnn-face")
        vit = get_model("vit-base-16")
        assert batch_efficiency(1, TENSORRT, CAL, rcnn) > batch_efficiency(1, TENSORRT, CAL, vit)

    def test_latency_monotonic_in_batch(self):
        vit = get_model("vit-base-16")
        latencies = [inference_latency(vit, TENSORRT, b, CAL) for b in (1, 2, 4, 8, 16, 32, 64)]
        assert latencies == sorted(latencies)

    def test_per_image_latency_decreases_with_batch(self):
        vit = get_model("vit-base-16")
        per_image_1 = inference_cost(vit, TENSORRT, 1, CAL).per_image_seconds
        per_image_64 = inference_cost(vit, TENSORRT, 64, CAL).per_image_seconds
        assert per_image_64 < per_image_1 / 2

    def test_tensorrt_faster_than_pytorch(self):
        vit = get_model("vit-base-16")
        assert inference_latency(vit, TENSORRT, 64, CAL) < inference_latency(vit, PYTORCH, 64, CAL)

    def test_plausible_vit_batch1_latency(self):
        """TensorRT ViT-base at batch 1 on a 4090: a couple of ms."""
        vit = get_model("vit-base-16")
        latency = inference_latency(vit, TENSORRT, 1, CAL)
        assert 1e-3 < latency < 5e-3

    def test_peak_throughput_reasonable(self):
        vit = get_model("vit-base-16")
        peak = peak_throughput(vit, TENSORRT, 128, CAL)
        assert 1500 < peak < 5000  # paper: >1600 end-to-end, inference higher

    def test_cost_decomposition(self):
        tiny = get_model("tinyvit-5m")
        cost = inference_cost(tiny, TENSORRT, 64, CAL)
        assert cost.total_seconds == pytest.approx(
            max(cost.compute_seconds, cost.memory_seconds) + cost.launch_seconds
        )
        assert cost.batch == 64
