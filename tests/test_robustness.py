"""Failure-injection and robustness tests.

The simulator must fail loudly and informatively — mis-configured
experiments, impossible allocations, and dead processes should raise
clear errors rather than hang or silently corrupt results.
"""

import pytest

from repro.core import InferenceServer, MetricsCollector, ServerConfig
from repro.hardware import DEFAULT_CALIBRATION, OutOfMemoryError, ServerNode
from repro.hardware.calibration import GpuCalibration
from repro.serving import ExperimentConfig, run_experiment
from repro.sim import Environment, Interrupt
from repro.vision import MEDIUM_IMAGE, reference_dataset


class TestMisconfiguredExperiments:
    def test_timeout_with_no_completions_raises_clearly(self):
        """A window that closes with zero samples must say so."""
        config = ExperimentConfig(
            concurrency=1,
            warmup_requests=10_000_000,  # unreachable
            measure_requests=1,
            # Shorter than a single request's latency: the measurement
            # window opens and closes with zero completions.
            max_sim_seconds=0.002,
        )
        with pytest.raises(RuntimeError, match="no requests completed"):
            run_experiment(config)

    def test_unknown_model_fails_at_construction(self):
        env = Environment()
        node = ServerNode(env)
        with pytest.raises(KeyError, match="known models"):
            InferenceServer(env, node, ServerConfig(model="gpt-4v"))

    def test_unknown_runtime_fails_at_construction(self):
        env = Environment()
        node = ServerNode(env)
        with pytest.raises(KeyError, match="known runtimes"):
            InferenceServer(env, node, ServerConfig(runtime="tvm"))


class TestMemoryExhaustion:
    def test_model_working_set_larger_than_pool_raises(self):
        """A pool smaller than one request's working set is fatal, not a
        hang: the OOM escalates out of run()."""
        tiny_gpu = GpuCalibration(
            memory_bytes=4.001 * 1024**3,
            reserved_bytes=4 * 1024**3,  # ~1 MiB usable
        )
        calibration = DEFAULT_CALIBRATION.with_overrides(gpu=tiny_gpu)
        env = Environment()
        node = ServerNode(env, calibration)
        server = InferenceServer(
            env, node, ServerConfig(preprocess_device="gpu")
        )
        server.submit(MEDIUM_IMAGE)
        with pytest.raises(OutOfMemoryError):
            env.run(until=1.0)


class TestInterruptedClients:
    def test_interrupting_a_waiting_client_does_not_corrupt_server(self):
        """Killing a client mid-request leaves the server consistent:
        the in-flight request still completes and is recorded."""
        env = Environment()
        node = ServerNode(env)
        collector = MetricsCollector()
        collector.arm(0.0)
        server = InferenceServer(env, node, ServerConfig(), metrics=collector)

        def client():
            try:
                yield server.submit(MEDIUM_IMAGE)
            except Interrupt:
                pass
            # The client gave up; the server-side work is unaffected.

        proc = env.process(client())

        def killer():
            yield env.timeout(0.001)
            proc.interrupt("client disconnected")

        env.process(killer())
        env.run(until=1.0)
        assert collector.sample_count == 1  # request finished anyway

    def test_stopped_client_mid_burst(self):
        from repro.serving.client import ClosedLoopClient
        from repro.sim import RandomStreams

        env = Environment()
        node = ServerNode(env)
        collector = MetricsCollector()
        collector.arm(0.0)
        server = InferenceServer(env, node, ServerConfig(model="resnet-50"),
                                 metrics=collector)
        client = ClosedLoopClient(env, server, reference_dataset("medium"),
                                  16, RandomStreams(0))

        def stopper():
            yield env.timeout(0.05)
            client.stop()

        env.process(stopper())
        env.run(until=2.0)
        # Everything issued eventually completed; nothing leaked.
        assert collector.total_completed == client.issued


class TestOverloadBehaviour:
    def test_server_survives_10x_overload_burst(self):
        """An open-loop burst far above capacity queues without error
        and drains afterwards."""
        from repro.serving import run_open_loop

        result = run_open_loop(
            ExperimentConfig(
                # CPU preprocessing: the overload backlog buffers in host
                # RAM (the Fig. 5 saturation regime) instead of thrashing
                # GPU memory, keeping the stress test fast.
                server=ServerConfig(model="resnet-50", preprocess_device="cpu",
                                    preprocess_batch_size=64),
                dataset=reference_dataset("medium"),
                warmup_requests=100,
                measure_requests=1000,
                max_sim_seconds=5.0,
            ),
            offered_rate=40_000,  # ~10x capacity
        )
        # Served throughput equals capacity, not the offered rate.
        assert 2000 < result.throughput < 9000
        # Latency reflects the unbounded queue, monotone percentiles hold.
        assert result.metrics.latency.p99 >= result.metrics.latency.p50

    def test_zero_queue_delay_still_serves(self):
        result = run_experiment(
            ExperimentConfig(
                server=ServerConfig(max_queue_delay_seconds=0.0),
                dataset=reference_dataset("medium"),
                concurrency=64,
                warmup_requests=50,
                measure_requests=300,
            )
        )
        assert result.throughput > 100

    def test_single_worker_single_instance_degenerate_config(self):
        result = run_experiment(
            ExperimentConfig(
                server=ServerConfig(
                    preprocess_device="cpu",
                    preprocess_workers=1,
                    inference_instances=1,
                    max_batch_size=1,
                    preprocess_pipelines=1,
                ),
                dataset=reference_dataset("medium"),
                concurrency=8,
                warmup_requests=20,
                measure_requests=100,
            )
        )
        assert result.throughput > 50
        assert result.metrics.mean_batch_size == pytest.approx(1.0)
