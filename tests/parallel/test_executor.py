"""Unit tests for the process-pool sweep executor."""

import pickle

import pytest

from repro.parallel import (
    ParallelConfig,
    SweepError,
    SweepReport,
    derive_seed,
    run_sweep,
)
from repro.parallel.executor import (
    _PERSISTENT_POOLS,
    _pool_point,
    shutdown_persistent_pools,
)


# Task functions must live at module level so they pickle by reference.
def square(point):
    return point * point


def fail_on_three(point):
    if point == 3:
        raise ValueError("boom")
    return point


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "a") == derive_seed(0, "a")
        assert derive_seed(7, 3) == derive_seed(7, 3)

    def test_distinct_keys_and_bases(self):
        seeds = {derive_seed(0, key) for key in range(100)}
        assert len(seeds) == 100
        assert derive_seed(0, "x") != derive_seed(1, "x")

    def test_position_independent(self):
        """A point's seed depends only on its key, never on sweep shape."""
        full = [derive_seed(5, k) for k in ("a", "b", "c")]
        sliced = [derive_seed(5, k) for k in ("c", "a")]
        assert sliced == [full[2], full[0]]


class TestParallelConfig:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ParallelConfig(workers=0)
        with pytest.raises(ValueError):
            ParallelConfig(workers=-2)

    def test_rejects_bad_context(self):
        with pytest.raises(ValueError):
            ParallelConfig(mp_context="thread")

    def test_resolved_workers_capped_by_points(self):
        assert ParallelConfig(workers=8).resolved_workers(3) == 3
        assert ParallelConfig(workers=2).resolved_workers(10) == 2
        assert ParallelConfig().resolved_workers(1) == 1


class TestRunSweepSerial:
    def test_ordered_values(self):
        report = run_sweep(square, [1, 2, 3, 4], ParallelConfig(serial=True))
        assert report.values == [1, 4, 9, 16]
        assert report.mode == "serial"
        assert report.workers == 1
        assert [r.index for r in report.results] == [0, 1, 2, 3]

    def test_empty_sweep(self):
        report = run_sweep(square, [], ParallelConfig(serial=True))
        assert report.values == []
        assert report.wall_seconds == 0.0

    def test_failure_names_the_point(self):
        with pytest.raises(SweepError) as excinfo:
            run_sweep(fail_on_three, [1, 2, 3], ParallelConfig(serial=True))
        assert excinfo.value.index == 2
        assert excinfo.value.point == 3

    def test_progress_callback(self):
        seen = []
        run_sweep(
            square,
            [5, 6],
            ParallelConfig(serial=True),
            on_progress=lambda result, total: seen.append((result.index, total)),
        )
        assert seen == [(0, 2), (1, 2)]

    def test_single_point_runs_serial_even_with_pool_config(self):
        report = run_sweep(square, [9], ParallelConfig(workers=4))
        assert report.mode == "serial"
        assert report.values == [81]


class TestRunSweepParallel:
    def test_pool_matches_serial_in_order(self):
        serial = run_sweep(square, list(range(6)), ParallelConfig(serial=True))
        pooled = run_sweep(square, list(range(6)), ParallelConfig(workers=2))
        assert pooled.mode == "parallel"
        assert pooled.values == serial.values

    def test_pool_failure_names_the_point(self):
        with pytest.raises(SweepError) as excinfo:
            run_sweep(fail_on_three, [1, 3, 5], ParallelConfig(workers=2))
        assert excinfo.value.index == 1
        assert excinfo.value.point == 3

    def test_verify_pass(self):
        report = run_sweep(
            square, [1, 2, 3], ParallelConfig(workers=2, verify=True)
        )
        assert report.verified is True


class TestChunkedSubmission:
    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            ParallelConfig(chunk_size=0)

    def test_chunked_matches_serial_in_order(self):
        serial = run_sweep(square, list(range(7)), ParallelConfig(serial=True))
        chunked = run_sweep(
            square, list(range(7)), ParallelConfig(workers=2, chunk_size=3)
        )
        assert chunked.mode == "parallel"
        assert chunked.values == serial.values
        assert [r.index for r in chunked.results] == list(range(7))

    def test_chunk_larger_than_sweep(self):
        report = run_sweep(
            square, [2, 3], ParallelConfig(workers=2, chunk_size=100)
        )
        assert report.values == [4, 9]

    def test_chunked_failure_names_the_exact_point(self):
        """The failing point inside a chunk — not the chunk — is named."""
        with pytest.raises(SweepError) as excinfo:
            run_sweep(
                fail_on_three,
                [1, 2, 3, 4, 5, 6],
                ParallelConfig(workers=2, chunk_size=3),
            )
        assert excinfo.value.index == 2
        assert excinfo.value.point == 3

    def test_report_records_chunk_size(self):
        report = run_sweep(
            square, list(range(4)), ParallelConfig(workers=2, chunk_size=2)
        )
        assert report.to_dict()["chunk_size"] == 2


class TestPersistentPool:
    @pytest.fixture(autouse=True)
    def _clean_pools(self):
        shutdown_persistent_pools()
        yield
        shutdown_persistent_pools()

    def test_persistent_matches_serial(self):
        serial = run_sweep(square, list(range(5)), ParallelConfig(serial=True))
        pooled = run_sweep(
            square, list(range(5)), ParallelConfig(workers=2, persistent=True)
        )
        assert pooled.values == serial.values
        assert pooled.to_dict()["persistent"] is True

    def test_pool_is_reused_across_sweeps(self):
        config = ParallelConfig(workers=2, persistent=True)
        run_sweep(square, list(range(4)), config)
        assert len(_PERSISTENT_POOLS) == 1
        pool = next(iter(_PERSISTENT_POOLS.values()))
        run_sweep(square, list(range(4)), config)
        assert next(iter(_PERSISTENT_POOLS.values())) is pool

    def test_shutdown_is_idempotent(self):
        run_sweep(
            square, list(range(4)), ParallelConfig(workers=2, persistent=True)
        )
        assert _PERSISTENT_POOLS
        shutdown_persistent_pools()
        assert not _PERSISTENT_POOLS
        shutdown_persistent_pools()  # second call: no-op, no raise

    def test_persistent_failure_still_names_the_point(self):
        with pytest.raises(SweepError) as excinfo:
            run_sweep(
                fail_on_three,
                [1, 3],
                ParallelConfig(workers=2, persistent=True),
            )
        assert excinfo.value.point == 3


class TestSweepReport:
    def test_accounting(self):
        report = run_sweep(square, [1, 2], ParallelConfig(serial=True))
        assert isinstance(report, SweepReport)
        assert report.busy_seconds == sum(r.seconds for r in report.results)
        assert 0.0 <= report.parallel_efficiency
        data = report.to_dict()
        assert data["points"] == 2
        assert data["mode"] == "serial"
        assert "points in" in report.summary()

    def test_report_is_picklable(self):
        report = run_sweep(square, [1, 2], ParallelConfig(serial=True))
        clone = pickle.loads(pickle.dumps(report))
        assert clone.values == report.values


class TestImportHygieneGuard:
    def test_pool_point_rejects_heavy_imports(self, monkeypatch):
        import sys
        import types

        monkeypatch.setitem(sys.modules, "matplotlib", types.ModuleType("matplotlib"))
        with pytest.raises(ImportError, match="matplotlib"):
            _pool_point(square, 0, 2)
