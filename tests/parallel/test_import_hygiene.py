"""Guard: sweep workers must never import heavyweight optional deps.

A spawned worker imports ``repro.parallel.tasks`` plus whatever the task
touches.  If that transitively pulled matplotlib & co, every worker in
every sweep would pay the import (and memory) tax — so the import graph
is pinned down here, and :func:`repro.parallel.executor._pool_point`
enforces the same rule at runtime inside real pool workers.
"""

import os
import pathlib
import subprocess
import sys

import repro
from repro.parallel import HEAVY_MODULES

CHECK_SNIPPET = """
import sys
import repro.parallel            # executor + tasks: the worker surface
import repro.parallel.bench      # the harness a CI worker runs
import repro.serving.runner      # what run_experiment_point executes
import repro.faults.experiment   # what run_fleet_result_point executes
heavy = [name for name in {heavy!r} if name in sys.modules]
assert not heavy, f"worker surface imported heavy modules: {{heavy}}"
print("clean")
"""


def test_worker_import_surface_stays_lean():
    """Importing everything a pool worker imports must not load any
    heavyweight optional dependency (fresh interpreter, like spawn)."""
    # The child needs the same import path pytest gave us; pytest's
    # ``pythonpath`` ini option does not propagate to subprocesses.
    package_root = str(pathlib.Path(repro.__file__).parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (package_root, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", CHECK_SNIPPET.format(heavy=HEAVY_MODULES)],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "clean"


def test_parallel_package_has_no_static_heavy_imports():
    """No module under repro.parallel may even mention a heavy import."""
    import repro.parallel

    package_dir = pathlib.Path(repro.parallel.__file__).parent
    for path in package_dir.glob("*.py"):
        source = path.read_text()
        for name in HEAVY_MODULES:
            assert f"import {name}" not in source, (
                f"{path.name} imports {name}; plotting/analysis belongs "
                "in the parent process, not in sweep workers"
            )


def test_heavy_module_list_covers_matplotlib():
    assert "matplotlib" in HEAVY_MODULES
