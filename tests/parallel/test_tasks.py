"""Sweep-point specs: picklability and row shape."""

import pickle

from repro.apps import FacePipelineConfig
from repro.core.config import ServerConfig
from repro.parallel import (
    ExperimentPoint,
    FacePipelinePoint,
    FleetPoint,
    run_experiment_point,
    run_fleet_point,
)
from repro.serving.runner import ExperimentConfig


def _small_point(**tags):
    return ExperimentPoint(
        config=ExperimentConfig(
            server=ServerConfig(preprocess_batch_size=8),
            concurrency=4,
            warmup_requests=10,
            measure_requests=40,
        ),
        tags=tuple(tags.items()),
    )


class TestPointSpecs:
    def test_experiment_point_pickle_round_trip(self):
        point = _small_point(concurrency=4)
        clone = pickle.loads(pickle.dumps(point))
        assert clone == point
        assert run_experiment_point(clone) == run_experiment_point(point)

    def test_tags_become_leading_row_columns(self):
        row = run_experiment_point(_small_point(skew=1.2, policy="lru"))
        keys = list(row)
        assert keys[:2] == ["skew", "policy"]
        assert row["skew"] == 1.2
        assert "throughput" in row

    def test_face_point_is_picklable(self):
        point = FacePipelinePoint(
            pipeline=FacePipelineConfig(broker="redis", faces_per_frame=4),
            measure_requests=50,
            warmup_requests=10,
            tags=(("broker", "redis"),),
        )
        assert pickle.loads(pickle.dumps(point)) == point

    def test_fleet_point_row(self):
        point = FleetPoint(
            server=ServerConfig(preprocess_batch_size=8),
            node_count=1,
            offered_rate=80.0,
            warmup_requests=20,
            measure_requests=100,
            max_sim_seconds=30.0,
            tags=(("nodes", 1),),
        )
        assert pickle.loads(pickle.dumps(point)) == point
        row = run_fleet_point(point)
        assert row["nodes"] == 1
        assert row["completed"] > 0
