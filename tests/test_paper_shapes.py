"""Fast regressions of the paper's headline shapes.

Shrunk versions of the benchmark experiments: enough samples to pin the
qualitative result, small enough to run in the unit-test suite.  If a
calibration or scheduling change breaks one of the paper's findings,
these fail long before the full benchmarks run.
"""

import pytest

from repro.analysis import breakdown_from_metrics
from repro.apps import FacePipelineConfig, zero_load_breakdown
from repro.core import ServerConfig
from repro.serving import ExperimentConfig, run_experiment, run_face_pipeline
from repro.vision import reference_dataset


def quick_run(server, size="medium", concurrency=384, measure=1200, **kw):
    return run_experiment(
        ExperimentConfig(
            server=server,
            dataset=reference_dataset(size),
            concurrency=concurrency,
            warmup_requests=300,
            measure_requests=measure,
            **kw,
        )
    )


class TestFig6Shapes:
    def test_medium_image_preprocessing_share(self):
        """Paper: up to 56% (CPU) / 49% (GPU) for the medium image."""
        cpu = breakdown_from_metrics(
            zero_load_breakdown(preprocess_device="cpu").metrics
        ).preprocess_fraction
        gpu = breakdown_from_metrics(
            zero_load_breakdown(preprocess_device="gpu").metrics
        ).preprocess_fraction
        assert 0.45 < cpu < 0.65
        assert 0.40 < gpu < 0.62

    def test_large_image_dominated_by_preprocessing(self):
        cpu = breakdown_from_metrics(
            zero_load_breakdown(preprocess_device="cpu", image_size="large").metrics
        ).preprocess_fraction
        assert cpu > 0.9

    def test_small_image_cpu_beats_gpu(self):
        cpu = zero_load_breakdown(preprocess_device="cpu", image_size="small")
        gpu = zero_load_breakdown(preprocess_device="gpu", image_size="small")
        assert cpu.mean_latency < gpu.mean_latency


class TestFig7Shapes:
    def test_tinyvit_transfer_anomaly(self):
        """End-to-end beats inference-only for a small model + medium image."""
        e2e = quick_run(
            ServerConfig(model="tinyvit-5m", preprocess_device="gpu",
                         preprocess_batch_size=64)
        ).throughput
        inf_only = quick_run(
            ServerConfig(model="tinyvit-5m", mode="inference_only")
        ).throughput
        assert e2e > inf_only

    def test_large_image_is_preprocessing_bound(self):
        e2e = quick_run(
            ServerConfig(model="vit-base-16", preprocess_device="gpu",
                         preprocess_batch_size=64),
            size="large", concurrency=256, measure=800,
        ).throughput
        inf_only = quick_run(
            ServerConfig(model="vit-base-16", mode="inference_only"),
            size="large", concurrency=256, measure=800,
        ).throughput
        assert e2e < 0.3 * inf_only


class TestFig5Shapes:
    def test_gpu_preprocessing_outperforms_cpu_at_load(self):
        gpu = quick_run(
            ServerConfig(model="resnet-50", preprocess_device="gpu",
                         preprocess_batch_size=64),
            concurrency=768, measure=2000,
        ).throughput
        cpu = quick_run(
            ServerConfig(model="resnet-50", preprocess_device="cpu",
                         preprocess_batch_size=64),
            concurrency=768, measure=2000,
        ).throughput
        assert gpu > cpu

    def test_queue_dominates_at_high_concurrency(self):
        result = quick_run(
            ServerConfig(model="resnet-50", preprocess_batch_size=64),
            concurrency=1024, measure=2048,
        )
        queue = result.metrics.span_mean("queue") + result.metrics.span_mean(
            "preprocess_wait"
        )
        assert queue / result.mean_latency > 0.5


class TestFig11Shapes:
    def test_redis_beats_kafka_at_high_fanout(self):
        rates = {}
        for broker in ("redis", "kafka"):
            rates[broker] = run_face_pipeline(
                FacePipelineConfig(broker=broker, faces_per_frame=25),
                concurrency=96, warmup_requests=100, measure_requests=600,
            ).throughput
        assert rates["redis"] > 1.7 * rates["kafka"]

    def test_fused_wins_at_single_face(self):
        rates = {}
        for broker in ("fused", "redis"):
            rates[broker] = run_face_pipeline(
                FacePipelineConfig(broker=broker, faces_per_frame=1),
                concurrency=96, warmup_requests=100, measure_requests=600,
            ).throughput
        assert rates["fused"] > rates["redis"]


class TestFig4Shapes:
    def test_small_models_are_overhead_dominated(self):
        result = quick_run(
            ServerConfig(model="resnet-50", preprocess_device="gpu",
                         preprocess_batch_size=64),
            concurrency=16, measure=400,
        )
        assert breakdown_from_metrics(result.metrics).inference_fraction < 0.5

    def test_large_models_are_inference_dominated(self):
        result = quick_run(
            ServerConfig(model="detr-resnet-50", preprocess_device="gpu",
                         preprocess_batch_size=64),
            concurrency=16, measure=300,
        )
        assert breakdown_from_metrics(result.metrics).inference_fraction > 0.4
