"""Tracer and TelemetrySession tests: sampling, limits, wiring."""

import warnings

import pytest

from repro import ExperimentConfig, run_experiment
from repro.core.request import InferenceRequest
from repro.telemetry import SloConfig, TelemetryConfig, TelemetrySession, Tracer
from repro.vision import MEDIUM_IMAGE


def make_request(arrival: float = 0.0) -> InferenceRequest:
    return InferenceRequest(MEDIUM_IMAGE, arrival_time=arrival)


class TestTracer:
    def test_validation(self):
        with pytest.raises(ValueError):
            Tracer(limit=0)
        with pytest.raises(ValueError):
            Tracer(sample_every=0)

    def test_register_arms_timeline(self):
        tracer = Tracer()
        request = make_request()
        assert request.timeline is None
        assert tracer.register(request)
        assert request.timeline == []
        assert tracer.requests == [request]

    def test_sample_every_keeps_every_nth(self):
        tracer = Tracer(sample_every=3)
        admitted = [tracer.register(make_request()) for _ in range(9)]
        assert admitted == [True, False, False] * 3
        assert tracer.skipped == 6
        assert tracer.offered == 9

    def test_limit_counts_drops(self):
        tracer = Tracer(limit=2)
        results = [tracer.register(make_request()) for _ in range(5)]
        assert results == [True, True, False, False, False]
        assert tracer.dropped == 3
        assert len(tracer.requests) == 2

    def test_warn_if_dropped(self):
        tracer = Tracer(limit=1)
        tracer.register(make_request())
        tracer.register(make_request())
        with pytest.warns(UserWarning, match="trace limit 1 reached"):
            tracer.warn_if_dropped()

    def test_no_warning_without_drops(self):
        tracer = Tracer()
        tracer.register(make_request())
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            tracer.warn_if_dropped()

    def test_span_trees(self):
        tracer = Tracer()
        request = make_request()
        tracer.register(request)
        request.begin("queue", 1.0)
        request.end("queue", 2.0)
        request.complete(2.0)
        (tree,) = tracer.span_trees()
        assert [node.name for node in tree.walk()] == ["request", "queue"]

    def test_register_metrics_views(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        tracer = Tracer(limit=1)
        tracer.register_metrics(registry)
        tracer.register(make_request())
        tracer.register(make_request())
        snap = registry.snapshot()
        assert snap.metric("repro_trace_requests_total")["samples"][0]["value"] == 1
        assert snap.metric("repro_trace_dropped_total")["samples"][0]["value"] == 1


class TestTelemetrySession:
    def test_disabled_config_opens_no_session(self):
        from repro.serving.runner import _open_session

        assert _open_session(None, None) is None
        assert _open_session(TelemetryConfig(), None) is None
        assert _open_session(TelemetryConfig(enabled=True), None) is not None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(trace_limit=0).validate()
        with pytest.raises(ValueError):
            TelemetryConfig(trace_sample_every=0).validate()
        with pytest.raises(ValueError):
            TelemetryConfig(monitor_interval_seconds=0.0).validate()

    def test_observe_completion_feeds_latency_and_slo(self):
        session = TelemetrySession(
            TelemetryConfig(enabled=True, slo=SloConfig(latency_objective_seconds=0.1))
        )
        request = make_request(arrival=1.0)
        request.complete(1.05)
        session.observe_completion(request, 1.05)
        slow = make_request(arrival=1.0)
        slow.complete(2.0)
        session.observe_completion(slow, 2.0)
        assert session.latency.count == 2
        assert session.slo.total == 2
        assert session.slo.good == 1

    def test_finalize_stamps_time_and_snapshots(self):
        session = TelemetrySession(TelemetryConfig(enabled=True))
        session.finalize(12.5)
        assert session.finalized_at == 12.5
        assert session.snapshots[-1].at_time == 12.5

    def test_write_trace_requires_tracing(self, tmp_path):
        session = TelemetrySession(TelemetryConfig(enabled=True, trace=False))
        with pytest.raises(RuntimeError, match="tracing is disabled"):
            session.write_trace(str(tmp_path / "x.json"))


class TestRunnerIntegration:
    CONFIG = dict(concurrency=8, warmup_requests=10, measure_requests=60)

    def test_run_without_telemetry_has_none(self):
        result = run_experiment(ExperimentConfig(**self.CONFIG))
        assert result.telemetry is None

    def test_enabled_telemetry_is_observer_neutral(self):
        base = run_experiment(ExperimentConfig(**self.CONFIG))
        traced = run_experiment(
            ExperimentConfig(
                **self.CONFIG,
                telemetry=TelemetryConfig(
                    enabled=True,
                    slo=SloConfig(),
                    monitor_interval_seconds=0.005,
                ),
            )
        )
        assert traced.metrics == base.metrics
        session = traced.telemetry
        assert session is not None
        assert len(session.tracer.requests) > 0
        assert session.slo.total > 0
        assert session.finalized_at is not None
        # Monitor sampled the server probes.
        assert len(session.monitor.series("gpu0 queue depth")) > 0
        # The registry exposes server counters that match RunMetrics.
        snap = session.snapshots[-1]
        completed = snap.metric("repro_requests_completed_total")
        assert completed["samples"][0]["value"] >= base.metrics.completed

    def test_trace_sampling_config_respected(self):
        result = run_experiment(
            ExperimentConfig(
                **self.CONFIG,
                telemetry=TelemetryConfig(enabled=True, trace_sample_every=4),
            )
        )
        tracer = result.telemetry.tracer
        assert tracer.skipped > 0
        assert len(tracer.requests) < tracer.offered

    def test_trace_limit_warns_at_finalize(self):
        with pytest.warns(UserWarning, match="trace limit"):
            run_experiment(
                ExperimentConfig(
                    **self.CONFIG,
                    telemetry=TelemetryConfig(enabled=True, trace_limit=5),
                )
            )
