"""Tests for the metrics registry: instruments, labels, histograms."""

import random

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_callback_backed_reads_live_value(self):
        state = {"n": 0}
        counter = Counter(fn=lambda: state["n"])
        assert counter.value == 0
        state["n"] = 7
        assert counter.value == 7

    def test_callback_backed_cannot_be_incremented(self):
        with pytest.raises(RuntimeError):
            Counter(fn=lambda: 0).inc()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(3.0)
        assert gauge.value == pytest.approx(4.0)

    def test_callback_backed_cannot_be_set(self):
        with pytest.raises(RuntimeError):
            Gauge(fn=lambda: 0).set(1.0)


class TestHistogram:
    def test_count_sum_mean_min_max(self):
        histogram = Histogram()
        for value in (0.01, 0.02, 0.03):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.06)
        assert histogram.mean == pytest.approx(0.02)
        assert histogram.min == pytest.approx(0.01)
        assert histogram.max == pytest.approx(0.03)

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            Histogram().observe(-1.0)

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError):
            Histogram().quantile(0.5)

    def test_quantile_bounds_are_exact(self):
        histogram = Histogram()
        for value in (0.001, 0.5, 3.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == pytest.approx(0.001)
        assert histogram.quantile(1.0) == pytest.approx(3.0)

    def test_quantile_out_of_range_rejected(self):
        histogram = Histogram()
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_p99_within_one_bucket_width_of_exact(self):
        # The acceptance bound: histogram-derived p99 vs exact-sample
        # p99 within one geometric bucket width.
        rng = random.Random(7)
        histogram = Histogram()
        samples = [rng.lognormvariate(-3.0, 0.8) for _ in range(5000)]
        for value in samples:
            histogram.observe(value)
        samples.sort()
        exact_p99 = samples[int(0.99 * len(samples)) - 1]
        estimate = histogram.quantile(0.99)
        index = histogram._index(exact_p99)
        lower = histogram.bound(index - 1) if index > 0 else 0.0
        width = histogram.bound(index) - lower
        assert abs(estimate - exact_p99) <= width

    def test_memory_is_bucket_bounded(self):
        rng = random.Random(0)
        histogram = Histogram(buckets_per_decade=20)
        for _ in range(20000):
            histogram.observe(rng.uniform(1e-4, 1.0))
        # 4 decades x 20 buckets/decade (+ boundary slop), not 20k samples.
        assert len(histogram._counts) <= 90

    def test_percentiles_reporting_set(self):
        histogram = Histogram()
        for i in range(1, 101):
            histogram.observe(i / 100.0)
        result = histogram.percentiles()
        assert set(result) == {"p50", "p90", "p99", "p99.9"}
        assert result["p50"] <= result["p90"] <= result["p99"] <= result["p99.9"]

    def test_cumulative_buckets_monotonic(self):
        histogram = Histogram()
        for value in (0.001, 0.01, 0.01, 0.1):
            histogram.observe(value)
        cumulative = histogram.cumulative_buckets()
        counts = [count for _, count in cumulative]
        assert counts == sorted(counts)
        assert counts[-1] == 4


class TestMetricsRegistry:
    def test_unlabelled_returns_bare_instrument(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "requests")
        counter.inc()
        assert registry.counter("requests_total").value == 1

    def test_labelled_returns_family(self):
        registry = MetricsRegistry()
        family = registry.counter("hits_total", "hits", labelnames=("tier",))
        family.labels(tier="image").inc(3)
        family.labels(tier="tensor").inc()
        assert family.labels(tier="image").value == 3
        assert family.labels(tier="tensor").value == 1

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        family = registry.counter("hits_total", "hits", labelnames=("tier",))
        with pytest.raises(ValueError):
            family.labels(gpu="0")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "x")

    def test_labelnames_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "x", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "x", labelnames=("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name", "x")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "x", labelnames=("bad-label",))

    def test_callback_view(self):
        registry = MetricsRegistry()
        state = {"n": 5}
        registry.counter_fn("live_total", "live", lambda: state["n"])
        snap = registry.snapshot()
        assert snap.metric("live_total")["samples"][0]["value"] == 5
        state["n"] = 9
        assert registry.snapshot().metric("live_total")["samples"][0]["value"] == 9

    def test_duplicate_callback_child_raises(self):
        registry = MetricsRegistry()
        registry.counter_fn("live_total", "live", lambda: 0, node="0")
        with pytest.raises(ValueError):
            registry.counter_fn("live_total", "live", lambda: 0, node="0")

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError, match="unknown metric"):
            MetricsRegistry().family("nope")

    def test_snapshot_delta_windows_counters_and_histograms(self):
        registry = MetricsRegistry()
        counter = registry.counter("done_total", "done")
        histogram = registry.histogram("lat_seconds", "latency")
        gauge = registry.gauge("depth", "depth")
        counter.inc(5)
        histogram.observe(0.1)
        gauge.set(3)
        first = registry.snapshot(at_time=1.0)
        counter.inc(2)
        histogram.observe(0.2)
        histogram.observe(0.2)
        gauge.set(8)
        second = registry.snapshot(at_time=2.0)
        window = second.delta(first)
        assert window.metric("done_total")["samples"][0]["value"] == 2
        hist = window.metric("lat_seconds")["samples"][0]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.4)
        # Gauges are levels: the later value wins.
        assert window.metric("depth")["samples"][0]["value"] == 8
