"""SLO tracker tests: compliance, error budget, burn rates."""

import pytest

from repro.telemetry import MetricsRegistry, SloConfig, SloTracker


def make_tracker(**overrides) -> SloTracker:
    config = SloConfig(
        latency_objective_seconds=0.1,
        target=0.9,
        burn_windows_seconds=(10.0, 100.0),
    ).with_overrides(**overrides)
    return SloTracker(config)


class TestSloConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SloConfig(latency_objective_seconds=0).validate()
        with pytest.raises(ValueError):
            SloConfig(target=1.0).validate()
        with pytest.raises(ValueError):
            SloConfig(burn_windows_seconds=()).validate()
        with pytest.raises(ValueError):
            SloConfig(burn_windows_seconds=(0.0,)).validate()


class TestSloTracker:
    def test_empty_tracker_is_compliant(self):
        tracker = make_tracker()
        assert tracker.compliance() == 1.0
        assert tracker.error_budget_consumed() == 0.0
        report = tracker.report(now=0.0)
        assert report.met

    def test_compliance_counts_latency_and_errors(self):
        tracker = make_tracker()
        tracker.observe(0.05, now=1.0)           # good
        tracker.observe(0.5, now=2.0)            # too slow
        tracker.observe(0.05, now=3.0, ok=False) # failed
        tracker.observe(0.05, now=4.0)           # good
        assert tracker.total == 4
        assert tracker.good == 2
        assert tracker.compliance() == pytest.approx(0.5)

    def test_error_budget(self):
        tracker = make_tracker()  # target 0.9 -> budget 10% of requests
        for i in range(9):
            tracker.observe(0.05, now=float(i))
        tracker.observe(0.5, now=9.0)
        # 1 bad out of a 1-request budget: exactly spent.
        assert tracker.error_budget_consumed() == pytest.approx(1.0)

    def test_burn_rate_windows_evict(self):
        tracker = make_tracker()
        tracker.observe(0.5, now=50.0)  # bad, will age out of the 10s window
        for t in range(95, 105):
            tracker.observe(0.05, now=float(t))
        # 10s window holds only good events; 100s window still sees the bad one.
        assert tracker.burn_rate(10.0, now=105.0) == 0.0
        assert tracker.burn_rate(100.0, now=105.0) > 0.0

    def test_burn_rate_of_all_bad_traffic(self):
        tracker = make_tracker()
        for t in range(5):
            tracker.observe(0.5, now=float(t))
        # Bad fraction 1.0 against a 10% budget: burning 10x.
        assert tracker.burn_rate(10.0, now=5.0) == pytest.approx(10.0)

    def test_unknown_window_raises(self):
        with pytest.raises(KeyError):
            make_tracker().burn_rate(42.0, now=0.0)

    def test_report_structure(self):
        tracker = make_tracker()
        for t in range(10):
            tracker.observe(0.05 if t % 2 else 0.5, now=float(t))
        report = tracker.report(now=10.0)
        assert report.total == 10
        assert report.bad == 5
        assert not report.met
        assert [w.window_seconds for w in report.windows] == [100.0, 10.0]
        payload = report.as_dict()
        assert payload["compliance"] == pytest.approx(0.5)
        assert len(payload["windows"]) == 2

    def test_register_metrics_views(self):
        registry = MetricsRegistry()
        tracker = make_tracker()
        tracker.register_metrics(registry)
        tracker.observe(0.5, now=1.0)
        snap = registry.snapshot()
        assert snap.metric("repro_slo_requests_total")["samples"][0]["value"] == 1
        assert snap.metric("repro_slo_bad_requests_total")["samples"][0]["value"] == 1
        assert snap.metric("repro_slo_compliance_ratio")["samples"][0]["value"] == 0.0
