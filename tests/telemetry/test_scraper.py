"""MetricsScraper tests: sampling, recording rules, alerts, parity.

The scraper is a kernel process, so the identical code path samples in
virtual time under the DES and in wall time under an
``AsyncioBackend``; ``fast_forward`` dispatches in exact DES order,
which must make the sampled series *byte-identical* across backends.
And like every telemetry component it is observer-neutral: enabling it
never changes ``RunMetrics``.
"""

from pathlib import Path

import pytest

from repro import ExperimentConfig, run_experiment
from repro.core.config import ServerConfig
from repro.kernel import AsyncioBackend
from repro.live import replay_trace
from repro.serving.runner import run_open_loop
from repro.telemetry import AlertRule, SloConfig, TelemetryConfig
from repro.telemetry.scraper import MetricsScraper
from repro.telemetry.registry import MetricsRegistry
from repro.sim import Environment
from repro.workload import Workload

GOLDEN_TRACE = str(
    Path(__file__).parent.parent / "workload" / "golden" / "day.jsonl.gz"
)

SCRAPED = TelemetryConfig(
    enabled=True,
    trace=False,
    slo=SloConfig(latency_objective_seconds=0.2),
    scrape_interval_seconds=0.05,
    history_points=256,
)


def _config(**overrides):
    defaults = dict(
        server=ServerConfig(model="tinyvit-5m", preprocess_device="gpu"),
        concurrency=8,
        warmup_requests=10,
        measure_requests=60,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestScraperUnit:
    def test_interval_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            MetricsScraper(env, MetricsRegistry(), interval=0)

    def test_counter_rate_recording_rule(self):
        env = Environment()
        registry = MetricsRegistry()
        counter = registry.counter("widgets_total", "widgets")
        scraper = MetricsScraper(env, registry, interval=1.0)
        scraper.start()

        def load():
            for _ in range(4):
                counter.inc(5)
                yield env.timeout(1.0)

        env.process(load())
        env.run(until=3.5)
        rate = scraper.store.get("widgets_total:rate")
        # Window rate = increase / interval; 5 widgets per 1 s tick.
        assert rate.values[-1] == pytest.approx(5.0)
        raw = scraper.store.get("widgets_total")
        assert raw.values[-1] >= 10

    def test_alert_fires_after_hold_and_clears(self):
        env = Environment()
        registry = MetricsRegistry()
        depth = {"value": 0.0}
        registry.gauge_fn("depth", "queue depth", lambda: depth["value"])
        rule = AlertRule(name="deep", series="depth", threshold=10.0,
                         for_seconds=2.0)
        scraper = MetricsScraper(env, registry, interval=1.0, alerts=[rule])
        scraper.start()

        def drive():
            depth["value"] = 50.0
            yield env.timeout(5.0)
            depth["value"] = 0.0
            yield env.timeout(3.0)

        env.process(drive())
        env.run(until=8.5)
        series = scraper.store.get("alert:deep")
        values = list(series.values)
        assert 1.0 in values  # fired after the 2 s hold
        assert values[0] == 0.0  # not before breaching long enough
        assert values[-1] == 0.0  # cleared when the gauge recovered
        states = [entry["state"] for entry in scraper.alert_log]
        assert states == ["firing", "resolved"]

    def test_stop_start_never_double_samples(self):
        env = Environment()
        registry = MetricsRegistry()
        registry.counter("c_total", "c")
        scraper = MetricsScraper(env, registry, interval=1.0)
        scraper.start()
        env.run(until=2.5)
        scraper.stop()
        scraper.start()
        env.run(until=5.5)
        times = list(scraper.store.get("c_total").times)
        assert times == sorted(set(times))


class TestScraperInRuns:
    def test_scraper_samples_a_des_run(self):
        result = run_experiment(_config(telemetry=SCRAPED))
        session = result.telemetry
        assert session.scraper is not None
        assert session.scraper.samples_taken > 0
        store = session.store
        assert "repro_requests_completed_total:rate" in store.names
        assert "repro_request_latency_seconds:p99" in store.names
        assert "repro_slo_burn_rate" in store.names
        # The closing scrape pins the final counter value.
        total = store.get("repro_requests_completed_total")
        assert total.values[-1] == float(result.metrics.completed
                                         + _config().warmup_requests)

    def test_scraper_is_observer_neutral(self):
        base = run_experiment(_config())
        scraped = run_experiment(_config(telemetry=SCRAPED))
        assert scraped.metrics == base.metrics

    def test_virtual_vs_fast_forward_series_byte_identical(self):
        workload = Workload.constant(400.0)

        def run(backend=None):
            return run_open_loop(
                _config(measure_requests=120, telemetry=SCRAPED),
                workload=workload,
                backend=backend,
            )

        sim = run()
        live = run(AsyncioBackend(fast_forward=True))
        assert sim.metrics == live.metrics
        assert sim.telemetry.store.to_jsonl() == live.telemetry.store.to_jsonl()
        assert (sim.telemetry.store.to_openmetrics()
                == live.telemetry.store.to_openmetrics())


class TestGoldenTraceScrape:
    def test_golden_replay_with_telemetry_keeps_exact_parity(self):
        report = replay_trace(
            GOLDEN_TRACE,
            model="tinyvit-5m",
            measure_requests=60,
            max_sim_seconds=12000.0,
            fast_forward=True,
            telemetry=SCRAPED.with_overrides(scrape_interval_seconds=60.0),
        )
        sim, live = report.sim, report.live
        assert sim.metrics == live.metrics
        assert sim.metrics.completed > 0
        # The scraped history agrees byte for byte across the clocks.
        assert (sim.telemetry.store.to_jsonl()
                == live.telemetry.store.to_jsonl())

    def test_golden_replay_telemetry_is_observer_neutral(self):
        kwargs = dict(model="tinyvit-5m", measure_requests=60,
                      max_sim_seconds=12000.0)
        bare = replay_trace(GOLDEN_TRACE, fast_forward=True, **kwargs)
        scraped = replay_trace(
            GOLDEN_TRACE, fast_forward=True,
            telemetry=SCRAPED.with_overrides(scrape_interval_seconds=60.0),
            **kwargs,
        )
        assert scraped.sim.metrics == bare.sim.metrics
        assert scraped.live.metrics == bare.live.metrics
