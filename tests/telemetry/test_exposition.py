"""Prometheus text / JSON exposition round-trip tests."""

import json
import math

import pytest

from repro.telemetry import MetricsRegistry, parse_prometheus_text
from repro.telemetry.exposition import escape_label_value, format_value


class TestFormatValue:
    def test_integers_have_no_decimal_point(self):
        assert format_value(3.0) == "3"
        assert format_value(0.0) == "0"

    def test_specials(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"

    def test_fractions_round_trip(self):
        assert float(format_value(0.125)) == 0.125


class TestEscaping:
    def test_escape_label_value(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"


def _registry_with_everything() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("req_total", "Requests seen", labelnames=("node",))
    counter.labels(node="0").inc(5)
    counter.labels(node="1").inc(2)
    gauge = registry.gauge("queue_depth", "Queue depth")
    gauge.set(7)
    hist = registry.histogram("lat_seconds", "Latency")
    for value in (0.001, 0.01, 0.01, 0.25):
        hist.observe(value)
    weird = registry.counter("weird_total", "Weird labels", labelnames=("path",))
    weird.labels(path='a"b\\c\nd').inc()
    return registry


class TestPrometheusRoundTrip:
    def test_help_and_type_lines(self):
        text = _registry_with_everything().to_prometheus_text()
        families = parse_prometheus_text(text)
        assert families["req_total"]["kind"] == "counter"
        assert families["req_total"]["help"] == "Requests seen"
        assert families["queue_depth"]["kind"] == "gauge"
        assert families["lat_seconds"]["kind"] == "histogram"

    def test_counter_values_round_trip(self):
        text = _registry_with_everything().to_prometheus_text()
        samples = parse_prometheus_text(text)["req_total"]["samples"]
        by_node = {s["labels"]["node"]: s["value"] for s in samples}
        assert by_node == {"0": 5, "1": 2}

    def test_label_escaping_round_trips(self):
        text = _registry_with_everything().to_prometheus_text()
        samples = parse_prometheus_text(text)["weird_total"]["samples"]
        assert samples[0]["labels"]["path"] == 'a"b\\c\nd'

    def test_histogram_series_round_trip(self):
        text = _registry_with_everything().to_prometheus_text()
        samples = parse_prometheus_text(text)["lat_seconds"]["samples"]
        by_name = {}
        for sample in samples:
            by_name.setdefault(sample["name"], []).append(sample)
        assert {s["value"] for s in by_name["lat_seconds_count"]} == {4}
        assert by_name["lat_seconds_sum"][0]["value"] == pytest.approx(0.271)
        buckets = by_name["lat_seconds_bucket"]
        # Cumulative and capped by an +Inf bucket equal to the count.
        counts = [s["value"] for s in buckets]
        assert counts == sorted(counts)
        inf = [s for s in buckets if s["labels"]["le"] == "+Inf"]
        assert len(inf) == 1 and inf[0]["value"] == 4
        finite = [s for s in buckets if s["labels"]["le"] != "+Inf"]
        for sample in finite:
            assert math.isfinite(float(sample["labels"]["le"]))

    def test_bucket_suffix_only_folds_into_histogram_families(self):
        # A *counter* named like a histogram series must stay its own family.
        registry = MetricsRegistry()
        registry.counter("water_bucket", "Not a histogram").inc(3)
        families = parse_prometheus_text(registry.to_prometheus_text())
        assert families["water_bucket"]["samples"][0]["value"] == 3

    def test_text_ends_with_newline(self):
        assert _registry_with_everything().to_prometheus_text().endswith("\n")


class TestJsonExposition:
    def test_json_parses_and_carries_structure(self):
        registry = _registry_with_everything()
        payload = json.loads(registry.to_json())
        names = [metric["name"] for metric in payload["metrics"]]
        assert "lat_seconds" in names and "req_total" in names
        hist = next(m for m in payload["metrics"] if m["name"] == "lat_seconds")
        sample = hist["samples"][0]
        assert sample["count"] == 4
        assert sample["percentiles"]["p50"] <= sample["percentiles"]["p99"]
        assert all(len(pair) == 2 for pair in sample["buckets"])
