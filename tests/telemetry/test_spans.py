"""Span model tests: kinds, timeline recording, span trees."""

import pytest

from repro.telemetry import (
    KIND_BROKER,
    KIND_COMPUTE,
    KIND_QUEUE,
    KIND_TRANSFER,
    build_span_tree,
    span_kind,
)
from repro.core.request import InferenceRequest
from repro.vision import MEDIUM_IMAGE


class TestSpanKinds:
    def test_known_kinds(self):
        assert span_kind("queue") == KIND_QUEUE
        assert span_kind("preprocess_wait") == KIND_QUEUE
        assert span_kind("inference") == KIND_COMPUTE
        assert span_kind("transfer") == KIND_TRANSFER
        assert span_kind("broker") == KIND_BROKER

    def test_unknown_spans_default_to_compute(self):
        assert span_kind("my_custom_stage") == KIND_COMPUTE


class TestTimelineRecording:
    def test_unarmed_request_records_no_timeline(self):
        request = InferenceRequest(MEDIUM_IMAGE, arrival_time=0.0)
        request.begin("frontend", 0.0)
        request.end("frontend", 0.5)
        assert request.timeline is None
        assert request.spans["frontend"] == pytest.approx(0.5)

    def test_armed_request_records_intervals(self):
        request = InferenceRequest(MEDIUM_IMAGE, arrival_time=0.0)
        request.timeline = []
        request.begin("frontend", 1.0)
        request.end("frontend", 1.5)
        request.add("transfer", 0.25, now=2.0)
        assert request.timeline == [
            ("frontend", 1.0, 1.5),
            ("transfer", 1.75, 2.0),
        ]
        # The duration ledger is unchanged by recording.
        assert request.spans["frontend"] == pytest.approx(0.5)
        assert request.spans["transfer"] == pytest.approx(0.25)

    def test_add_without_timestamp_keeps_ledger_only(self):
        request = InferenceRequest(MEDIUM_IMAGE, arrival_time=0.0)
        request.timeline = []
        request.add("transfer", 0.25)
        assert request.timeline == []
        assert request.spans["transfer"] == pytest.approx(0.25)


class TestSpanTree:
    def test_containment_nesting(self):
        timeline = [
            ("queue", 1.0, 4.0),
            ("inference", 2.0, 3.0),   # nested inside queue
            ("postprocess", 4.0, 4.5),
        ]
        root = build_span_tree(timeline, arrival_time=0.0, completion_time=5.0)
        assert root.name == "request"
        assert root.start == 0.0 and root.end == 5.0
        names = [child.name for child in root.children]
        assert names == ["queue", "postprocess"]
        queue = root.children[0]
        assert [child.name for child in queue.children] == ["inference"]

    def test_walk_is_depth_first(self):
        timeline = [("queue", 0.0, 2.0), ("inference", 0.5, 1.5)]
        root = build_span_tree(timeline, arrival_time=0.0, completion_time=2.0)
        assert [node.name for node in root.walk()] == [
            "request",
            "queue",
            "inference",
        ]

    def test_to_dict_round_trips_structure(self):
        timeline = [("frontend", 0.0, 1.0)]
        root = build_span_tree(timeline, arrival_time=0.0, completion_time=1.0)
        payload = root.to_dict()
        assert payload["name"] == "request"
        assert payload["children"][0]["name"] == "frontend"
        assert payload["children"][0]["kind"] == KIND_COMPUTE

    def test_empty_timeline_gives_bare_root(self):
        root = build_span_tree([], arrival_time=1.0, completion_time=2.0)
        assert root.children == []
        assert root.duration == pytest.approx(1.0)
