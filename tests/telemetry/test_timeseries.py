"""TimeSeriesStore and AlertRule unit tests: rings, exports, round-trips."""

import gzip
import json

import pytest

from repro.telemetry.timeseries import AlertRule, SeriesBuffer, TimeSeriesStore


class TestSeriesBuffer:
    def test_ring_evicts_oldest(self):
        buffer = SeriesBuffer("m", (), capacity=3)
        for t in range(5):
            buffer.append(float(t), float(t * 10))
        assert len(buffer) == 3
        assert buffer.points() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        assert buffer.last() == (4.0, 40.0)

    def test_window_trims_by_time(self):
        buffer = SeriesBuffer("m", (), capacity=10)
        for t in range(5):
            buffer.append(float(t), 1.0)
        assert buffer.window(3.0) == [(3.0, 1.0), (4.0, 1.0)]

    def test_empty_buffer(self):
        buffer = SeriesBuffer("m", (), capacity=2)
        assert buffer.last() is None
        assert buffer.points() == []


class TestTimeSeriesStore:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesStore(capacity=0)

    def test_record_and_get_by_labels(self):
        store = TimeSeriesStore(capacity=8)
        store.record("qps", 1.0, 10.0, {"cell": "0"})
        store.record("qps", 1.0, 20.0, {"cell": "1"})
        store.record("qps", 2.0, 12.0, {"cell": "0"})
        assert len(store) == 2
        assert store.get("qps", {"cell": "0"}).points() == [(1.0, 10.0), (2.0, 12.0)]
        assert [b.labels for b in store.select("qps")] == [
            (("cell", "0"),), (("cell", "1"),)
        ]

    def test_get_missing_raises_with_known_names(self):
        store = TimeSeriesStore()
        store.record("qps", 0.0, 1.0)
        with pytest.raises(KeyError, match="qps"):
            store.get("nope")

    def test_to_dict_from_dict_round_trip(self):
        store = TimeSeriesStore(capacity=16)
        store.record("a", 0.0, 1.0)
        store.record("a", 1.0, 2.0, {"x": "1"})
        store.record("b:rate", 1.0, 3.5)
        rebuilt = TimeSeriesStore.from_dict(store.to_dict())
        assert rebuilt.capacity == 16
        assert rebuilt.to_dict() == store.to_dict()

    def test_to_dict_since_filters_points(self):
        store = TimeSeriesStore()
        store.record("a", 0.0, 1.0)
        store.record("a", 5.0, 2.0)
        payload = store.to_dict(since=3.0)
        assert payload["series"][0]["points"] == [[5.0, 2.0]]

    def test_jsonl_round_trip(self, tmp_path):
        store = TimeSeriesStore(capacity=4)
        store.record("a", 0.0, 1.0, {"cell": "0"})
        store.record("a", 1.0, 2.0, {"cell": "0"})
        path = tmp_path / "series.jsonl"
        text = store.to_jsonl(str(path))
        assert path.read_text() == text
        rebuilt = TimeSeriesStore.read_jsonl(str(path))
        assert rebuilt.to_jsonl() == text

    def test_jsonl_gzip(self, tmp_path):
        store = TimeSeriesStore()
        store.record("a", 0.0, 1.0)
        path = tmp_path / "series.jsonl.gz"
        text = store.to_jsonl(str(path))
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert handle.read() == text
        assert TimeSeriesStore.read_jsonl(str(path)).to_jsonl() == text

    def test_jsonl_lines_are_json(self):
        store = TimeSeriesStore()
        store.record("a", 0.5, 1.5, {"cell": "0"})
        (line,) = store.to_jsonl().splitlines()
        row = json.loads(line)
        assert row == {"name": "a", "labels": {"cell": "0"}, "points": [[0.5, 1.5]]}

    def test_openmetrics_export(self):
        store = TimeSeriesStore()
        store.record("lat:p99", 1.0, 0.25, {"cell": "0"})
        store.record("lat:p99", 2.0, 0.5, {"cell": "0"})
        text = store.to_openmetrics()
        # Recording-rule colons are flattened for the wire format.
        assert "# TYPE lat_p99 gauge" in text
        assert 'lat_p99{cell="0"} 0.25 1' in text
        assert text.endswith("# EOF\n")

    def test_exports_are_byte_stable(self):
        def build():
            store = TimeSeriesStore(capacity=4)
            store.record("b", 0.0, 2.0)
            store.record("a", 0.0, 1.0, {"k": "v"})
            return store

        assert build().to_jsonl() == build().to_jsonl()
        assert build().to_openmetrics() == build().to_openmetrics()


class TestAlertRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            AlertRule(name="", series="s", threshold=1.0).validate()
        with pytest.raises(ValueError):
            AlertRule(name="a", series="s", threshold=1.0,
                      comparison=">=").validate()
        with pytest.raises(ValueError):
            AlertRule(name="a", series="s", threshold=1.0,
                      for_seconds=-1.0).validate()

    def test_breached_directions(self):
        high = AlertRule(name="hot", series="s", threshold=2.0)
        assert high.breached(2.5) and not high.breached(2.0)
        low = AlertRule(name="cold", series="s", threshold=2.0, comparison="<")
        assert low.breached(1.0) and not low.breached(2.0)
