"""Histogram.merge, label-cardinality guard, and exemplar round-trips.

``Histogram.merge`` is what makes per-shard telemetry safe to aggregate:
folding shard histograms together must reproduce the *global* histogram
exactly (same buckets, same quantiles), not approximately.  The
cardinality guard bounds label explosion, and exemplars survive the
Prometheus text round trip.
"""

import math

import pytest

from repro.kernel import RandomStreams
from repro.telemetry.context import TraceContext
from repro.telemetry.exposition import parse_prometheus_text
from repro.telemetry.registry import (
    OVERFLOW_LABEL_VALUE,
    Histogram,
    MetricsRegistry,
)


class TestHistogramMerge:
    def test_sharded_merge_equals_global_histogram(self):
        rng = RandomStreams(11).stream("merge-test")
        samples = [rng.expovariate(50.0) for _ in range(4000)]
        global_hist = Histogram()
        shards = [Histogram() for _ in range(4)]
        for index, value in enumerate(samples):
            global_hist.observe(value)
            shards[index % 4].observe(value)
        merged = Histogram()
        for shard in shards:
            merged.merge(shard)
        assert merged.count == global_hist.count
        assert merged.buckets() == global_hist.buckets()
        assert (merged.min, merged.max) == (global_hist.min, global_hist.max)
        # Quantiles are *identical*, not merely close.
        for q in (0.0, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert merged.quantile(q) == global_hist.quantile(q)
        # Sums differ only by float addition order.
        assert math.isclose(merged.sum, global_hist.sum, rel_tol=1e-12)

    def test_merge_order_does_not_matter_for_buckets(self):
        rng = RandomStreams(3).stream("merge-order")
        shards = [Histogram() for _ in range(3)]
        for index in range(900):
            shards[index % 3].observe(rng.random())
        forward = Histogram()
        for shard in shards:
            forward.merge(shard)
        backward = Histogram()
        for shard in reversed(shards):
            backward.merge(shard)
        assert forward.buckets() == backward.buckets()
        assert forward.quantile(0.99) == backward.quantile(0.99)

    def test_merge_rejects_mismatched_geometry(self):
        with pytest.raises(ValueError, match="bucket geometry"):
            Histogram().merge(Histogram(buckets_per_decade=10))

    def test_merge_returns_self_and_handles_empty(self):
        target = Histogram()
        target.observe(0.5)
        assert target.merge(Histogram()) is target
        assert target.count == 1

    def test_merge_carries_exemplars(self):
        a, b = Histogram(), Histogram()
        a.observe(0.001, exemplar="trace-a")
        b.observe(1.0, exemplar="trace-b")
        a.merge(b)
        refs = {exemplar[0] for _, exemplar in a.exemplars()}
        assert refs == {"trace-a", "trace-b"}


class TestCardinalityGuard:
    def test_overflow_spills_into_shared_child(self):
        registry = MetricsRegistry(max_series_per_family=3)
        family = registry.counter("hits_total", "hits", labelnames=("node",))
        for node in range(3):
            family.labels(node=str(node)).inc()
        with pytest.warns(RuntimeWarning, match="label-cardinality cap"):
            family.labels(node="3").inc()
        family.labels(node="4").inc(2)
        assert registry.dropped_series == 2
        spill = family.labels(node=OVERFLOW_LABEL_VALUE)
        assert spill.value == 3.0  # the capped increments still count

    def test_existing_series_unaffected_by_cap(self):
        registry = MetricsRegistry(max_series_per_family=2)
        family = registry.gauge("depth", "d", labelnames=("q",))
        family.labels(q="a").set(1)
        family.labels(q="b").set(2)
        with pytest.warns(RuntimeWarning):
            family.labels(q="c").set(9)
        family.labels(q="a").set(5)  # pre-cap series keeps its identity
        assert family.labels(q="a").value == 5.0
        assert registry.dropped_series == 1

    def test_uncapped_registry_never_drops(self):
        registry = MetricsRegistry(max_series_per_family=None)
        family = registry.counter("c_total", "c", labelnames=("k",))
        for k in range(100):
            family.labels(k=str(k)).inc()
        assert registry.dropped_series == 0


class TestExemplarRoundTrip:
    def test_exposition_round_trips_exemplars(self):
        registry = MetricsRegistry()
        latency = registry.histogram("req_latency_seconds", "latency")
        trace = TraceContext.derive("session", 7)
        latency.observe(0.043, exemplar=trace.trace_id, exemplar_time=12.5)
        latency.observe(0.9)
        text = registry.to_prometheus_text()
        assert "# {" in text

        families = parse_prometheus_text(text)
        buckets = [s for s in families["req_latency_seconds"]["samples"]
                   if s["name"].endswith("_bucket") and "exemplar" in s]
        assert len(buckets) == 1
        exemplar = buckets[0]["exemplar"]
        assert exemplar["labels"] == {"trace_id": trace.trace_id}
        assert exemplar["value"] == pytest.approx(0.043)
        assert exemplar["timestamp"] == pytest.approx(12.5)

    def test_traceparent_round_trip(self):
        context = TraceContext.derive("user", 42)
        parsed = TraceContext.from_traceparent(context.to_traceparent())
        assert parsed.trace_id == context.trace_id
        assert parsed.span_id == context.span_id
        child = context.child("req", 0)
        assert child.trace_id == context.trace_id
        assert child.parent_id == context.span_id
        assert child.span_id != context.span_id
