"""Tests for Chrome-trace export of request timelines."""

import json

import pytest

from repro.analysis import TraceCollector, requests_to_trace_events, write_chrome_trace
from repro.core import InferenceServer, ServerConfig
from repro.core.request import InferenceRequest
from repro.hardware import ServerNode
from repro.sim import Environment
from repro.vision import MEDIUM_IMAGE


def make_completed_request():
    request = InferenceRequest(MEDIUM_IMAGE, arrival_time=1.0)
    request.add("preprocess", 0.002)
    request.add("inference", 0.003)
    request.batch_size = 8
    request.complete(1.006)
    return request


class TestTraceEvents:
    def test_event_structure(self):
        events = requests_to_trace_events([make_completed_request()])
        slices = [e for e in events if e.get("ph") == "X"]
        assert len(slices) == 2
        pre, inf = slices
        assert pre["name"] == "preprocess"
        assert pre["ts"] == pytest.approx(1.0e6)
        assert pre["dur"] == pytest.approx(2000)
        # Slices are laid out back to back.
        assert inf["ts"] == pytest.approx(pre["ts"] + pre["dur"])
        assert inf["args"]["batch_size"] == 8

    def test_incomplete_requests_skipped(self):
        incomplete = InferenceRequest(MEDIUM_IMAGE, arrival_time=0.0)
        events = requests_to_trace_events([incomplete])
        assert all(e.get("ph") != "X" for e in events)

    def test_non_canonical_spans_included(self):
        request = InferenceRequest(MEDIUM_IMAGE, arrival_time=0.0)
        request.add("broker", 0.01)
        request.complete(0.01)
        events = requests_to_trace_events([request])
        assert any(e.get("name") == "broker" for e in events)

    def test_write_file(self, tmp_path):
        path = tmp_path / "run.trace.json"
        count = write_chrome_trace(str(path), [make_completed_request()])
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
        assert payload["displayTimeUnit"] == "ms"


class TestTraceCollector:
    def test_limit_and_dropped(self):
        collector = TraceCollector(limit=2)
        for _ in range(5):
            collector(make_completed_request())
        assert len(collector.requests) == 2
        assert collector.dropped == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceCollector(limit=0)

    def test_end_to_end_with_server(self, tmp_path):
        env = Environment()
        node = ServerNode(env)
        collector = TraceCollector(limit=10)
        server = InferenceServer(env, node, ServerConfig(), on_complete=collector)
        env.run(until=server.submit(MEDIUM_IMAGE))
        path = tmp_path / "server.trace.json"
        count = collector.write(str(path))
        assert count > 3
        payload = json.loads(path.read_text())
        names = {e.get("name") for e in payload["traceEvents"]}
        assert "inference" in names and "preprocess" in names
