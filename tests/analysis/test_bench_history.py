"""Bench-history gate tests: figure extraction, thresholds, CLI wiring."""

import json

import pytest

from repro.analysis.bench_history import compare_bench, compare_bench_files
from repro.cli import main

PARALLEL = {
    "engine": {
        "timeout_events_per_sec": 1000.0,
        "store_ops_per_sec": 500.0,
        "store_drain_per_sec": 800.0,
    },
    "sweep": {"points": 12, "serial_wall_seconds": 6.0},
}

CLUSTER = {
    "scaling": {
        "fingerprint": {"throughput": 400.0},
        "requests": 12000,
        "serial_wall_seconds": 4.0,
    },
    "day": {"fingerprint": {"throughput": 0.02},
            "issued": 1639, "wall_seconds": 0.15},
}


def test_within_tolerance_passes():
    fresh = json.loads(json.dumps(PARALLEL))
    fresh["engine"]["timeout_events_per_sec"] = 850.0  # -15%
    comparisons = compare_bench(fresh, PARALLEL)
    assert not any(c.regressed for c in comparisons)


def test_regression_beyond_tolerance_flags():
    fresh = json.loads(json.dumps(PARALLEL))
    fresh["engine"]["store_ops_per_sec"] = 350.0  # -30%
    comparisons = compare_bench(fresh, PARALLEL)
    flagged = [c for c in comparisons if c.regressed]
    assert [c.figure for c in flagged] == ["engine store ops/s"]
    assert flagged[0].change == pytest.approx(-0.30)


def test_improvement_never_flags():
    fresh = json.loads(json.dumps(CLUSTER))
    fresh["scaling"]["serial_wall_seconds"] = 1.0  # 4x faster
    assert not any(c.regressed for c in compare_bench(fresh, CLUSTER))


def test_sim_fingerprint_shift_is_caught():
    fresh = json.loads(json.dumps(CLUSTER))
    fresh["scaling"]["fingerprint"]["throughput"] = 300.0  # -25%
    flagged = [c for c in compare_bench(fresh, CLUSTER) if c.regressed]
    assert [c.figure for c in flagged] == ["scaling sim throughput (img/s)"]


def test_missing_figures_are_skipped_not_fatal():
    sparse = {"engine": {"timeout_events_per_sec": 1000.0}}
    comparisons = compare_bench(sparse, sparse)
    assert [c.figure for c in comparisons] == ["engine timeout events/s"]


def test_scheduler_probes_gate_when_present():
    """Bench schema v2 figures: the per-scheduler probes participate in
    the gate, and their absence from a v1 baseline skips them."""
    v2 = json.loads(json.dumps(PARALLEL))
    v2["schedulers"] = {
        "heap": {
            "timeout_events_per_sec": 1000.0,
            "concurrent_events_per_sec": 400.0,
        },
        "calendar": {
            "timeout_events_per_sec": 700.0,
            "concurrent_events_per_sec": 300.0,
        },
    }
    fresh = json.loads(json.dumps(v2))
    fresh["schedulers"]["calendar"]["concurrent_events_per_sec"] = 100.0  # -67%
    flagged = [c for c in compare_bench(fresh, v2) if c.regressed]
    assert [c.figure for c in flagged] == ["calendar depth-10k events/s"]
    # v1 baseline: scheduler figures absent there — not fatal, not compared.
    figures = [c.figure for c in compare_bench(v2, PARALLEL)]
    assert "heap depth-1 events/s" not in figures


def test_mismatched_schemas_and_empty_reject():
    with pytest.raises(ValueError, match="schemas differ"):
        compare_bench(PARALLEL, CLUSTER)
    with pytest.raises(ValueError, match="no comparable"):
        compare_bench({"engine": {}}, {"engine": {}})
    with pytest.raises(ValueError, match="tolerance"):
        compare_bench(PARALLEL, PARALLEL, tolerance=1.5)


def test_file_round_trip(tmp_path):
    fresh = tmp_path / "fresh.json"
    baseline = tmp_path / "baseline.json"
    fresh.write_text(json.dumps(PARALLEL))
    baseline.write_text(json.dumps(PARALLEL))
    comparisons = compare_bench_files(str(fresh), str(baseline))
    assert all(c.change == 0.0 for c in comparisons)


def test_cli_baseline_requires_out(capsys):
    assert main(["bench", "--smoke", "--baseline", "nope.json"]) == 2
    assert "--out" in capsys.readouterr().err
