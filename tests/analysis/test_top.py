"""``repro top`` rendering tests: sparklines, selection, frames, CLI."""

import pytest

from repro.analysis.top import render_top, select_series, sparkline
from repro.cli import main
from repro.telemetry.timeseries import TimeSeriesStore


def sample_store() -> TimeSeriesStore:
    store = TimeSeriesStore(capacity=64)
    for t in range(8):
        store.record("repro_requests_completed_total:rate", float(t), float(t))
        store.record("repro_request_latency_seconds:p99", float(t), 0.01 * t)
        store.record("repro_slo_burn_rate", float(t), 0.0, {"window": "60"})
        store.record("repro_requests_completed_total", float(t), float(t * 10))
    return store


class TestSparkline:
    def test_scales_to_window_extremes(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_nonzero_series_is_visible(self):
        assert set(sparkline([5.0, 5.0, 5.0])) == {"▁"}
        assert set(sparkline([0.0, 0.0])) == {" "}

    def test_window_keeps_last_width_values(self):
        wide = sparkline(list(range(100)), width=10)
        assert len(wide) == 10

    def test_empty_and_validation(self):
        assert sparkline([]) == ""
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestSelectSeries:
    def test_default_view_keeps_rules_and_burn(self):
        names = [b.name for b in select_series(sample_store())]
        assert "repro_requests_completed_total:rate" in names
        assert "repro_slo_burn_rate" in names
        # Raw counter families stay out of the default view.
        assert "repro_requests_completed_total" not in names

    def test_patterns_filter_by_substring(self):
        names = [b.name for b in select_series(sample_store(), ["latency"])]
        assert names == ["repro_request_latency_seconds:p99"]


class TestRenderTop:
    def test_frame_contains_header_series_and_sparklines(self):
        stats = {
            "admitted": 12, "completed": 10, "in_flight": 2, "rejected": 0,
            "accepting": True,
            "slo": {"windows": [
                {"window_seconds": 60.0, "burn_rate": 1.25},
            ]},
        }
        frame = render_top(sample_store(), stats=stats, width=120)
        assert "admitted=12" in frame
        assert "burn[60.0s]=1.25" in frame
        assert "repro_slo_burn_rate{window=60}" in frame
        assert "█" in frame

    def test_draining_and_alerts_in_header(self):
        stats = {"accepting": False,
                 "scrape": {"alerts_firing": ["slo_burn_high"]}}
        frame = render_top(sample_store(), stats=stats, width=120)
        assert "DRAINING" in frame
        assert "ALERTS: slo_burn_high" in frame

    def test_empty_store_renders_placeholder(self):
        frame = render_top(TimeSeriesStore())
        assert "(no series recorded yet)" in frame

    def test_frame_is_deterministic(self):
        assert render_top(sample_store()) == render_top(sample_store())


class TestTopCli:
    def test_cluster_file_mode(self, tmp_path, capsys):
        path = tmp_path / "day.jsonl"
        sample_store().to_jsonl(str(path))
        assert main(["top", "--cluster", str(path), "--width", "90"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "repro_slo_burn_rate{window=60}" in out

    def test_cluster_file_missing(self, tmp_path, capsys):
        assert main(["top", "--cluster", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_unreachable_url(self, capsys):
        assert main(["top", "--url", "http://127.0.0.1:1",
                     "--once", "--plain"]) == 2
        assert "cannot reach" in capsys.readouterr().err
