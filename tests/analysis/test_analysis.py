"""Tests for breakdowns, tables, and paper-claim comparison records."""

import pytest

from repro.analysis import (
    ClaimSet,
    LatencyBreakdown,
    PaperClaim,
    breakdown_from_metrics,
    format_ms,
    format_pct,
    format_rate,
    format_table,
)
from repro.core import MetricsCollector
from repro.core.request import InferenceRequest
from repro.vision import MEDIUM_IMAGE


def make_metrics(spans, latency=1.0):
    collector = MetricsCollector()
    collector.arm(0.0)
    request = InferenceRequest(MEDIUM_IMAGE, arrival_time=0.0)
    for name, value in spans.items():
        request.add(name, value)
    request.complete(latency)
    collector.record(request)
    collector.disarm(latency)
    return collector.finalize()


class TestBreakdown:
    def test_grouping(self):
        metrics = make_metrics(
            {
                "frontend": 0.05,
                "preprocess_wait": 0.1,
                "preprocess": 0.3,
                "queue": 0.2,
                "transfer": 0.05,
                "inference": 0.25,
                "postprocess": 0.05,
            }
        )
        b = breakdown_from_metrics(metrics)
        assert b.preprocess == pytest.approx(0.4)
        assert b.inference == pytest.approx(0.25)
        assert b.queue == pytest.approx(0.2)
        assert b.preprocess_fraction == pytest.approx(0.4)
        assert b.inference_fraction == pytest.approx(0.25)
        assert b.overhead_fraction == pytest.approx(0.75)
        assert b.queue_fraction == pytest.approx(0.2)

    def test_other_non_negative(self):
        metrics = make_metrics({"inference": 0.5})
        b = breakdown_from_metrics(metrics)
        assert b.other == pytest.approx(0.5)

    def test_zero_total(self):
        b = LatencyBreakdown(total=0, preprocess=0, inference=0, queue=0, transfer=0, other=0)
        assert b.preprocess_fraction == 0.0
        assert b.inference_fraction == 0.0


class TestFormatters:
    def test_rate(self):
        assert format_rate(1234.5) == "1,234"

    def test_ms(self):
        assert format_ms(0.00123) == "1.23 ms"

    def test_pct(self):
        assert format_pct(0.5617) == "56.2%"

    def test_table_alignment(self):
        table = format_table(
            ["name", "value"],
            [["a", "1"], ["long-name", "22"]],
            title="Demo",
        )
        lines = table.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1]
        assert lines[2].startswith("---")
        assert len(lines) == 5

    def test_table_row_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestClaims:
    def test_within_tolerance(self):
        claim = PaperClaim("Fig. 6", "preproc share", 0.56, 0.54, rel_tolerance=0.1)
        assert claim.within_tolerance
        assert claim.relative_error == pytest.approx(0.0357, abs=1e-3)

    def test_out_of_tolerance(self):
        claim = PaperClaim("Fig. 6", "x", 100, 300, rel_tolerance=0.5)
        assert not claim.within_tolerance
        assert "OFF" in claim.render()

    def test_directional_claim_always_passes(self):
        claim = PaperClaim("Fig. 5", "declines", 1, 99, rel_tolerance=None)
        assert claim.within_tolerance

    def test_zero_paper_value(self):
        claim = PaperClaim("F", "d", 0, 0.1, rel_tolerance=0.5)
        assert claim.relative_error == pytest.approx(0.1)

    def test_claim_set_accumulates(self):
        claims = ClaimSet("Fig. 7")
        claims.check("a", 1.0, 1.1, rel_tolerance=0.2)
        claims.check("b", 1.0, 5.0, rel_tolerance=0.2)
        assert len(claims.claims) == 2
        assert not claims.all_within_tolerance
        assert "Fig. 7" in claims.render()
