"""Golden-file test of the timestamped Perfetto trace export.

One small, fully deterministic face-pipeline run; the assertions pin the
structural facts the export exists to show: the exact event count, a
monotonic timestamp order, dynamic batches visible as one shared device
slice flow-linked from every member request, and genuine queue/compute
overlap between concurrent requests (the thing the legacy back-to-back
layout could never show).
"""

import json

import pytest

from repro import FacePipelineConfig, TelemetryConfig
from repro.analysis.tracing import PID_DEVICES, PID_REQUESTS
from repro.serving.runner import run_face_pipeline

#: Pinned output size of the run below.  A change here means the trace
#: export (or the simulation itself) changed behaviour — update it only
#: after eyeballing the new trace in https://ui.perfetto.dev.
#: 2288 -> 2281 when the dynamic batcher's queue-delay deadline was
#: re-anchored to the oldest item's enqueue time (Triton semantics):
#: stalled batches now dispatch earlier, forming slightly fewer slices.
GOLDEN_EVENT_COUNT = 2281


@pytest.fixture(scope="module")
def trace_events():
    result = run_face_pipeline(
        FacePipelineConfig(),
        concurrency=16,
        warmup_requests=10,
        measure_requests=80,
        seed=3,
        telemetry=TelemetryConfig(enabled=True, monitor_interval_seconds=0.01),
    )
    session = result.telemetry
    return session.tracer.trace_events(monitor=session.monitor)


class TestGoldenTrace:
    def test_event_count_is_pinned(self, trace_events):
        assert len(trace_events) == GOLDEN_EVENT_COUNT

    def test_timestamps_are_monotonic(self, trace_events):
        stamps = [e["ts"] for e in trace_events if "ts" in e]
        assert stamps == sorted(stamps)
        assert all(e["dur"] >= 0 for e in trace_events if e["ph"] == "X")

    def test_batches_share_one_inference_slice(self, trace_events):
        shared = [
            e
            for e in trace_events
            if e["ph"] == "X"
            and e["pid"] == PID_DEVICES
            and "inference" in e["name"]
            and len(e["args"].get("requests", [])) >= 2
        ]
        assert shared, "no dynamic batch produced a shared inference slice"
        # Every member of the batch is flow-linked to the shared slice.
        flow_starts = {
            (e["id"], e["tid"]) for e in trace_events if e["ph"] == "s"
        }
        flow_finishes = {e["id"] for e in trace_events if e["ph"] == "f"}
        members = shared[0]["args"]["requests"]
        linked = [
            rid
            for rid in members
            if any(tid == rid for _, tid in flow_starts)
        ]
        assert len(linked) == len(members)
        assert flow_finishes, "flow arrows need finish events on the device track"

    def test_flow_events_pair_up(self, trace_events):
        starts = sorted(e["id"] for e in trace_events if e["ph"] == "s")
        finishes = sorted(e["id"] for e in trace_events if e["ph"] == "f")
        assert starts == finishes
        assert len(starts) == len(set(starts))

    def test_queue_overlaps_other_requests_compute(self, trace_events):
        request_slices = [
            e for e in trace_events if e["ph"] == "X" and e["pid"] == PID_REQUESTS
        ]
        queues = [e for e in request_slices if e["args"].get("kind") == "queue"]
        computes = [e for e in request_slices if e["args"].get("kind") == "compute"]
        assert queues and computes

        def overlaps(a, b):
            return a["ts"] < b["ts"] + b["dur"] and b["ts"] < a["ts"] + a["dur"]

        overlapping = sum(
            1
            for q in queues
            if any(c["tid"] != q["tid"] and overlaps(q, c) for c in computes)
        )
        # Under concurrency 16, queueing while others compute is the norm.
        assert overlapping >= len(queues) // 2

    def test_counter_track_present(self, trace_events):
        counters = [e for e in trace_events if e["ph"] == "C"]
        assert counters
        names = {e["name"] for e in counters}
        assert "detect queue depth" in names

    def test_written_file_is_perfetto_loadable_json(self, tmp_path):
        result = run_face_pipeline(
            FacePipelineConfig(),
            concurrency=16,
            warmup_requests=10,
            measure_requests=80,
            seed=3,
            telemetry=TelemetryConfig(enabled=True),
        )
        path = tmp_path / "faces.trace.json"
        count = result.telemetry.write_trace(str(path))
        payload = json.loads(path.read_text())
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == count
        kinds = {e["ph"] for e in payload["traceEvents"]}
        assert {"M", "X", "s", "f"} <= kinds
