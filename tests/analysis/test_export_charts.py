"""Tests for result export and terminal charts."""

import csv
import io
import json

import pytest

from repro.analysis import (
    bar_chart,
    metrics_to_dict,
    result_to_dict,
    rows_to_csv,
    rows_to_json,
    sparkline,
    stacked_bar_chart,
    write_csv,
    write_json,
)
from repro.serving import ExperimentConfig, run_experiment


@pytest.fixture(scope="module")
def small_result():
    return run_experiment(
        ExperimentConfig(concurrency=16, warmup_requests=30, measure_requests=150)
    )


class TestExport:
    def test_metrics_to_dict(self, small_result):
        flat = metrics_to_dict(small_result.metrics)
        assert flat["throughput"] == small_result.throughput
        assert flat["latency_p99"] >= flat["latency_p50"]
        assert any(key.startswith("span_") for key in flat)
        json.dumps(flat)  # JSON-safe

    def test_result_to_dict(self, small_result):
        flat = result_to_dict(small_result)
        assert flat["joules_per_image"] == pytest.approx(
            flat["cpu_joules_per_image"] + flat["gpu_joules_per_image"]
        )
        assert 0 <= flat["gpu_utilization"] <= 1

    def test_rows_to_csv_round_trip(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "c": 3.5}]
        text = rows_to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert parsed[0]["a"] == "1"
        assert parsed[1]["c"] == "3.5"
        assert parsed[0]["c"] == ""  # union header, missing filled

    def test_rows_to_json_round_trip(self):
        rows = [{"a": 1}, {"a": 2}]
        assert json.loads(rows_to_json(rows)) == rows

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            rows_to_csv([])
        with pytest.raises(ValueError):
            rows_to_json([])

    def test_write_files(self, tmp_path, small_result):
        rows = [result_to_dict(small_result)]
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        write_csv(str(csv_path), rows)
        write_json(str(json_path), rows)
        assert csv_path.read_text().startswith("completed") or "," in csv_path.read_text()
        assert json.loads(json_path.read_text())[0]["completed"] == rows[0]["completed"]


class TestCharts:
    def test_bar_chart_scales_to_peak(self):
        chart = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": 1}, width=2)

    def test_bar_chart_title_and_unit(self):
        chart = bar_chart({"a": 1.0}, title="T", unit=" img/s")
        assert chart.startswith("T\n")
        assert "img/s" in chart

    def test_stacked_bar_chart(self):
        chart = stacked_bar_chart(
            {"row1": {"x": 1.0, "y": 1.0}, "row2": {"x": 2.0}},
            width=12,
        )
        lines = chart.splitlines()
        assert "=x" in lines[0] and "=y" in lines[0]
        assert len(lines) == 3

    def test_stacked_bar_too_many_segments(self):
        with pytest.raises(ValueError):
            stacked_bar_chart({"r": {str(i): 1.0 for i in range(20)}})

    def test_sparkline_shape(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_sparkline_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_sparkline_validation(self):
        with pytest.raises(ValueError):
            sparkline([])
