"""Unit tests for retry backoff and the circuit-breaker state machine."""

import pytest

from repro.serving.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerPolicy,
    CircuitBreaker,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.sim import RandomStreams


class TestRetryPolicy:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=4,
            backoff_base_seconds=2e-3,
            backoff_multiplier=2.0,
            backoff_max_seconds=1.0,
            jitter_seconds=0.0,
        )
        assert policy.schedule() == pytest.approx([2e-3, 4e-3, 8e-3])

    def test_backoff_cap_respected(self):
        policy = RetryPolicy(
            max_attempts=10,
            backoff_base_seconds=10e-3,
            backoff_multiplier=4.0,
            backoff_max_seconds=50e-3,
            jitter_seconds=0.0,
        )
        assert max(policy.schedule()) == pytest.approx(50e-3)

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(max_attempts=5, jitter_seconds=1e-3)
        a = policy.schedule(RandomStreams(7).stream("balancer:retry"))
        b = policy.schedule(RandomStreams(7).stream("balancer:retry"))
        assert a == b  # same seed, same named stream -> same timeline
        bare = policy.schedule()
        for jittered, base in zip(a, bare):
            assert base <= jittered < base + policy.jitter_seconds

    def test_different_seeds_differ(self):
        policy = RetryPolicy(max_attempts=6, jitter_seconds=1e-3)
        a = policy.schedule(RandomStreams(1).stream("balancer:retry"))
        b = policy.schedule(RandomStreams(2).stream("balancer:retry"))
        assert a != b

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_seconds=-1e-3)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_seconds(0)


class TestBreakerTransitions:
    def make(self, threshold=3, recovery=0.5, probes=1):
        return CircuitBreaker(
            BreakerPolicy(
                failure_threshold=threshold,
                recovery_seconds=recovery,
                half_open_probes=probes,
            )
        )

    def test_opens_after_consecutive_failures(self):
        breaker = self.make(threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure(0.2)
        assert breaker.state == BREAKER_OPEN
        assert breaker.open_transitions == 1
        assert not breaker.allows(0.3)

    def test_success_resets_failure_streak(self):
        breaker = self.make(threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_success(0.2)
        breaker.record_failure(0.3)
        breaker.record_failure(0.4)
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_after_recovery_window(self):
        breaker = self.make(threshold=1, recovery=0.5)
        breaker.record_failure(0.0)
        assert not breaker.allows(0.4)
        assert breaker.allows(0.5)  # transitions to half-open
        assert breaker.state == BREAKER_HALF_OPEN

    def test_half_open_limits_probes(self):
        breaker = self.make(threshold=1, recovery=0.5, probes=1)
        breaker.record_failure(0.0)
        assert breaker.allows(1.0)
        breaker.note_dispatch()  # the one probe is now in flight
        assert not breaker.allows(1.0)

    def test_half_open_success_closes(self):
        breaker = self.make(threshold=1, recovery=0.5)
        breaker.record_failure(0.0)
        assert breaker.allows(1.0)
        breaker.note_dispatch()
        breaker.record_success(1.1)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allows(1.2)

    def test_half_open_failure_reopens(self):
        breaker = self.make(threshold=1, recovery=0.5)
        breaker.record_failure(0.0)
        assert breaker.allows(1.0)
        breaker.note_dispatch()
        breaker.record_failure(1.1)
        assert breaker.state == BREAKER_OPEN
        assert breaker.open_transitions == 2
        assert not breaker.allows(1.2)
        assert breaker.allows(1.1 + 0.5)


class TestResiliencePolicy:
    def test_defaults_valid(self):
        policy = ResiliencePolicy()
        assert policy.deadline_seconds == 0.25
        assert policy.retry.max_attempts == 3
        assert policy.breaker is not None

    def test_with_overrides(self):
        policy = ResiliencePolicy().with_overrides(deadline_seconds=0.1, max_backlog=64)
        assert policy.deadline_seconds == 0.1
        assert policy.max_backlog == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(deadline_seconds=0.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(max_backlog=0)
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(recovery_seconds=0.0)
