"""Tests for fault injection: health gating, determinism, broker loss."""

import pytest

from repro.brokers import FusedBroker, KafkaBroker
from repro.faults import (
    BrokerFault,
    DeviceHealth,
    FaultInjector,
    FaultPlan,
    GpuCrash,
    PcieThrottle,
    SlowNode,
    gpu_crash_plan,
)
from repro.hardware import ServerNode
from repro.hardware.pcie import H2D
from repro.sim import Environment, RandomStreams


def make_node(seed=0):
    env = Environment()
    node = ServerNode(env)
    return env, node, RandomStreams(seed)


class TestDeviceHealth:
    def test_gate_blocks_until_restore(self):
        env, node, _ = make_node()
        gpu = node.gpus[0]
        gpu.health = DeviceHealth(env)
        gpu.health.fail(1.0)
        finished = []

        def work():
            yield from gpu.execute(0.01)
            finished.append(env.now)

        env.process(work())
        env.run(until=0.5)
        assert not finished  # still gated on the outage
        env.run(until=2.0)
        assert finished and finished[0] >= 1.0
        assert gpu.health.down_seconds == pytest.approx(1.0)

    def test_overlapping_faults_extend_outage(self):
        env = Environment()
        health = DeviceHealth(env)

        def inject():
            health.fail(1.0)
            yield env.timeout(0.5)
            health.fail(1.0)  # restore pushed to t=1.5

        env.process(inject())
        env.run()
        assert health.failures == 2
        assert health.down_seconds == pytest.approx(1.5)

    def test_slowdown_multiplies_kernel_time(self):
        env, node, _ = make_node()
        gpu = node.gpus[0]
        gpu.health = DeviceHealth(env)
        gpu.health.slowdown = 4.0

        def work():
            yield from gpu.execute(0.01)

        env.run(until=env.process(work()))
        assert env.now == pytest.approx(0.04)

    def test_bandwidth_factor_slows_transfer(self):
        env, node, _ = make_node()
        link = node.gpus[0].link

        def xfer():
            yield from link.transfer(8 << 20, H2D, pinned=False)

        env.run(until=env.process(xfer()))
        healthy = env.now

        env2, node2, _ = make_node()
        link2 = node2.gpus[0].link
        link2.health = DeviceHealth(env2)
        link2.health.bandwidth_factor = 0.25

        def xfer2():
            yield from link2.transfer(8 << 20, H2D, pinned=False)

        env2.run(until=env2.process(xfer2()))
        assert env2.now > healthy  # the bandwidth term is 4x slower
        assert env2.now == pytest.approx(
            link2.latency + (healthy - link2.latency) * 4.0
        )


class TestInjectorSchedule:
    def heavy_plan(self):
        return FaultPlan(
            profiles=(GpuCrash(mtbf_seconds=0.3, restart_seconds=0.2),)
        )

    def run_timeline(self, seed):
        env, node, streams = make_node(seed)
        injector = FaultInjector(env, streams, self.heavy_plan())
        injector.attach_node(node)
        injector.start()
        env.run(until=5.0)
        return injector

    def test_faults_fire_and_are_logged(self):
        injector = self.run_timeline(seed=0)
        assert injector.fault_count > 0
        assert all(event.kind == "gpu_crash" for event in injector.events)
        assert all(0.0 < event.at_time < 5.0 for event in injector.events)

    def test_same_seed_same_timeline(self):
        a = self.run_timeline(seed=3)
        b = self.run_timeline(seed=3)
        assert [e.at_time for e in a.events] == [e.at_time for e in b.events]

    def test_different_seed_different_timeline(self):
        a = self.run_timeline(seed=3)
        b = self.run_timeline(seed=4)
        assert [e.at_time for e in a.events] != [e.at_time for e in b.events]

    def test_start_after_delays_first_fault(self):
        env, node, streams = make_node()
        plan = self.heavy_plan().with_overrides(start_after_seconds=2.0)
        injector = FaultInjector(env, streams, plan)
        injector.attach_node(node)
        injector.start()
        env.run(until=5.0)
        assert injector.fault_count > 0
        assert min(e.at_time for e in injector.events) >= 2.0

    def test_start_is_idempotent(self):
        env, node, streams = make_node()
        injector = FaultInjector(env, streams, self.heavy_plan())
        injector.attach_node(node)
        injector.start()
        injector.start()
        env.run(until=2.0)
        # One hazard process, not two: events strictly ordered in time.
        times = [e.at_time for e in injector.events]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_slow_node_and_throttle_restore(self):
        env, node, streams = make_node()
        plan = FaultPlan(
            profiles=(
                SlowNode(mtbf_seconds=0.5, duration_seconds=0.2, slowdown=4.0),
                PcieThrottle(mtbf_seconds=0.5, duration_seconds=0.2, bandwidth_factor=0.25),
            )
        )
        injector = FaultInjector(env, streams, plan)
        injector.attach_node(node)
        injector.start()
        env.run(until=10.0)
        kinds = {e.kind for e in injector.events}
        assert kinds == {"slow_node", "pcie_throttle"}
        # All faults have played out by now: multipliers restored.
        gpu = node.gpus[0]
        assert gpu.health.slowdown == 1.0
        assert gpu.link.health.bandwidth_factor == 1.0

    def test_gpu_crash_plan_duty_cycle(self):
        plan = gpu_crash_plan(0.01, restart_seconds=0.5)
        crash = plan.profiles[0]
        assert crash.downtime_fraction == pytest.approx(0.01)
        with pytest.raises(ValueError):
            gpu_crash_plan(0.0)


class TestBrokerDelivery:
    def attach(self, broker_cls, loss):
        env, node, streams = make_node()
        broker = broker_cls(env, node)
        plan = FaultPlan(
            profiles=(
                BrokerFault(mtbf_seconds=1e9, loss_probability=loss,
                            redelivery_seconds=1e-3),
            )
        )
        injector = FaultInjector(env, streams, plan)
        injector.attach_broker(broker)
        return env, broker

    def _pump(self, env, broker, count):
        received = []

        def producer():
            for i in range(count):
                yield from broker.produce(i, 1000)

        # Produce everything first: loss is decided at publish time, so
        # afterwards ``broker.lost`` tells us how many to consume.
        env.run(until=env.process(producer()))

        def consumer(expected):
            for _ in range(expected):
                message = yield from broker.consume()
                received.append(message.payload)

        env.run(until=env.process(consumer(count - broker.lost)))
        return received

    def test_at_least_once_redelivers_instead_of_losing(self):
        env, broker = self.attach(KafkaBroker, loss=0.5)
        received = self._pump(env, broker, 40)
        assert broker.delivery == "at_least_once"
        assert broker.lost == 0
        assert broker.redelivered > 0
        assert received == list(range(40))  # nothing dropped, order kept

    def test_at_most_once_drops(self):
        env, broker = self.attach(FusedBroker, loss=0.5)
        received = self._pump(env, broker, 40)
        assert broker.delivery == "at_most_once"
        assert broker.redelivered == 0
        assert broker.lost > 0
        assert len(received) == 40 - broker.lost

    def test_no_loss_without_fault(self):
        env, broker = self.attach(FusedBroker, loss=0.0)
        received = self._pump(env, broker, 10)
        assert broker.lost == 0
        assert len(received) == 10
