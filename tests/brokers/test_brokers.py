"""Unit tests for the Kafka-like, Redis-like, and fused brokers."""

import pytest

from repro.brokers import FusedBroker, KafkaBroker, Message, RedisBroker, make_broker
from repro.hardware import DEFAULT_CALIBRATION, ServerNode
from repro.sim import Environment


def make_env():
    env = Environment()
    node = ServerNode(env)
    return env, node


class TestFactory:
    def test_known_brokers(self):
        env, node = make_env()
        assert isinstance(make_broker("kafka", env, node), KafkaBroker)
        assert isinstance(make_broker("redis", env, node), RedisBroker)
        assert isinstance(make_broker("fused", env, node), FusedBroker)

    def test_unknown_broker(self):
        env, node = make_env()
        with pytest.raises(KeyError, match="known brokers"):
            make_broker("rabbitmq", env, node)


class TestFifoDelivery:
    @pytest.mark.parametrize("name", ["kafka", "redis", "fused"])
    def test_messages_delivered_in_order(self, name):
        env, node = make_env()
        broker = make_broker(name, env, node)
        received = []

        def producer():
            for i in range(5):
                yield from broker.produce(i, 1000)

        def consumer():
            for _ in range(5):
                message = yield from broker.consume()
                received.append(message.payload)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == [0, 1, 2, 3, 4]
        assert broker.produced == 5
        assert broker.consumed == 5


class TestCostOrdering:
    def _produce_time(self, broker, env, nbytes=77 * 1024):
        def proc():
            yield from broker.produce("x", nbytes)

        start = env.now
        env.run(until=env.process(proc()))
        return env.now - start

    def test_kafka_produce_much_slower_than_redis(self):
        env_k, node_k = make_env()
        kafka_time = self._produce_time(KafkaBroker(env_k, node_k), env_k)
        env_r, node_r = make_env()
        redis_time = self._produce_time(RedisBroker(env_r, node_r), env_r)
        assert kafka_time > 5 * redis_time

    def test_fused_produce_is_free(self):
        env, node = make_env()
        assert self._produce_time(FusedBroker(env, node), env) == 0.0

    def test_kafka_disk_accounting(self):
        env, node = make_env()
        broker = KafkaBroker(env, node)

        def proc():
            yield from broker.produce("x", 10_000)

        env.run(until=env.process(proc()))
        assert broker.disk_bytes_written == 10_000
        assert broker.bytes_through == 10_000

    def test_kafka_disk_bandwidth_limits_throughput(self):
        """Sustained produce rate cannot exceed disk bandwidth."""
        env, node = make_env()
        broker = KafkaBroker(env, node)
        nbytes = 77 * 1024
        count = 200

        def producer(k):
            for _ in range(count):
                yield from broker.produce("x", nbytes)

        # Many parallel producers: only the shared log writer limits.
        for k in range(8):
            env.process(producer(k))
        env.run()
        byte_rate = 8 * count * nbytes / env.now
        assert byte_rate <= DEFAULT_CALIBRATION.broker.kafka_disk_bandwidth * 1.05

    def test_pipelined_produce_cheaper_for_redis(self):
        env, node = make_env()
        broker = RedisBroker(env, node)

        def sync(n):
            for _ in range(n):
                yield from broker.produce("x", 1000)

        def pipelined(n):
            yield env.timeout(0)
            for _ in range(n):
                yield from broker.produce_pipelined("x", 1000)

        start = env.now
        env.run(until=env.process(sync(20)))
        sync_time = env.now - start
        start = env.now
        env.run(until=env.process(pipelined(20)))
        pipe_time = env.now - start
        assert pipe_time < sync_time / 2


class TestConsumeBehaviour:
    def test_kafka_empty_topic_costs_poll_interval(self):
        env, node = make_env()
        broker = KafkaBroker(env, node)
        got = []

        def consumer():
            message = yield from broker.consume()
            got.append((message.payload, env.now))

        def producer():
            yield env.timeout(broker.poll_interval * 2.5)
            yield from broker.produce("late", 100)

        env.process(consumer())
        env.process(producer())
        env.run()
        # The consumer only notices on a poll boundary after production.
        assert got[0][1] >= broker.poll_interval * 2.5

    def test_redis_blocking_pop_has_no_poll_latency(self):
        env, node = make_env()
        broker = RedisBroker(env, node)
        got = []

        def consumer():
            message = yield from broker.consume()
            got.append(env.now)

        def producer():
            yield env.timeout(0.005)
            yield from broker.produce("x", 100)

        env.process(consumer())
        env.process(producer())
        env.run()
        produce_cost = (
            DEFAULT_CALIBRATION.broker.redis_produce_seconds
            + DEFAULT_CALIBRATION.broker.redis_consume_seconds
        )
        assert got[0] == pytest.approx(0.005 + produce_cost, abs=1e-3)

    def test_message_records_queue_delay(self):
        env, node = make_env()
        broker = FusedBroker(env, node)
        messages = []

        def producer():
            message = yield from broker.produce("x", 100)
            messages.append(message)

        def consumer():
            yield env.timeout(2.0)
            yield from broker.consume()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert messages[0].queue_delay == pytest.approx(2.0)

    def test_unconsumed_message_has_no_delay(self):
        message = Message("x", 100, produced_at=0.0)
        with pytest.raises(RuntimeError):
            _ = message.queue_delay
