"""Unit tests for Store / FilterStore / PriorityStore and RandomStreams."""

import pytest

from repro.sim import (
    Environment,
    FilterStore,
    PriorityItem,
    PriorityStore,
    RandomStreams,
    Store,
)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        got = []

        def proc(env):
            yield store.put("x")
            item = yield store.get()
            got.append(item)

        env.run(until=env.process(proc(env)))
        assert got == ["x"]

    def test_fifo_item_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env):
            for item in "abc":
                yield store.put(item)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == ["a", "b", "c"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((item, env.now))

        def producer(env):
            yield env.timeout(5)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [("late", 5)]

    def test_bounded_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        trace = []

        def producer(env):
            yield store.put(1)
            trace.append(("put1", env.now))
            yield store.put(2)
            trace.append(("put2", env.now))

        def consumer(env):
            yield env.timeout(3)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert trace == [("put1", 0), ("put2", 3)]

    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_peak_size(self):
        env = Environment()
        store = Store(env)

        def proc(env):
            for i in range(5):
                yield store.put(i)
            for _ in range(5):
                yield store.get()

        env.run(until=env.process(proc(env)))
        assert store.peak_size == 5
        assert store.size == 0

    def test_get_wait_time(self):
        env = Environment()
        store = Store(env)
        waits = []

        def consumer(env):
            get = store.get()
            item = yield get
            waits.append((item, get.wait_time))

        def producer(env):
            yield env.timeout(2.5)
            yield store.put("x")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert waits == [("x", 2.5)]

    def test_cancel_pending_get(self):
        env = Environment()
        store = Store(env)

        def proc(env):
            get = store.get()
            yield env.timeout(1)
            get.cancel()
            yield store.put("x")

        env.run(until=env.process(proc(env)))
        assert store.size == 1  # nobody consumed it


class TestGetCancelRequeue:
    """``get | timeout`` races: cancelling a get that already succeeded
    must put the item back (at the front), never drop it."""

    def test_cancel_after_success_requeues_item_at_front(self):
        env = Environment()
        store = Store(env)
        seen = []

        def proc(env):
            yield store.put("a")
            yield store.put("b")
            get = store.get()  # succeeds immediately with "a"
            timeout = env.timeout(0)
            yield get | timeout
            get.cancel()  # loser branch of a race: give "a" back
            seen.append(list(store.items))

        env.run(until=env.process(proc(env)))
        assert seen == [["a", "b"]]  # "a" back at the *front*, order kept

    def test_cancel_twice_requeues_once(self):
        env = Environment()
        store = Store(env)

        def proc(env):
            yield store.put("a")
            get = store.get()
            yield env.timeout(0)
            get.cancel()
            get.cancel()

        env.run(until=env.process(proc(env)))
        assert list(store.items) == ["a"]

    def test_requeued_item_wakes_blocked_getter(self):
        env = Environment()
        store = Store(env)
        got = []

        def waiter(env):
            item = yield store.get()
            got.append((item, env.now))

        def racer(env):
            yield env.timeout(1)
            yield store.put("x")
            get = store.get()
            yield env.timeout(0)
            get.cancel()  # hand "x" back; the waiter must receive it

        env.process(racer(env))
        env.process(waiter(env))
        env.run()
        assert got == [("x", 1)]

    def test_get_timeout_race_never_loses_item(self):
        """put and timeout land on the same timestamp: whichever branch
        the consumer takes, the item survives."""
        env = Environment()
        store = Store(env)
        got = []

        def producer(env):
            yield env.timeout(1.0)
            yield store.put("x")

        def consumer(env):
            get = store.get()
            timeout = env.timeout(1.0)
            yield get | timeout
            if get.triggered:
                got.append(get.value)
            else:
                get.cancel()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == ["x"] or list(store.items) == ["x"]

    def test_filter_store_cancel_requeues(self):
        env = Environment()
        store = FilterStore(env)

        def proc(env):
            yield store.put(1)
            yield store.put(2)
            get = store.get(lambda x: x == 2)
            yield env.timeout(0)
            get.cancel()

        env.run(until=env.process(proc(env)))
        assert sorted(store.items) == [1, 2]

    def test_priority_store_cancel_requeues_in_order(self):
        env = Environment()
        store = PriorityStore(env)
        got = []

        def proc(env):
            yield store.put(PriorityItem(2, "b"))
            yield store.put(PriorityItem(1, "a"))
            get = store.get()  # pops the smallest: "a"
            yield env.timeout(0)
            get.cancel()  # must heap-push it back, not appendleft
            for _ in range(2):
                item = yield store.get()
                got.append(item.item)

        env.run(until=env.process(proc(env)))
        assert got == ["a", "b"]

    def test_cancel_untriggered_get_leaves_no_waiter(self):
        env = Environment()
        store = Store(env)

        def proc(env):
            get = store.get()
            yield env.timeout(1)
            get.cancel()
            yield store.put("x")

        env.run(until=env.process(proc(env)))
        assert list(store.items) == ["x"]
        assert store.waiting_getters == 0


class TestFilterStore:
    def test_filter_selects_matching_item(self):
        env = Environment()
        store = FilterStore(env)
        got = []

        def proc(env):
            yield store.put(1)
            yield store.put(2)
            yield store.put(3)
            item = yield store.get(lambda x: x % 2 == 0)
            got.append(item)

        env.run(until=env.process(proc(env)))
        assert got == [2]
        assert list(store.items) == [1, 3]

    def test_filter_blocks_until_match_arrives(self):
        env = Environment()
        store = FilterStore(env)
        got = []

        def consumer(env):
            item = yield store.get(lambda x: x == "wanted")
            got.append((item, env.now))

        def producer(env):
            yield store.put("other")
            yield env.timeout(4)
            yield store.put("wanted")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [("wanted", 4)]

    def test_blocked_filter_getter_does_not_block_others(self):
        env = Environment()
        store = FilterStore(env)
        got = []

        def picky(env):
            item = yield store.get(lambda x: x == "never")
            got.append(item)

        def easy(env):
            yield env.timeout(1)
            item = yield store.get(lambda x: True)
            got.append(item)

        def producer(env):
            yield env.timeout(2)
            yield store.put("anything")

        env.process(picky(env))
        env.process(easy(env))
        env.process(producer(env))
        env.run(until=10)
        assert got == ["anything"]


class TestPriorityStore:
    def test_pops_smallest_first(self):
        env = Environment()
        store = PriorityStore(env)
        got = []

        def proc(env):
            yield store.put(PriorityItem(3, "c"))
            yield store.put(PriorityItem(1, "a"))
            yield store.put(PriorityItem(2, "b"))
            for _ in range(3):
                item = yield store.get()
                got.append(item.item)

        env.run(until=env.process(proc(env)))
        assert got == ["a", "b", "c"]

    def test_equal_priority_pops_in_insertion_order(self):
        """FIFO within a priority class.  PriorityItem.__lt__ used to
        compare *only* the priority, so equal-priority items tied and
        their pop order depended on heap internals (i.e. on the full
        insertion history).  The insertion-sequence tie-break makes
        equal-priority ordering FIFO by construction."""
        env = Environment()
        store = PriorityStore(env)
        got = []

        def proc(env):
            for tag in "abcde":
                yield store.put(PriorityItem(1, tag))
            for _ in range(5):
                item = yield store.get()
                got.append(item.item)

        env.run(until=env.process(proc(env)))
        assert got == list("abcde")

    def test_mixed_priorities_fifo_within_class(self):
        env = Environment()
        store = PriorityStore(env)
        got = []

        def proc(env):
            # Interleave two priority classes.
            for priority, tag in [(2, "x1"), (1, "a1"), (2, "x2"), (1, "a2"), (2, "x3")]:
                yield store.put(PriorityItem(priority, tag))
            for _ in range(5):
                item = yield store.get()
                got.append(item.item)

        env.run(until=env.process(proc(env)))
        assert got == ["a1", "a2", "x1", "x2", "x3"]

    def test_priority_item_ordering_is_total(self):
        a = PriorityItem(1, "first")
        b = PriorityItem(1, "second")
        c = PriorityItem(0, "urgent")
        assert c < a and c < b  # priority dominates
        assert a < b  # equal priority: insertion order breaks the tie
        assert not (b < a)
        # Payloads never participate, so unorderable items are fine.
        d = PriorityItem(1, object())
        assert b < d


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        a = RandomStreams(seed=7).stream("arrivals")
        b = RandomStreams(seed=7).stream("arrivals")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_are_independent(self):
        streams = RandomStreams(seed=7)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_creation_order_does_not_matter(self):
        s1 = RandomStreams(seed=3)
        s1.stream("x")
        first = s1.stream("y").random()

        s2 = RandomStreams(seed=3)
        second = s2.stream("y").random()  # y created before x here
        s2.stream("x")
        assert first == second

    def test_spawn_derives_independent_family(self):
        parent = RandomStreams(seed=1)
        child = parent.spawn("gpu0")
        assert child.seed != parent.seed
        # Deterministic: same spawn name gives same child seed.
        assert parent.spawn("gpu0").seed == child.seed
        assert parent.spawn("gpu1").seed != child.seed
