"""CalendarQueue: ordering, resize, and equivalence with a heap reference.

The calendar core must return entries in exactly the same total order
as ``heapq`` over ``(time, priority, eid, event)`` tuples — the engine's
bit-identical-scheduler guarantee reduces to this property.
"""

import heapq
import random

import pytest

from repro.sim.calendar import CalendarQueue


def _item(time, priority=1, eid=0, payload=None):
    return (time, priority, eid, payload)


def _drain(queue):
    out = []
    while queue:
        out.append(queue.pop())
    return out


class TestBasics:
    def test_empty(self):
        q = CalendarQueue()
        assert len(q) == 0
        assert not q
        assert q.peek() == float("inf")
        with pytest.raises(IndexError):
            q.pop()

    def test_push_pop_single(self):
        q = CalendarQueue()
        item = _item(3.5)
        q.push(item)
        assert len(q) == 1
        assert q.peek() == 3.5
        assert q.pop() is item
        assert len(q) == 0

    def test_pops_in_time_order(self):
        q = CalendarQueue()
        for i, t in enumerate([5.0, 1.0, 3.0, 2.0, 4.0]):
            q.push(_item(t, eid=i))
        assert [item[0] for item in _drain(q)] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_same_time_orders_by_priority_then_eid(self):
        q = CalendarQueue()
        q.push(_item(1.0, priority=1, eid=2))
        q.push(_item(1.0, priority=0, eid=3))
        q.push(_item(1.0, priority=1, eid=1))
        assert [(i[1], i[2]) for i in _drain(q)] == [(0, 3), (1, 1), (1, 2)]

    def test_validation(self):
        with pytest.raises(ValueError):
            CalendarQueue(width=0.0)
        with pytest.raises(ValueError):
            CalendarQueue(buckets=0)

    def test_repr_mentions_shape(self):
        q = CalendarQueue()
        q.push(_item(1.0))
        text = repr(q)
        assert "len=1" in text and "buckets=" in text


class TestCursor:
    def test_push_behind_cursor_rewinds(self):
        """Absolute-time scheduling can insert before the scan position."""
        q = CalendarQueue()
        q.push(_item(100.0, eid=0))
        q.push(_item(200.0, eid=1))
        assert q.pop()[0] == 100.0  # cursor now at the 100.0 window
        q.push(_item(1.0, eid=2))  # behind the cursor
        assert q.pop()[0] == 1.0
        assert q.pop()[0] == 200.0

    def test_sparse_times_use_earliest_window_jump(self):
        """Times separated by >> nbuckets * width still pop correctly."""
        q = CalendarQueue(width=1e-6)
        times = [0.0, 1e3, 1e6, 1e9]
        for i, t in enumerate(times):
            q.push(_item(t, eid=i))
        assert [item[0] for item in _drain(q)] == times

    def test_peek_does_not_advance(self):
        q = CalendarQueue()
        q.push(_item(2.0))
        q.push(_item(7.0))
        assert q.peek() == 2.0
        assert q.peek() == 2.0
        assert q.pop()[0] == 2.0
        assert q.peek() == 7.0


class TestResize:
    def test_grows_under_load(self):
        q = CalendarQueue()
        start = q.bucket_count
        for i in range(1000):
            q.push(_item(float(i), eid=i))
        assert q.bucket_count > start
        assert len(q) == 1000

    def test_shrinks_after_drain(self):
        q = CalendarQueue()
        for i in range(1000):
            q.push(_item(float(i), eid=i))
        grown = q.bucket_count
        _drain(q)
        assert q.bucket_count < grown

    def test_resize_preserves_order(self):
        q = CalendarQueue()
        times = [random.Random(5).uniform(0, 100) for _ in range(500)]
        for i, t in enumerate(times):
            q.push(_item(t, eid=i))
        assert [item[0] for item in _drain(q)] == sorted(times)

    def test_same_time_burst_does_not_degenerate(self):
        """A burst of identical times has no gap structure to estimate
        from; the queue must still drain it correctly (width unchanged,
        cooldown prevents repeated re-estimation)."""
        q = CalendarQueue()
        for i in range(500):
            q.push(_item(1.0, eid=i))
        assert [item[2] for item in _drain(q)] == list(range(500))


class TestHeapEquivalence:
    """Randomized push/pop interleavings against a heapq reference."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_interleaving(self, seed):
        rng = random.Random(seed)
        q = CalendarQueue()
        ref = []
        eid = 0
        clock = 0.0  # pops never go back in time, mirroring the engine
        for _ in range(2000):
            if ref and rng.random() < 0.45:
                got = q.pop()
                want = heapq.heappop(ref)
                assert got == want
                clock = got[0]
            else:
                # Mix of far-future, near-future, and same-time pushes.
                roll = rng.random()
                if roll < 0.2:
                    t = clock  # same-time (store handoff pattern)
                elif roll < 0.8:
                    t = clock + rng.uniform(0.0, 2.0)
                else:
                    t = clock + rng.uniform(0.0, 1e4)
                item = _item(t, priority=rng.choice((0, 1)), eid=eid)
                eid += 1
                q.push(item)
                heapq.heappush(ref, item)
        while ref:
            assert q.pop() == heapq.heappop(ref)
        assert not q

    def test_pathological_float_times(self):
        """Times that differ by one ulp must still pop in order."""
        q = CalendarQueue()
        base = 0.1 + 0.2  # 0.30000000000000004
        times = sorted([0.3, base, base + 2e-17, 1e-12, 0.0])
        ref = []
        for i, t in enumerate(times):
            item = _item(t, eid=i)
            q.push(item)
            heapq.heappush(ref, item)
        while ref:
            assert q.pop() == heapq.heappop(ref)

    def test_clumped_times_with_ties(self):
        """Many chains sharing few distinct times (the deep-queue
        workload that motivated incremental bucket sorting)."""
        q = CalendarQueue()
        ref = []
        eid = 0
        for round_no in range(5):
            for i in range(1000):
                t = float(round_no) + (i % 7) * 1e-4
                item = _item(t, eid=eid)
                eid += 1
                q.push(item)
                heapq.heappush(ref, item)
            for _ in range(900):
                assert q.pop() == heapq.heappop(ref)
        while ref:
            assert q.pop() == heapq.heappop(ref)
