"""Unit tests for the DES engine: time, processes, events, conditions."""

import pytest

from repro.sim import Environment, EmptySchedule, Interrupt
from repro.sim.engine import DEFAULT_SCHEDULER, SCHEDULERS, resolve_scheduler


def test_initial_time_is_zero():
    env = Environment()
    assert env.now == 0.0


def test_initial_time_can_be_set():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_time():
    env = Environment()

    def proc(env):
        yield env.timeout(3.5)

    env.process(proc(env))
    env.run()
    assert env.now == 3.5


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_value_delivered():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1, value="hello")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_run_until_time_stops_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1)

    env.process(proc(env))
    env.run(until=10)
    assert env.now == 10


def test_run_until_past_time_rejected():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_process_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return 42

    result = env.run(until=env.process(proc(env)))
    assert result == 42
    assert env.now == 2


def test_run_empty_schedule_returns_none():
    env = Environment()
    assert env.run() is None


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_events_processed_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, 3, "c"))
    env.process(proc(env, 1, "a"))
    env.process(proc(env, 2, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in "abcde":
        env.process(proc(env, tag))
    env.run()
    assert order == list("abcde")


def test_process_waits_for_process():
    env = Environment()
    trace = []

    def child(env):
        yield env.timeout(5)
        trace.append("child done")
        return "result"

    def parent(env):
        value = yield env.process(child(env))
        trace.append(f"parent got {value}")

    env.process(parent(env))
    env.run()
    assert trace == ["child done", "parent got result"]


def test_manual_event_succeed():
    env = Environment()
    done = env.event()
    got = []

    def waiter(env):
        value = yield done
        got.append(value)

    def firer(env):
        yield env.timeout(2)
        done.succeed("fired")

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert got == ["fired"]


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError("nope"))


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_failed_event_raises_in_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter(env):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter(env))
    ev.fail(ValueError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_escalates():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("unhandled"))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_uncaught_exception_in_waited_process_propagates():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise RuntimeError("child crashed")

    def parent(env):
        with pytest.raises(RuntimeError, match="child crashed"):
            yield env.process(child(env))

    env.run(until=env.process(parent(env)))


def test_uncaught_exception_in_unwaited_process_escalates():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise RuntimeError("nobody is watching")

    env.process(child(env))
    with pytest.raises(RuntimeError, match="nobody is watching"):
        env.run()


def test_yield_non_event_fails_process():
    env = Environment()

    def proc(env):
        yield 42

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="invalid yield"):
        env.run()


def test_yielding_already_processed_event_resumes_immediately():
    env = Environment()
    trace = []

    def proc(env):
        t = env.timeout(1, value="v")
        yield env.timeout(5)
        value = yield t  # processed long ago; should not block
        trace.append((env.now, value))

    env.process(proc(env))
    env.run()
    assert trace == [(5, "v")]


def test_process_is_alive():
    env = Environment()

    def proc(env):
        yield env.timeout(3)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_peek_reports_next_event_time():
    env = Environment()

    def proc(env):
        yield env.timeout(7)

    env.process(proc(env))
    # The Initialize event is scheduled at t=0.
    assert env.peek() == 0.0
    env.step()
    assert env.peek() == 7.0


class TestConditions:
    def test_all_of(self):
        env = Environment()
        results = []

        def proc(env):
            t1 = env.timeout(1, value="a")
            t2 = env.timeout(2, value="b")
            cond = yield env.all_of([t1, t2])
            results.append((env.now, cond.values()))

        env.process(proc(env))
        env.run()
        assert results == [(2, ["a", "b"])]

    def test_any_of(self):
        env = Environment()
        results = []

        def proc(env):
            t1 = env.timeout(1, value="a")
            t2 = env.timeout(2, value="b")
            cond = yield env.any_of([t1, t2])
            results.append((env.now, cond.values()))

        env.process(proc(env))
        env.run()
        assert results == [(1, ["a"])]

    def test_and_operator(self):
        env = Environment()
        results = []

        def proc(env):
            yield env.timeout(1) & env.timeout(3)
            results.append(env.now)

        env.process(proc(env))
        env.run()
        assert results == [3]

    def test_or_operator(self):
        env = Environment()
        results = []

        def proc(env):
            yield env.timeout(1) | env.timeout(3)
            results.append(env.now)

        env.process(proc(env))
        env.run()
        assert results == [1]

    def test_empty_all_of_triggers_immediately(self):
        env = Environment()
        results = []

        def proc(env):
            yield env.all_of([])
            results.append(env.now)

        env.process(proc(env))
        env.run()
        assert results == [0]

    def test_condition_failure_propagates(self):
        env = Environment()
        ev = env.event()

        def proc(env):
            with pytest.raises(ValueError, match="cond"):
                yield env.all_of([ev, env.timeout(10)])

        p = env.process(proc(env))
        ev.fail(ValueError("cond"))
        env.run(until=p)

    def test_condition_value_mapping(self):
        env = Environment()

        def proc(env):
            t1 = env.timeout(1, value="x")
            t2 = env.timeout(1, value="y")
            cond = yield env.all_of([t1, t2])
            assert cond[t1] == "x"
            assert cond[t2] == "y"
            assert t1 in cond
            assert len(cond) == 2

        env.run(until=env.process(proc(env)))


class TestInterrupt:
    def test_interrupt_delivers_cause(self):
        env = Environment()
        caught = []

        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt as exc:
                caught.append((env.now, exc.cause))

        def attacker(env, victim_proc):
            yield env.timeout(3)
            victim_proc.interrupt("stop now")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert caught == [(3, "stop now")]

    def test_interrupted_process_can_continue(self):
        env = Environment()
        trace = []

        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                trace.append("interrupted")
            yield env.timeout(1)
            trace.append(f"done at {env.now:g}")

        def attacker(env, victim_proc):
            yield env.timeout(2)
            victim_proc.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert trace == ["interrupted", "done at 3"]

    def test_interrupt_terminated_process_rejected(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError):
            p.interrupt()

    def test_self_interrupt_rejected(self):
        env = Environment()

        def proc(env):
            with pytest.raises(RuntimeError):
                env.active_process.interrupt()
            yield env.timeout(0)

        env.run(until=env.process(proc(env)))

    def test_uncaught_interrupt_fails_process(self):
        env = Environment()

        def victim(env):
            yield env.timeout(100)

        def attacker(env, victim_proc):
            yield env.timeout(1)
            victim_proc.interrupt("die")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        with pytest.raises(Interrupt):
            env.run()


class TestScheduleAt:
    """Absolute-time scheduling (the cross-environment delivery path)."""

    def test_fires_at_exact_absolute_time(self):
        env = Environment()
        seen = []
        event = env.event()
        event._ok = True
        event._value = None
        event.callbacks.append(lambda _ev: seen.append(env.now))
        # A time that relative scheduling could miss by an ulp.
        at = 0.1 + 0.2  # 0.30000000000000004
        env.schedule_at(event, at)
        env.run()
        assert seen == [at]

    def test_interleaves_with_relative_events(self):
        env = Environment()
        order = []

        def proc(env):
            yield env.timeout(1.0)
            order.append("timeout")

        env.process(proc(env))
        event = env.event()
        event._ok = True
        event._value = None
        event.callbacks.append(lambda _ev: order.append("absolute"))
        env.schedule_at(event, 0.5)
        env.run()
        assert order == ["absolute", "timeout"]

    def test_past_time_rejected(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2.0)

        env.run(until=env.process(proc(env)))
        with pytest.raises(ValueError, match="must be >= now"):
            env.schedule_at(env.event(), 1.0)


class TestRunUntilDrift:
    """run(until=<number>) must stop at *exactly* that float.

    The old implementation scheduled the stop event with a relative
    delay of ``until - now``, and float arithmetic does not guarantee
    ``now + (until - now) == until`` — runs could stop one ulp early or
    late, and a subsequent ``run(until=...)`` with the same target
    could raise "until is in the past".  The fix routes the stop event
    through absolute-time scheduling.
    """

    # (now, until) pairs where ``now + (until - now) != until`` — the
    # relative-delay formulation lands one ulp off the target.
    PATHOLOGICAL = [
        (0.7148007551913033, 1.9935579046706298),
        (1.0139796020820893, 3.5222556151550743),
        (0.289738047221913, 1.463544898080057),
        (1.4855757384787682, 7.854891493606652),
    ]

    def test_drift_arithmetic_is_actually_pathological(self):
        """Guard the premise: every pair above does exhibit the drift."""
        assert all(now + (at - now) != at for now, at in self.PATHOLOGICAL)

    @pytest.mark.parametrize("now,target", PATHOLOGICAL)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_stops_at_exact_float(self, now, target, scheduler):
        env = Environment(initial_time=now, scheduler=scheduler)

        def ticker(env):
            while True:
                yield env.timeout((target - now) / 7)

        env.process(ticker(env))
        env.run(until=target)
        assert env.now == target  # bit-exact, not approx

    @pytest.mark.parametrize("now,target", PATHOLOGICAL)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_resuming_to_same_target_is_a_noop(self, now, target, scheduler):
        """If the first run overshot by an ulp, this raised ValueError."""
        env = Environment(initial_time=now, scheduler=scheduler)

        def ticker(env):
            while True:
                yield env.timeout(0.1)

        env.process(ticker(env))
        env.run(until=target)
        env.run(until=target)  # same instant: legal, advances nothing
        assert env.now == target

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_events_at_the_stop_instant_still_fire_first(self, scheduler):
        """The stop event is scheduled below NORMAL priority, so work
        landing at exactly t=until runs before the run() returns."""
        env = Environment(scheduler=scheduler)
        fired = []

        def proc(env):
            yield env.timeout(5.0)
            fired.append(env.now)

        env.process(proc(env))
        env.run(until=5.0)
        assert fired == [5.0]


class TestStepRunEquivalence:
    """step() and run() share one dispatch path; interleaving them
    cannot change the trajectory."""

    @staticmethod
    def _workload(env, trace):
        def chain(env, tag):
            for i in range(8):
                yield env.timeout(0.25 + 0.1 * i)
                trace.append((round(env.now, 6), tag, i))

        env.process(chain(env, "a"))
        env.process(chain(env, "b"))

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_interleaved_step_run_matches_pure_run(self, scheduler):
        pure = Environment(scheduler=scheduler)
        pure_trace = []
        self._workload(pure, pure_trace)
        pure.run()

        mixed = Environment(scheduler=scheduler)
        mixed_trace = []
        self._workload(mixed, mixed_trace)
        for _ in range(3):
            mixed.step()  # a few manual steps...
        mixed.run(until=1.0)  # ...a bounded run...
        while mixed.pending:
            mixed.step()  # ...then stepped to exhaustion
        assert mixed_trace == pure_trace
        assert mixed.now == pure.now


class TestSchedulerSelection:
    def test_default_scheduler(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        assert DEFAULT_SCHEDULER in SCHEDULERS
        assert Environment().scheduler == DEFAULT_SCHEDULER

    @pytest.mark.parametrize("name", SCHEDULERS)
    def test_explicit_argument(self, name):
        assert Environment(scheduler=name).scheduler == name

    def test_env_var_selects(self, monkeypatch):
        for name in SCHEDULERS:
            monkeypatch.setenv("REPRO_SCHEDULER", name)
            assert Environment().scheduler == name

    def test_argument_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        assert Environment(scheduler="heap").scheduler == "heap"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            Environment(scheduler="btree")
        with pytest.raises(ValueError, match="unknown scheduler"):
            resolve_scheduler("btree")

    def test_resolve_normalizes_case(self):
        assert resolve_scheduler(" HEAP ") == "heap"

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_identical_trajectories(self, scheduler):
        """The cheap end-to-end check; the full-experiment version
        lives in tests/serving/test_scheduler_determinism.py."""
        env = Environment(scheduler=scheduler)
        trace = []

        def proc(env, tag, delay):
            for _ in range(20):
                yield env.timeout(delay)
                trace.append((env.now, tag))

        env.process(proc(env, "x", 0.3))
        env.process(proc(env, "y", 0.7))
        env.run()
        reference = Environment(scheduler="heap")
        ref_trace = []

        def ref_proc(env, tag, delay):
            for _ in range(20):
                yield env.timeout(delay)
                ref_trace.append((env.now, tag))

        reference.process(ref_proc(reference, "x", 0.3))
        reference.process(ref_proc(reference, "y", 0.7))
        reference.run()
        assert trace == ref_trace
