"""Event-object pooling: recycling is invisible and provably safe.

The engine recycles ``Timeout``/``Event``/``StoreGet``/``StorePut``
instances into per-environment free lists, but only when CPython's
reference count proves nothing outside the dispatch loop still holds
the object.  These tests pin the two halves of that contract:

- **Invisibility**: pooling never changes simulation results; a
  recycled object handed back by ``env.timeout()``/``env.event()`` is
  indistinguishable from a fresh one.
- **Safety**: an event the user still references is *never* recycled,
  so its ``value``/``ok`` stay readable forever.
"""

import pytest

from repro.sim import Environment, Store
from repro.sim.engine import _POOL_LIMIT, SCHEDULERS


@pytest.fixture(params=SCHEDULERS)
def env(request):
    return Environment(scheduler=request.param)


class TestTimeoutPooling:
    def test_pool_captures_unreferenced_timeouts(self, env):
        def proc(env):
            for _ in range(50):
                yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        # Steady-state reuse keeps the free list tiny (each timeout is
        # recycled and immediately handed back out); it must be
        # non-empty after the run ends.
        assert len(env._timeout_pool) >= 1

    def test_recycled_timeout_delivers_fresh_values(self, env):
        seen = []

        def proc(env):
            for i in range(20):
                value = yield env.timeout(1.0, value=f"v{i}")
                seen.append((env.now, value))

        env.process(proc(env))
        env.run()
        assert seen == [(float(i + 1), f"v{i}") for i in range(20)]

    def test_held_timeout_is_never_recycled(self, env):
        held = []

        def proc(env):
            for i in range(10):
                t = env.timeout(1.0, value=i)
                held.append(t)  # outside reference: recycling is vetoed
                yield t

        env.process(proc(env))
        env.run()
        # All ten are distinct live objects with their values intact.
        assert len({id(t) for t in held}) == 10
        assert [t.value for t in held] == list(range(10))
        assert all(t not in env._timeout_pool for t in held)

    def test_pool_respects_limit(self, env):
        def waiter(env):
            yield env.timeout(1.0)

        # Thousands of simultaneous timeouts, none referenced by the
        # test: the drain recycles them but the free list stays capped.
        for _ in range(2 * _POOL_LIMIT):
            env.process(waiter(env))
        env.run()
        assert len(env._timeout_pool) <= _POOL_LIMIT


class TestEventPooling:
    def test_fresh_event_state_after_reuse(self, env):
        def proc(env):
            for i in range(10):
                ev = env.event()
                ev.succeed(i)
                got = yield ev
                assert got == i
                yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed
        assert ev.callbacks == []

    def test_held_event_keeps_value_after_run(self, env):
        ev = env.event()

        def firer(env):
            yield env.timeout(2.0)
            ev.succeed("payload")

        env.process(firer(env))
        env.run()
        assert ev.processed
        assert ev.value == "payload"


class TestStoreEventPooling:
    def test_put_get_pools_refill_and_items_flow_in_order(self, env):
        store = Store(env)
        received = []

        def producer(env):
            for i in range(30):
                yield store.put(i)
                yield env.timeout(1.0)

        def consumer(env):
            for _ in range(30):
                item = yield store.get()
                received.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert received == list(range(30))
        assert len(env._put_pool) >= 1
        assert len(env._get_pool) >= 1

    def test_recycled_store_events_cleared_of_payload(self, env):
        """A pooled StorePut/StoreGet must not pin the last item or
        store alive through the free list."""
        store = Store(env)

        def pair(env):
            yield store.put(["big payload"])
            yield store.get()

        env.process(pair(env))
        env.run()
        for ev in env._put_pool:
            assert ev.item is None and ev.store is None
        for ev in env._get_pool:
            assert ev.store is None


class TestPoolingDeterminism:
    def test_step_driven_run_matches_run(self):
        """step() recycles through the same path as run(); both
        schedulers and both drive styles yield identical traces."""

        def workload(env, trace):
            store = Store(env)

            def producer(env):
                for i in range(10):
                    yield env.timeout(0.5)
                    yield store.put(i)

            def consumer(env):
                for _ in range(10):
                    item = yield store.get()
                    trace.append((env.now, item))

            env.process(producer(env))
            env.process(consumer(env))

        traces = []
        for scheduler in SCHEDULERS:
            for drive in ("run", "step"):
                env = Environment(scheduler=scheduler)
                trace = []
                workload(env, trace)
                if drive == "run":
                    env.run()
                else:
                    while env.pending:
                        env.step()
                traces.append(trace)
        assert all(t == traces[0] for t in traces[1:])
