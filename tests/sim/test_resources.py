"""Unit tests for Resource / PriorityResource / Container."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource


class TestResource:
    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_immediate_grant_when_free(self):
        env = Environment()
        res = Resource(env, capacity=2)
        granted = []

        def proc(env):
            req = res.request()
            yield req
            granted.append(env.now)
            res.release(req)

        env.process(proc(env))
        env.run()
        assert granted == [0]

    def test_mutual_exclusion(self):
        env = Environment()
        res = Resource(env, capacity=1)
        trace = []

        def proc(env, tag):
            with res.request() as req:
                yield req
                trace.append((f"{tag} start", env.now))
                yield env.timeout(2)
                trace.append((f"{tag} end", env.now))

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        assert trace == [
            ("a start", 0),
            ("a end", 2),
            ("b start", 2),
            ("b end", 4),
        ]

    def test_fifo_grant_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def waiter(env, tag, arrive):
            yield env.timeout(arrive)
            with res.request() as req:
                yield req
                order.append(tag)

        env.process(holder(env))
        env.process(waiter(env, "first", 1))
        env.process(waiter(env, "second", 2))
        env.process(waiter(env, "third", 3))
        env.run()
        assert order == ["first", "second", "third"]

    def test_count_and_queue(self):
        env = Environment()
        res = Resource(env, capacity=2)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(5)

        def check(env):
            yield env.timeout(1)
            assert res.count == 2
            assert len(res.queue) == 1

        for _ in range(3):
            env.process(holder(env))
        env.process(check(env))
        env.run()
        assert res.count == 0

    def test_with_block_cancels_queued_request(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def impatient(env):
            with res.request() as req:
                # Give up after 1s without being granted.
                yield req | env.timeout(1)
            # Exiting the with-block must remove the queued request.

        env.process(holder(env))
        env.process(impatient(env))
        env.run()
        assert len(res.queue) == 0

    def test_double_release_is_noop(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def proc(env):
            req = res.request()
            yield req
            res.release(req)
            res.release(req)  # second release must not corrupt state

        env.process(proc(env))
        env.run()
        assert res.count == 0

    def test_wait_time_accounting(self):
        env = Environment()
        res = Resource(env, capacity=1)
        waits = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(4)

        def waiter(env):
            yield env.timeout(1)
            with res.request() as req:
                yield req
                waits.append(req.wait_time)

        env.process(holder(env))
        env.process(waiter(env))
        env.run()
        assert waits == [3]

    def test_utilization(self):
        env = Environment()
        res = Resource(env, capacity=2)

        def proc(env):
            with res.request() as req:
                yield req
                yield env.timeout(5)

        env.process(proc(env))
        env.run(until=10)
        # One of two slots busy for 5 of 10 seconds -> 25%.
        assert res.utilization() == pytest.approx(0.25)


class TestPriorityResource:
    def test_priority_order(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def holder(env):
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(10)

        def waiter(env, tag, priority, arrive):
            yield env.timeout(arrive)
            with res.request(priority=priority) as req:
                yield req
                order.append(tag)

        env.process(holder(env))
        env.process(waiter(env, "low", 5, 1))
        env.process(waiter(env, "high", 1, 2))
        env.process(waiter(env, "mid", 3, 3))
        env.run()
        assert order == ["high", "mid", "low"]

    def test_fifo_within_priority(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def holder(env):
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(10)

        def waiter(env, tag, arrive):
            yield env.timeout(arrive)
            with res.request(priority=5) as req:
                yield req
                order.append(tag)

        env.process(holder(env))
        env.process(waiter(env, "a", 1))
        env.process(waiter(env, "b", 2))
        env.run()
        assert order == ["a", "b"]


class TestContainer:
    def test_init_level(self):
        env = Environment()
        c = Container(env, capacity=100, init=40)
        assert c.level == 40
        assert c.free == 60

    def test_init_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Container(env, capacity=10, init=20)
        with pytest.raises(ValueError):
            Container(env, capacity=0)
        c = Container(env, capacity=10)
        with pytest.raises(ValueError):
            c.put(-1)
        with pytest.raises(ValueError):
            c.get(-1)

    def test_get_blocks_until_put(self):
        env = Environment()
        c = Container(env, capacity=100)
        trace = []

        def consumer(env):
            yield c.get(10)
            trace.append(("got", env.now))

        def producer(env):
            yield env.timeout(3)
            yield c.put(10)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert trace == [("got", 3)]
        assert c.level == 0

    def test_put_blocks_when_full(self):
        env = Environment()
        c = Container(env, capacity=10, init=8)
        trace = []

        def producer(env):
            yield c.put(5)
            trace.append(("put done", env.now))

        def consumer(env):
            yield env.timeout(4)
            yield c.get(6)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert trace == [("put done", 4)]
        assert c.level == 7

    def test_fifo_gets(self):
        env = Environment()
        c = Container(env, capacity=100)
        order = []

        def getter(env, tag, amount, arrive):
            yield env.timeout(arrive)
            yield c.get(amount)
            order.append(tag)

        def putter(env):
            yield env.timeout(10)
            yield c.put(100)

        env.process(getter(env, "big-first", 50, 1))
        env.process(getter(env, "small-second", 1, 2))
        env.process(putter(env))
        env.run()
        assert order == ["big-first", "small-second"]

    def test_cancel_pending_get(self):
        env = Environment()
        c = Container(env, capacity=10)

        def proc(env):
            get = c.get(5)
            yield env.timeout(1)
            get.cancel()
            yield c.put(10)  # should succeed: no getter holds a claim

        env.run(until=env.process(proc(env)))
        assert c.level == 10
