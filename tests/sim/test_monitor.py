"""Tests for the Monitor/Counter/Gauge instrumentation."""

import pytest

from repro.sim import Counter, Environment, Gauge, Monitor


class TestMonitor:
    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Monitor(env, interval=0)
        monitor = Monitor(env, interval=1.0)
        monitor.probe("x", lambda: 0)
        with pytest.raises(ValueError):
            monitor.probe("x", lambda: 0)
        with pytest.raises(KeyError, match="unknown series"):
            monitor.series("y")

    def test_samples_at_interval(self):
        env = Environment()
        state = {"v": 0.0}
        monitor = Monitor(env, interval=1.0)
        monitor.probe("level", lambda: state["v"])
        monitor.start()

        def mutate():
            for i in range(5):
                state["v"] = float(i)
                yield env.timeout(1.0)

        env.process(mutate())
        env.run(until=4.5)
        series = monitor.series("level")
        assert series.times == [0.0, 1.0, 2.0, 3.0, 4.0]
        # The sampler fires before the same-instant mutation (FIFO event
        # order), so each sample sees the previous value.
        assert series.values == [0.0, 0.0, 1.0, 2.0, 3.0]

    def test_start_idempotent_and_stop(self):
        env = Environment()
        monitor = Monitor(env, interval=1.0)
        monitor.probe("x", lambda: 1.0)
        monitor.start()
        monitor.start()
        env.run(until=2.5)
        count = len(monitor.series("x"))
        monitor.stop()
        env.run(until=10)
        assert len(monitor.series("x")) <= count + 1  # one in-flight sample

    def test_series_statistics(self):
        env = Environment()
        monitor = Monitor(env, interval=1.0)
        values = iter([1.0, 3.0, 5.0, 3.0])
        monitor.probe("x", lambda: next(values))
        monitor.start()
        env.run(until=3.5)
        series = monitor.series("x")
        assert series.mean == pytest.approx(3.0)
        assert series.maximum == 5.0
        assert series.minimum == 1.0

    def test_series_window(self):
        env = Environment()
        monitor = Monitor(env, interval=1.0)
        monitor.probe("t", lambda: env.now)
        monitor.start()
        env.run(until=5.5)
        window = monitor.series("t").window(2.0, 4.0)
        assert window.times == [2.0, 3.0]

    def test_empty_series_statistics_raise(self):
        env = Environment()
        monitor = Monitor(env, interval=1.0)
        monitor.probe("x", lambda: 1.0)
        with pytest.raises(ValueError):
            _ = monitor.series("x").mean


class TestSeriesEdgeCases:
    def test_empty_series_all_statistics_raise(self):
        env = Environment()
        monitor = Monitor(env, interval=1.0)
        monitor.probe("x", lambda: 1.0)
        series = monitor.series("x")
        assert len(series) == 0
        for stat in ("mean", "maximum", "minimum"):
            with pytest.raises(ValueError, match="empty"):
                getattr(series, stat)

    def test_window_can_be_empty(self):
        env = Environment()
        monitor = Monitor(env, interval=1.0)
        monitor.probe("t", lambda: env.now)
        monitor.start()
        env.run(until=3.5)
        window = monitor.series("t").window(10.0, 20.0)
        assert len(window) == 0
        assert window.name == "t"

    def test_time_average_single_sample_falls_back_to_mean(self):
        env = Environment()
        monitor = Monitor(env, interval=5.0)
        monitor.probe("x", lambda: 7.0)
        monitor.start()
        env.run(until=1.0)  # only the t=0 sample fires
        series = monitor.series("x")
        assert len(series) == 1
        assert series.time_average() == pytest.approx(7.0)

    def test_time_average_weights_by_spacing(self):
        from repro.sim.monitor import Series

        # 1.0 held for 3s, then 5.0 (right endpoint unweighted in a
        # step average): (1*3) / 3 = 1.0.
        series = Series(name="s", times=[0.0, 3.0], values=[1.0, 5.0])
        assert series.time_average() == pytest.approx(1.0)

    def test_sampling_cadence_with_fractional_interval(self):
        env = Environment()
        monitor = Monitor(env, interval=0.25)
        monitor.probe("x", lambda: 1.0)
        monitor.start()
        env.run(until=1.05)
        times = monitor.series("x").times
        assert times == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])


class TestCounter:
    def test_count_and_rate(self):
        env = Environment()
        counter = Counter(env)

        def proc():
            for _ in range(10):
                yield env.timeout(0.5)
                counter.increment()

        env.run(until=env.process(proc()))
        assert counter.count == 10
        assert counter.rate() == pytest.approx(2.0)

    def test_windowed_rate(self):
        env = Environment()
        counter = Counter(env)

        def proc():
            counter.increment(5)  # burst at t=0
            yield env.timeout(10)
            counter.increment()  # one at t=10

        env.run(until=env.process(proc()))
        assert counter.rate(window=1.0) < counter.rate()

    def test_negative_increment_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Counter(env).increment(-1)

    def test_empty_rate(self):
        env = Environment()
        assert Counter(env).rate() == 0.0

    def test_zero_span_rate_is_zero(self):
        # All marks at t=0: no elapsed time, rate must not divide by zero.
        env = Environment()
        counter = Counter(env)
        counter.increment(3)
        assert counter.rate() == 0.0


class TestGauge:
    def test_time_average(self):
        env = Environment()
        gauge = Gauge(env, initial=0.0)

        def proc():
            yield env.timeout(5)
            gauge.set(10.0)
            yield env.timeout(5)

        env.run(until=env.process(proc()))
        # 0 for 5s, 10 for 5s -> average 5.
        assert gauge.time_average() == pytest.approx(5.0)
        assert gauge.value == 10.0

    def test_add(self):
        env = Environment()
        gauge = Gauge(env, initial=2.0)
        gauge.add(3.0)
        assert gauge.value == 5.0

    def test_time_average_with_zero_span(self):
        # Before any simulated time passes the average is the level itself.
        env = Environment()
        gauge = Gauge(env, initial=4.0)
        assert gauge.time_average() == pytest.approx(4.0)


class TestMonitorRestart:
    def test_restart_after_stop_does_not_double_sample(self):
        # Regression: start() after stop() used to spawn a second
        # sampler process while the first one's pending wake-up was
        # still scheduled, double-sampling every series forever.
        env = Environment()
        monitor = Monitor(env, interval=1.0)
        monitor.probe("x", lambda: 1.0)
        monitor.start()
        env.run(until=2.5)  # samples at 0, 1, 2
        monitor.stop()
        env.run(until=4.5)
        monitor.start()
        env.run(until=6.5)
        times = monitor.series("x").times
        assert times == sorted(times)
        assert len(times) == len(set(times)), f"duplicate sample times: {times}"

    def test_restart_resumes_cadence(self):
        env = Environment()
        monitor = Monitor(env, interval=1.0)
        monitor.probe("x", lambda: env.now)
        monitor.start()
        env.run(until=1.5)  # 0.0, 1.0
        monitor.stop()
        env.run(until=3.2)
        monitor.start()  # resumes at 3.2
        env.run(until=5.5)
        times = monitor.series("x").times
        assert times == pytest.approx([0.0, 1.0, 3.2, 4.2, 5.2])


class TestTimeAverageEnd:
    def test_end_extends_final_sample(self):
        from repro.sim.monitor import Series

        # 1.0 for 3s then 5.0 for 2s: (3 + 10) / 5.
        series = Series(name="s", times=[0.0, 3.0], values=[1.0, 5.0])
        assert series.time_average(end=5.0) == pytest.approx(13.0 / 5.0)

    def test_end_before_last_sample_raises(self):
        from repro.sim.monitor import Series

        series = Series(name="s", times=[0.0, 3.0], values=[1.0, 5.0])
        with pytest.raises(ValueError, match="precedes the last sample"):
            series.time_average(end=2.0)

    def test_single_sample_with_end_weights_fully(self):
        from repro.sim.monitor import Series

        series = Series(name="s", times=[1.0], values=[4.0])
        assert series.time_average(end=3.0) == pytest.approx(4.0)

    def test_single_sample_with_end_at_sample_is_mean(self):
        from repro.sim.monitor import Series

        series = Series(name="s", times=[1.0], values=[4.0])
        assert series.time_average(end=1.0) == pytest.approx(4.0)

    def test_empty_series_raises(self):
        from repro.sim.monitor import Series

        with pytest.raises(ValueError, match="empty"):
            Series(name="s", times=[], values=[]).time_average(end=1.0)
