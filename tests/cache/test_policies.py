"""Tests for the eviction policies (LRU, LFU, S3-FIFO)."""

import pytest

from repro.cache.policies import LfuPolicy, LruPolicy, S3FifoPolicy, make_policy


class TestMakePolicy:
    def test_known_names(self):
        assert isinstance(make_policy("lru"), LruPolicy)
        assert isinstance(make_policy("lfu"), LfuPolicy)
        assert isinstance(make_policy("s3fifo"), S3FifoPolicy)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown eviction policy"):
            make_policy("clock")

    def test_fresh_instances(self):
        a, b = make_policy("lru"), make_policy("lru")
        a.admit("x")
        assert "x" in a
        assert "x" not in b


class TestLru:
    def test_victim_is_least_recently_used(self):
        policy = LruPolicy()
        for key in "abc":
            policy.admit(key)
        policy.touch("a")
        assert policy.victim() == "b"
        assert policy.victim() == "c"
        assert policy.victim() == "a"
        assert policy.victim() is None

    def test_discard(self):
        policy = LruPolicy()
        policy.admit("a")
        policy.admit("b")
        policy.discard("a")
        policy.discard("missing")  # no-op
        assert len(policy) == 1
        assert policy.victim() == "b"

    def test_touch_unknown_is_noop(self):
        for name in ("lru", "lfu", "s3fifo"):
            policy = make_policy(name)
            policy.touch("ghost")
            assert len(policy) == 0
            assert policy.victim() is None


class TestLfu:
    def test_victim_is_least_frequently_used(self):
        policy = LfuPolicy()
        for key in "abc":
            policy.admit(key)
        policy.touch("a")
        policy.touch("a")
        policy.touch("b")
        assert policy.victim() == "c"  # freq 1
        assert policy.victim() == "b"  # freq 2
        assert policy.victim() == "a"  # freq 3

    def test_lru_tie_break_within_frequency(self):
        policy = LfuPolicy()
        policy.admit("old")
        policy.admit("new")
        assert policy.victim() == "old"

    def test_discard_and_readmit_resets_frequency(self):
        policy = LfuPolicy()
        policy.admit("a")
        policy.admit("b")
        policy.touch("a")
        policy.touch("a")
        policy.discard("a")
        policy.admit("a")  # back at frequency 1, younger than b
        assert policy.victim() == "b"

    def test_empty_victim(self):
        assert LfuPolicy().victim() is None


class TestS3Fifo:
    def test_validation(self):
        with pytest.raises(ValueError):
            S3FifoPolicy(small_fraction=0.0)
        with pytest.raises(ValueError):
            S3FifoPolicy(small_fraction=1.5)
        with pytest.raises(ValueError):
            S3FifoPolicy(ghost_multiple=-1)

    def test_one_hit_wonders_evicted_from_small(self):
        policy = S3FifoPolicy()
        for key in ("a", "b", "c"):
            policy.admit(key)
        # Nothing was re-referenced: eviction drains the small queue FIFO.
        assert policy.victim() == "a"
        assert policy.victim() == "b"

    def test_referenced_small_entries_promote_to_main(self):
        policy = S3FifoPolicy()
        policy.admit("hot")
        policy.admit("cold")
        policy.touch("hot")
        # "hot" is promoted to main instead of evicted; "cold" goes first.
        assert policy.victim() == "cold"
        assert "hot" in policy
        assert policy.victim() == "hot"

    def test_ghost_readmission_goes_to_main(self):
        policy = S3FifoPolicy()
        policy.admit("a")
        policy.admit("b")
        assert policy.victim() == "a"  # "a" now remembered in the ghost queue
        policy.admit("a")  # ghost hit: straight to main
        policy.touch("b")
        # Draining: "b" promotes out of small; main holds b (promoted after a).
        order = [policy.victim(), policy.victim()]
        assert set(order) == {"a", "b"}
        assert policy.victim() is None

    def test_second_chance_in_main(self):
        policy = S3FifoPolicy()
        policy.admit("x")
        policy.touch("x")         # promoted to main on the next eviction scan
        policy.admit("y")
        assert policy.victim() == "y"  # small drains first
        policy.touch("x")         # set the reference bit in main
        policy.admit("z")
        assert policy.victim() == "z"
        # "x" had its bit set: it survives one scan, then goes.
        assert policy.victim() == "x"
        assert policy.victim() is None
