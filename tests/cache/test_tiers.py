"""Tests for cache tiers, the GPU tensor tier, and the hierarchy."""

from types import SimpleNamespace

import pytest

from repro.cache.config import CacheConfig
from repro.cache.tiers import CacheHierarchy, CacheStats, CacheTier, GpuTensorCache
from repro.hardware.memory import GpuMemoryPool
from repro.sim import Environment


def advance(env, seconds):
    """Advance simulated time by running a timeout process."""

    def _tick():
        yield env.timeout(seconds)

    env.run(until=env.process(_tick()))


def make_gpu(env, capacity_bytes=1000.0, name="gpu0"):
    """A stand-in GPU exposing just what GpuTensorCache needs."""
    return SimpleNamespace(
        memory=GpuMemoryPool(env, capacity_bytes, name=f"{name}.mem"), name=name
    )


class TestCacheStats:
    def test_hit_rate_with_no_lookups(self):
        assert CacheStats().hit_rate == 0.0

    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == pytest.approx(0.75)

    def test_merge_sums_every_counter(self):
        a = CacheStats(hits=1, misses=2, expirations=1, admissions=3,
                       rejections=1, evictions=2, evicted_bytes=10.0,
                       pressure_evictions=1, pressure_evicted_bytes=5.0,
                       hit_bytes=7.0)
        merged = a.merge(a)
        assert merged.hits == 2
        assert merged.misses == 4
        assert merged.evicted_bytes == 20.0
        assert merged.pressure_evictions == 2
        assert merged.hit_bytes == 14.0

    def test_as_dict_is_prefixed(self):
        out = CacheStats(hits=2, misses=2).as_dict("cache_image_")
        assert out["cache_image_hits"] == 2.0
        assert out["cache_image_hit_rate"] == pytest.approx(0.5)
        assert all(key.startswith("cache_image_") for key in out)


class TestCacheTier:
    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError, match="capacity_bytes"):
            CacheTier(env, "t", capacity_bytes=0)
        with pytest.raises(ValueError, match="ttl_seconds"):
            CacheTier(env, "t", capacity_bytes=100, ttl_seconds=0)
        with pytest.raises(ValueError, match="negative entry size"):
            CacheTier(env, "t", capacity_bytes=100).admit("k", -1)

    def test_miss_then_hit(self):
        tier = CacheTier(Environment(), "t", capacity_bytes=100)
        assert tier.lookup("k") is None
        tier.admit("k", 40)
        entry = tier.lookup("k")
        assert entry is not None and entry.nbytes == 40
        assert tier.stats.misses == 1
        assert tier.stats.hits == 1
        assert tier.stats.hit_bytes == 40.0
        assert tier.used_bytes == 40.0
        assert "k" in tier and len(tier) == 1

    def test_readmit_returns_existing(self):
        tier = CacheTier(Environment(), "t", capacity_bytes=100)
        first = tier.admit("k", 40)
        again = tier.admit("k", 40)
        assert again is first
        assert tier.stats.admissions == 1
        assert tier.used_bytes == 40.0

    def test_oversized_entry_rejected(self):
        tier = CacheTier(Environment(), "t", capacity_bytes=100)
        assert tier.admit("big", 101) is None
        assert tier.stats.rejections == 1
        assert tier.used_bytes == 0.0

    def test_evicts_lru_until_fit(self):
        tier = CacheTier(Environment(), "t", capacity_bytes=100)
        tier.admit("a", 60)
        tier.admit("b", 30)
        tier.admit("c", 50)  # must push out "a" (least recently used)
        assert "a" not in tier
        assert "b" in tier and "c" in tier
        assert tier.used_bytes == 80.0
        assert tier.stats.evictions == 1
        assert tier.stats.evicted_bytes == 60.0
        assert tier.peak_bytes == 90.0

    def test_ttl_expiry_counts_as_miss(self):
        env = Environment()
        tier = CacheTier(env, "t", capacity_bytes=100, ttl_seconds=5.0)
        entry = tier.admit("k", 10)
        advance(env, 6.0)
        assert tier.lookup("k") is None
        assert tier.stats.expirations == 1
        assert tier.stats.misses == 1
        assert entry.resident is False
        assert tier.used_bytes == 0.0

    def test_entry_survives_within_ttl(self):
        env = Environment()
        tier = CacheTier(env, "t", capacity_bytes=100, ttl_seconds=5.0)
        tier.admit("k", 10)
        advance(env, 4.0)
        assert tier.lookup("k") is not None
        assert tier.stats.expirations == 0

    def test_invalidate_pressure_attribution(self):
        tier = CacheTier(Environment(), "t", capacity_bytes=100)
        tier.admit("k", 25)
        tier.invalidate("k", pressure=True)
        assert "k" not in tier
        assert tier.stats.pressure_evictions == 1
        assert tier.stats.pressure_evicted_bytes == 25.0
        assert tier.stats.evictions == 0  # not the tier's own policy
        tier.invalidate("missing")  # no-op

    def test_on_evict_entry_callback(self):
        evicted = []
        tier = CacheTier(
            Environment(), "t", capacity_bytes=100,
            on_evict_entry=lambda entry: evicted.append(entry.key),
        )
        tier.admit("a", 80)
        tier.admit("b", 80)  # evicts "a" via policy
        tier.invalidate("b")
        assert evicted == ["a", "b"]

    def test_peek_does_not_touch_counters(self):
        tier = CacheTier(Environment(), "t", capacity_bytes=100)
        tier.admit("k", 10)
        assert tier.peek("k") is not None
        assert tier.peek("missing") is None
        assert tier.stats.lookups == 0


class TestGpuTensorCache:
    def test_admit_allocates_from_pool(self):
        env = Environment()
        gpu = make_gpu(env, capacity_bytes=1000)
        cache = GpuTensorCache(env, gpu, capacity_bytes=500)
        entry = cache.admit("k", 200)
        assert entry is not None and entry.resident
        assert gpu.memory.used_bytes == 200.0
        assert entry.payload is not None and entry.payload.tag == "cache"

    def test_duplicate_admit_allocates_once(self):
        env = Environment()
        gpu = make_gpu(env)
        cache = GpuTensorCache(env, gpu, capacity_bytes=500)
        first = cache.admit("k", 200)
        assert cache.admit("k", 200) is first
        assert gpu.memory.used_bytes == 200.0

    def test_full_pool_rejects_without_blocking(self):
        env = Environment()
        gpu = make_gpu(env, capacity_bytes=100)
        gpu.memory.try_alloc(80)  # request working set occupies the pool
        cache = GpuTensorCache(env, gpu, capacity_bytes=100)
        assert cache.admit("k", 50) is None
        assert cache.stats.rejections == 1
        assert len(cache) == 0

    def test_tier_policy_eviction_frees_pool_bytes(self):
        env = Environment()
        gpu = make_gpu(env, capacity_bytes=1000)
        cache = GpuTensorCache(env, gpu, capacity_bytes=100)
        cache.admit("a", 60)
        cache.admit("b", 60)  # tier budget forces "a" out
        assert len(cache) == 1
        assert gpu.memory.used_bytes == 60.0  # "a"'s allocation was freed
        assert cache.stats.evictions == 1

    def test_pool_pressure_evicts_cache_entry(self):
        env = Environment()
        gpu = make_gpu(env, capacity_bytes=100)
        cache = GpuTensorCache(env, gpu, capacity_bytes=100)
        entry = cache.admit("k", 60)

        def request_alloc():
            # A request working set that does not fit alongside the
            # cached tensor: the pool's eviction sweep reclaims it.
            allocation = yield from gpu.memory.alloc(80)
            return allocation

        env.run(until=env.process(request_alloc()))
        assert entry.resident is False
        assert len(cache) == 0
        assert cache.stats.pressure_evictions == 1
        assert cache.stats.pressure_evicted_bytes == 60.0
        assert gpu.memory.evictions_by_tag == {"cache": 1}
        assert gpu.memory.used_bytes == 80.0
        assert cache.lookup("k") is None  # plain miss afterwards


class TestCacheHierarchy:
    def test_zero_budgets_build_no_tiers(self):
        env = Environment()
        hierarchy = CacheHierarchy(env, CacheConfig(), [make_gpu(env)])
        assert hierarchy.image is None
        assert hierarchy.result is None
        assert hierarchy.tensor == []
        assert hierarchy.lookup_image("cid") is None
        assert hierarchy.lookup_tensor(0, "key") is None
        assert hierarchy.lookup_result("key") is None
        assert hierarchy.stats_dict() == {}

    def test_empty_key_is_a_silent_noop(self):
        env = Environment()
        config = CacheConfig(image_cache_bytes=100, tensor_cache_bytes=100,
                             result_cache_bytes=100)
        hierarchy = CacheHierarchy(env, config, [make_gpu(env)])
        assert hierarchy.lookup_image("") is None
        assert hierarchy.admit_image("", 10) is None
        assert hierarchy.lookup_tensor(0, "") is None
        assert hierarchy.lookup_result("") is None
        assert hierarchy.image.stats.lookups == 0
        assert hierarchy.tensor[0].stats.lookups == 0
        assert hierarchy.result.stats.lookups == 0

    def test_tensor_tiers_are_per_gpu(self):
        env = Environment()
        gpus = [make_gpu(env, name="gpu0"), make_gpu(env, name="gpu1")]
        config = CacheConfig(tensor_cache_bytes=500)
        hierarchy = CacheHierarchy(env, config, gpus)
        assert len(hierarchy.tensor) == 2
        hierarchy.admit_tensor(0, "k", 100)
        assert hierarchy.lookup_tensor(0, "k") is not None
        assert hierarchy.lookup_tensor(1, "k") is None
        assert gpus[0].memory.used_bytes == 100.0
        assert gpus[1].memory.used_bytes == 0.0

    def test_stats_dict_keys(self):
        env = Environment()
        config = CacheConfig(image_cache_bytes=100, tensor_cache_bytes=100,
                             result_cache_bytes=100)
        hierarchy = CacheHierarchy(env, config, [make_gpu(env)])
        hierarchy.admit_image("cid", 10)
        hierarchy.lookup_image("cid")
        hierarchy.admit_tensor(0, "k", 10)
        out = hierarchy.stats_dict()
        assert out["cache_image_hits"] == 1.0
        assert out["cache_image_hit_rate"] == 1.0
        assert out["cache_tensor_admissions"] == 1.0
        assert out["cache_tensor_resident_bytes"] == 10.0
        assert "cache_result_hit_rate" in out
