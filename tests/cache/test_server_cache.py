"""Server-integration tests for the caching subsystem.

The benchmark (``benchmarks/test_ext_caching.py``) runs the expensive
figure-grade sweeps; these tests pin down the wiring with small runs:
construction/gating rules, ``served_from`` accounting, per-tier hits,
and the zero-cost-off guarantee at a cheap scale.
"""

import pytest

from repro.cache import CacheConfig
from repro.core import ServerConfig
from repro.core.config import (
    CPU_PREPROCESS,
    MODE_INFERENCE_ONLY,
    MODE_PREPROCESS_ONLY,
)
from repro.core.server import InferenceServer
from repro.hardware import ServerNode
from repro.serving import ExperimentConfig, run_experiment
from repro.sim import Environment
from repro.vision import ImageNetLikeDataset, ZipfDataset

MIB = float(1024 * 1024)
LOAD = dict(concurrency=16, warmup_requests=50, measure_requests=200, seed=0)


def _zipf(skew=1.2, catalog_size=50):
    return ZipfDataset(ImageNetLikeDataset(), catalog_size=catalog_size, skew=skew)


def _make_server(config):
    env = Environment()
    return InferenceServer(env, ServerNode(env), config)


class TestConstructionGating:
    def test_no_cache_config_means_no_hierarchy(self):
        server = _make_server(ServerConfig(model="resnet-50"))
        assert server.cache is None

    def test_enabled_config_builds_hierarchy(self):
        config = ServerConfig(
            model="resnet-50", cache=CacheConfig(image_cache_bytes=64 * MIB)
        )
        server = _make_server(config)
        assert server.cache is not None
        assert server.cache.image is not None

    def test_disabled_or_empty_config_builds_nothing(self):
        for cache in (
            CacheConfig(enabled=False, image_cache_bytes=64 * MIB),
            CacheConfig(),  # all budgets zero
        ):
            server = _make_server(ServerConfig(model="resnet-50", cache=cache))
            assert server.cache is None

    def test_stage_isolation_modes_never_cache(self):
        cache = CacheConfig(image_cache_bytes=64 * MIB, result_cache_bytes=1 * MIB)
        for mode in (MODE_PREPROCESS_ONLY, MODE_INFERENCE_ONLY):
            server = _make_server(
                ServerConfig(model="resnet-50", mode=mode, cache=cache)
            )
            assert server.cache is None

    def test_server_config_validates_cache(self):
        with pytest.raises(ValueError, match="policy"):
            CacheConfig(policy="clock")
        with pytest.raises(ValueError, match="image_cache_bytes"):
            CacheConfig(image_cache_bytes=-1)


class TestEndToEndAccounting:
    def test_result_tier_hits_are_counted(self):
        result = run_experiment(
            ExperimentConfig(
                server=ServerConfig(
                    model="resnet-50",
                    cache=CacheConfig(result_cache_bytes=4 * MIB),
                ),
                dataset=_zipf(),
                **LOAD,
            )
        )
        assert result.metrics.cache_hits.get("result", 0) > 0
        assert 0.0 < result.metrics.cache_hit_fraction <= 1.0
        exported = result.metrics.to_dict()
        assert exported["cache_hits_result"] == result.metrics.cache_hits["result"]
        assert exported["cache_result_hit_rate"] > 0.0

    def test_image_tier_serves_cpu_preprocess_path(self):
        result = run_experiment(
            ExperimentConfig(
                server=ServerConfig(
                    model="resnet-50",
                    preprocess_device=CPU_PREPROCESS,
                    cache=CacheConfig(image_cache_bytes=256 * MIB),
                ),
                dataset=_zipf(),
                **LOAD,
            )
        )
        assert result.metrics.cache_hits.get("image", 0) > 0
        assert result.metrics.to_dict()["cache_image_hits"] > 0.0

    def test_tensor_tier_serves_hits_without_result_tier(self):
        result = run_experiment(
            ExperimentConfig(
                server=ServerConfig(
                    model="resnet-50",
                    cache=CacheConfig(
                        image_cache_bytes=128 * MIB, tensor_cache_bytes=64 * MIB
                    ),
                ),
                dataset=_zipf(),
                **LOAD,
            )
        )
        assert result.metrics.cache_hits.get("tensor", 0) > 0
        assert "result" not in result.metrics.cache_hits
        exported = result.metrics.to_dict()
        assert exported["cache_tensor_hit_rate"] > 0.0
        assert "cache_tensor_resident_bytes" in exported

    def test_unique_stream_never_hits(self):
        # Without content identity (plain ImageNet-like stream) every
        # lookup key is empty: the cache must stay silent.
        result = run_experiment(
            ExperimentConfig(
                server=ServerConfig(
                    model="resnet-50",
                    cache=CacheConfig(
                        image_cache_bytes=64 * MIB, result_cache_bytes=1 * MIB
                    ),
                ),
                dataset=ImageNetLikeDataset(),
                **LOAD,
            )
        )
        assert result.metrics.cache_hits == {}
        assert result.metrics.cache_hit_fraction == 0.0

    def test_off_path_is_bit_identical_small(self):
        dataset = _zipf()
        base = run_experiment(
            ExperimentConfig(server=ServerConfig(model="resnet-50"),
                             dataset=dataset, **LOAD)
        )
        off = run_experiment(
            ExperimentConfig(
                server=ServerConfig(
                    model="resnet-50",
                    cache=CacheConfig(enabled=False, tensor_cache_bytes=64 * MIB),
                ),
                dataset=dataset,
                **LOAD,
            )
        )
        assert off.metrics == base.metrics
        assert not any(key.startswith("cache_") for key in base.metrics.to_dict())
