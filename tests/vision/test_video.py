"""Tests for the compressed-video cost model."""

import pytest

from repro.hardware import DEFAULT_CALIBRATION
from repro.sim import RandomStreams
from repro.vision import (
    Video,
    VideoClipDataset,
    keyframe_sample_indices,
    uniform_sample_indices,
    video_decode_cost,
)

CAL = DEFAULT_CALIBRATION


def clip(duration=10.0, gop=48):
    return Video(width=1280, height=720, fps=30, duration_seconds=duration,
                 bitrate_bps=4e6, gop_frames=gop)


class TestVideo:
    def test_derived_quantities(self):
        video = clip(duration=10.0)
        assert video.frame_count == 300
        assert video.compressed_bytes == int(4e6 * 10 / 8)
        assert video.pixels_per_frame == 1280 * 720

    def test_validation(self):
        with pytest.raises(ValueError):
            Video(width=0, height=720, fps=30, duration_seconds=1, bitrate_bps=1e6)
        with pytest.raises(ValueError):
            Video(width=10, height=10, fps=0, duration_seconds=1, bitrate_bps=1e6)
        with pytest.raises(ValueError):
            Video(width=10, height=10, fps=30, duration_seconds=1, bitrate_bps=0)
        with pytest.raises(ValueError):
            Video(width=10, height=10, fps=30, duration_seconds=1, bitrate_bps=1e6,
                  gop_frames=0)

    def test_frame_as_image(self):
        video = clip()
        image = video.frame_as_image(3)
        assert image.width == 1280
        assert image.compressed_bytes >= 256


class TestSampling:
    def test_uniform_count_and_bounds(self):
        video = clip()
        samples = uniform_sample_indices(video, 8)
        assert len(samples) == 8
        indices = [s.index for s in samples]
        assert indices == sorted(indices)
        assert all(0 <= i < video.frame_count for i in indices)

    def test_uniform_capped_at_frame_count(self):
        video = clip(duration=0.2)  # 6 frames
        assert len(uniform_sample_indices(video, 100)) == video.frame_count

    def test_keyframes_are_gop_aligned(self):
        video = clip()
        for sample in keyframe_sample_indices(video, 4):
            assert sample.index % video.gop_frames == 0
            assert sample.frames_to_decode == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_sample_indices(clip(), 0)
        with pytest.raises(ValueError):
            keyframe_sample_indices(clip(), 0)


class TestDecodeCost:
    def test_gop_amplification(self):
        """Uniform samples land mid-GOP: decoding must cover lead-ins."""
        video = clip()
        cost = video_decode_cost(video, uniform_sample_indices(video, 8), CAL)
        assert cost.decoded_frames > cost.sampled_frames
        assert cost.amplification > 2

    def test_keyframe_sampling_is_much_cheaper(self):
        video = clip()
        uniform = video_decode_cost(video, uniform_sample_indices(video, 8), CAL)
        keyed = video_decode_cost(video, keyframe_sample_indices(video, 8), CAL)
        assert keyed.total_seconds < uniform.total_seconds / 3
        assert keyed.amplification == pytest.approx(1.0)

    def test_more_samples_cost_more(self):
        video = clip()
        few = video_decode_cost(video, uniform_sample_indices(video, 4), CAL)
        many = video_decode_cost(video, uniform_sample_indices(video, 16), CAL)
        assert many.total_seconds > few.total_seconds

    def test_shared_gop_leadins_not_double_counted(self):
        """Two samples in one GOP decode the span once."""
        video = clip(gop=300)  # single GOP
        dense = video_decode_cost(video, uniform_sample_indices(video, 16), CAL)
        assert dense.decoded_frames <= video.frame_count

    def test_zero_samples(self):
        video = clip()
        cost = video_decode_cost(video, [], CAL)
        assert cost.total_seconds == 0.0
        assert cost.amplification == 0.0


class TestVideoClipDataset:
    def test_deterministic(self):
        a = VideoClipDataset().sample(RandomStreams(5).stream("v"))
        b = VideoClipDataset().sample(RandomStreams(5).stream("v"))
        assert a.duration_seconds == b.duration_seconds

    def test_duration_jitter(self):
        streams = RandomStreams(1)
        ds = VideoClipDataset(mean_duration_seconds=8.0)
        rng = streams.stream("v")
        durations = {ds.sample(rng).duration_seconds for _ in range(10)}
        assert len(durations) > 1
        assert all(4.0 <= d <= 12.0 for d in durations)

    def test_validation(self):
        with pytest.raises(ValueError):
            VideoClipDataset(mean_duration_seconds=0)
