"""Unit tests for workload datasets."""

import pytest

from repro.sim import RandomStreams
from repro.vision import (
    FixedImageDataset,
    ImageNetLikeDataset,
    MEDIUM_IMAGE,
    MixtureDataset,
    SMALL_IMAGE,
    VideoFrameDataset,
    ZipfDataset,
    reference_dataset,
)


class TestFixedImageDataset:
    def test_always_same_image(self):
        ds = FixedImageDataset(MEDIUM_IMAGE)
        streams = RandomStreams(0)
        images = list(ds.iterate(10, streams))
        assert all(img is MEDIUM_IMAGE for img in images)

    def test_reference_lookup(self):
        assert reference_dataset("medium").image is MEDIUM_IMAGE
        with pytest.raises(KeyError, match="unknown reference size"):
            reference_dataset("huge")


class TestMixtureDataset:
    def test_validation(self):
        with pytest.raises(ValueError):
            MixtureDataset([])
        with pytest.raises(ValueError):
            MixtureDataset([SMALL_IMAGE], weights=[1.0, 2.0])

    def test_samples_from_members(self):
        ds = MixtureDataset([SMALL_IMAGE, MEDIUM_IMAGE])
        streams = RandomStreams(1)
        seen = {img.name for img in ds.iterate(50, streams)}
        assert seen == {"small", "medium"}

    def test_weights_bias_sampling(self):
        ds = MixtureDataset([SMALL_IMAGE, MEDIUM_IMAGE], weights=[0.99, 0.01])
        streams = RandomStreams(2)
        images = list(ds.iterate(200, streams))
        small_count = sum(1 for img in images if img.name == "small")
        assert small_count > 150


class TestImageNetLikeDataset:
    def test_deterministic_for_seed(self):
        a = [
            (img.width, img.height, img.compressed_bytes)
            for img in ImageNetLikeDataset().iterate(30, RandomStreams(7))
        ]
        b = [
            (img.width, img.height, img.compressed_bytes)
            for img in ImageNetLikeDataset().iterate(30, RandomStreams(7))
        ]
        assert a == b

    def test_different_seed_differs(self):
        a = [img.width for img in ImageNetLikeDataset().iterate(30, RandomStreams(1))]
        b = [img.width for img in ImageNetLikeDataset().iterate(30, RandomStreams(2))]
        assert a != b

    def test_statistics_are_imagenet_like(self):
        """Mean file size ~110 kB, dominated by ~500px images."""
        images = list(ImageNetLikeDataset().iterate(2000, RandomStreams(3)))
        mean_bytes = sum(img.compressed_bytes for img in images) / len(images)
        assert 50_000 < mean_bytes < 400_000
        typical = sum(1 for img in images if 300 <= img.width <= 640)
        assert typical / len(images) > 0.7

    def test_has_a_large_tail(self):
        images = list(ImageNetLikeDataset().iterate(2000, RandomStreams(4)))
        assert any(img.width >= 2000 for img in images)


class TestZipfDataset:
    def test_validation(self):
        with pytest.raises(ValueError, match="catalog_size"):
            ZipfDataset(ImageNetLikeDataset(), catalog_size=0)
        with pytest.raises(ValueError, match="skew"):
            ZipfDataset(ImageNetLikeDataset(), catalog_size=10, skew=-0.5)

    def test_catalog_is_content_addressed_and_deterministic(self):
        a = ZipfDataset(ImageNetLikeDataset(), catalog_size=20, skew=1.0, seed=3)
        b = ZipfDataset(ImageNetLikeDataset(), catalog_size=20, skew=1.0, seed=3)
        assert all(img.content_id for img in a.catalog)
        assert len({img.content_id for img in a.catalog}) == 20
        assert [img.content_id for img in a.catalog] == [
            img.content_id for img in b.catalog
        ]
        assert [(i.width, i.height) for i in a.catalog] == [
            (i.width, i.height) for i in b.catalog
        ]

    def test_different_seed_changes_catalog(self):
        a = ZipfDataset(ImageNetLikeDataset(), catalog_size=20, seed=0)
        b = ZipfDataset(ImageNetLikeDataset(), catalog_size=20, seed=1)
        assert {img.content_id for img in a.catalog}.isdisjoint(
            {img.content_id for img in b.catalog}
        )

    def test_weights_are_zipf(self):
        ds = ZipfDataset(ImageNetLikeDataset(), catalog_size=100, skew=1.0)
        assert ds.weight(1) == pytest.approx(2 * ds.weight(2))
        assert ds.weight(1) == pytest.approx(10 * ds.weight(10))
        assert sum(ds.weight(k) for k in range(1, 101)) == pytest.approx(1.0)
        with pytest.raises(ValueError, match="rank"):
            ds.weight(0)
        with pytest.raises(ValueError, match="rank"):
            ds.weight(101)

    def test_top_fraction(self):
        ds = ZipfDataset(ImageNetLikeDataset(), catalog_size=100, skew=1.2)
        assert ds.top_fraction(0) == 0.0
        assert ds.top_fraction(100) == pytest.approx(1.0)
        assert ds.top_fraction(500) == pytest.approx(1.0)  # clamped
        assert ds.top_fraction(10) > 10 / 100  # skew concentrates mass
        uniform = ZipfDataset(ImageNetLikeDataset(), catalog_size=100, skew=0.0)
        assert uniform.top_fraction(10) == pytest.approx(0.1)

    def test_sampling_matches_popularity(self):
        ds = ZipfDataset(ImageNetLikeDataset(), catalog_size=50, skew=1.2)
        images = list(ds.iterate(3000, RandomStreams(5)))
        top_id = ds.catalog[0].content_id
        observed_top = sum(1 for img in images if img.content_id == top_id) / 3000
        assert observed_top == pytest.approx(ds.weight(1), rel=0.2)
        assert all(img.content_id for img in images)

    def test_zero_skew_is_roughly_uniform(self):
        ds = ZipfDataset(ImageNetLikeDataset(), catalog_size=10, skew=0.0)
        images = list(ds.iterate(5000, RandomStreams(6)))
        counts = {}
        for img in images:
            counts[img.content_id] = counts.get(img.content_id, 0) + 1
        assert len(counts) == 10
        assert max(counts.values()) < 2 * min(counts.values())


class TestVideoFrameDataset:
    def test_fixed_resolution(self):
        ds = VideoFrameDataset(width=1280, height=720)
        streams = RandomStreams(0)
        frames = list(ds.iterate(5, streams))
        assert all(f.width == 1280 and f.height == 720 for f in frames)
