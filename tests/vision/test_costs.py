"""Unit tests for JPEG and preprocessing cost models."""

import pytest

from repro.hardware import DEFAULT_CALIBRATION
from repro.vision import (
    LARGE_IMAGE,
    MEDIUM_IMAGE,
    SMALL_IMAGE,
    cpu_decode_cost,
    cpu_preprocess_cost,
    estimate_compressed_bytes,
    gpu_decode_cost,
    gpu_preprocess_cost,
)

CAL = DEFAULT_CALIBRATION


class TestDecodeCosts:
    def test_cpu_cost_monotonic_in_image_size(self):
        small = cpu_decode_cost(SMALL_IMAGE, CAL).total_seconds
        medium = cpu_decode_cost(MEDIUM_IMAGE, CAL).total_seconds
        large = cpu_decode_cost(LARGE_IMAGE, CAL).total_seconds
        assert small < medium < large

    def test_gpu_cost_monotonic_in_image_size(self):
        small = gpu_decode_cost(SMALL_IMAGE, CAL).total_seconds
        medium = gpu_decode_cost(MEDIUM_IMAGE, CAL).total_seconds
        large = gpu_decode_cost(LARGE_IMAGE, CAL).total_seconds
        assert small < medium < large

    def test_gpu_kernels_much_faster_than_cpu_for_large(self):
        cpu = cpu_decode_cost(LARGE_IMAGE, CAL).total_seconds
        gpu = gpu_decode_cost(LARGE_IMAGE, CAL).kernel_seconds
        assert gpu < cpu / 10

    def test_entropy_scales_with_bytes(self):
        cost = cpu_decode_cost(MEDIUM_IMAGE, CAL)
        expected = MEDIUM_IMAGE.compressed_bytes * CAL.cpu.decode_seconds_per_byte
        assert cost.entropy_seconds == pytest.approx(expected)


class TestPreprocessCosts:
    def test_cpu_components_sum(self):
        cost = cpu_preprocess_cost(MEDIUM_IMAGE, 224, CAL)
        assert cost.core_seconds == pytest.approx(
            cost.request_overhead_seconds
            + cost.decode_seconds
            + cost.resize_seconds
            + cost.normalize_seconds
        )

    def test_normalize_depends_only_on_output(self):
        a = cpu_preprocess_cost(SMALL_IMAGE, 224, CAL)
        b = cpu_preprocess_cost(LARGE_IMAGE, 224, CAL)
        assert a.normalize_seconds == pytest.approx(b.normalize_seconds)

    def test_gpu_staging_scales_with_compressed_bytes(self):
        a = gpu_preprocess_cost(SMALL_IMAGE, 224, CAL)
        b = gpu_preprocess_cost(LARGE_IMAGE, 224, CAL)
        ratio = b.staging_seconds / a.staging_seconds
        expected = LARGE_IMAGE.compressed_bytes / SMALL_IMAGE.compressed_bytes
        assert ratio == pytest.approx(expected)

    def test_cpu_beats_gpu_launch_for_small_image(self):
        """Paper Sec. 4.2: CPU preprocessing wins for small images."""
        cpu = cpu_preprocess_cost(SMALL_IMAGE, 224, CAL).core_seconds
        gpu_total = (
            gpu_preprocess_cost(SMALL_IMAGE, 224, CAL).total_seconds
            + CAL.gpu.preprocess_launch_seconds
        )
        assert cpu < gpu_total

    def test_gpu_beats_cpu_for_large_image(self):
        cpu = cpu_preprocess_cost(LARGE_IMAGE, 224, CAL).core_seconds
        gpu_total = (
            gpu_preprocess_cost(LARGE_IMAGE, 224, CAL).total_seconds
            + CAL.gpu.preprocess_launch_seconds
        )
        assert gpu_total < cpu


class TestJpegSizeEstimate:
    def test_quality_bounds(self):
        with pytest.raises(ValueError):
            estimate_compressed_bytes(100, 100, quality=0)
        with pytest.raises(ValueError):
            estimate_compressed_bytes(100, 100, quality=101)

    def test_higher_quality_is_bigger(self):
        low = estimate_compressed_bytes(640, 480, quality=60)
        high = estimate_compressed_bytes(640, 480, quality=95)
        assert high > low

    def test_floor_for_tiny_images(self):
        assert estimate_compressed_bytes(8, 8, quality=50) >= 256

    def test_plausible_medium_size(self):
        """A 500x375 q~87 photo should be on the order of the paper's
        121 kB medium reference image."""
        size = estimate_compressed_bytes(500, 375, quality=87)
        assert 60_000 < size < 200_000
