"""Unit tests for image descriptors and reference sizes."""

import pytest

from repro.vision import (
    LARGE_IMAGE,
    MEDIUM_IMAGE,
    REFERENCE_IMAGES,
    SMALL_IMAGE,
    Image,
    Tensor,
)


class TestImage:
    def test_properties(self):
        img = Image(width=100, height=50, compressed_bytes=1000)
        assert img.pixels == 5000
        assert img.decoded_bytes == 15000
        assert img.compression_ratio == 15.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Image(width=0, height=10, compressed_bytes=100)
        with pytest.raises(ValueError):
            Image(width=10, height=-1, compressed_bytes=100)
        with pytest.raises(ValueError):
            Image(width=10, height=10, compressed_bytes=0)

    def test_str(self):
        assert "small" in str(SMALL_IMAGE)

    def test_paper_reference_sizes(self):
        """Footnote 3 of the paper, reproduced exactly."""
        assert (SMALL_IMAGE.width, SMALL_IMAGE.height) == (60, 70)
        assert SMALL_IMAGE.compressed_bytes == 4 * 1024
        assert (MEDIUM_IMAGE.width, MEDIUM_IMAGE.height) == (500, 375)
        assert MEDIUM_IMAGE.compressed_bytes == 121 * 1024
        assert (LARGE_IMAGE.width, LARGE_IMAGE.height) == (3564, 2880)
        assert LARGE_IMAGE.compressed_bytes == 9528 * 1024
        assert set(REFERENCE_IMAGES) == {"small", "medium", "large"}

    def test_decoded_raw_is_about_5x_compressed_for_medium(self):
        """The Fig. 7 TinyViT root cause: raw ~5x larger than JPEG."""
        ratio = (224 * 224 * 3 * 4) / MEDIUM_IMAGE.compressed_bytes
        assert 4 <= ratio <= 6


class TestTensor:
    def test_sizes(self):
        t = Tensor((3, 224, 224))
        assert t.elements == 3 * 224 * 224
        assert t.nbytes == t.elements * 4

    def test_with_batch(self):
        t = Tensor((3, 224, 224)).with_batch(8)
        assert t.shape == (8, 3, 224, 224)

    def test_validation(self):
        with pytest.raises(ValueError):
            Tensor(())
        with pytest.raises(ValueError):
            Tensor((3, 0))
        with pytest.raises(ValueError):
            Tensor((3,), dtype_bytes=0)
