"""Tests for the video-classification serving pipeline."""

import pytest

from repro.apps import VideoClassificationServer, VideoServerConfig
from repro.core import MetricsCollector
from repro.hardware import ServerNode
from repro.serving.client import ClosedLoopClient
from repro.sim import Environment, RandomStreams
from repro.vision import VideoClipDataset


def serve_one_clip(config=None, duration=8.0):
    env = Environment()
    node = ServerNode(env)
    server = VideoClassificationServer(env, node, config or VideoServerConfig())
    ds = VideoClipDataset(mean_duration_seconds=duration)
    clip = ds.sample(RandomStreams(0).stream("v"))
    request = env.run(until=server.submit(clip))
    return request


class TestValidation:
    def test_bad_config(self):
        with pytest.raises(ValueError):
            VideoServerConfig(frames_per_clip=0)
        with pytest.raises(ValueError):
            VideoServerConfig(decode_workers=0)
        with pytest.raises(ValueError):
            VideoServerConfig(max_queue_delay_seconds=-1)

    def test_with_(self):
        config = VideoServerConfig(frames_per_clip=4)
        assert config.with_overrides(model="resnet-50").frames_per_clip == 4


class TestSingleClip:
    def test_clip_completes_with_spans(self):
        request = serve_one_clip()
        assert request.completion_time is not None
        for span in ("frontend", "preprocess", "inference", "postprocess"):
            assert span in request.spans

    def test_video_serving_is_preprocessing_dominated(self):
        """The paper's Sec. 1 motivation: video decode dwarfs the DNN."""
        request = serve_one_clip()
        assert request.spans["preprocess"] > 10 * request.spans["inference"]
        assert request.span_fraction("preprocess") > 0.8

    def test_more_frames_cost_more(self):
        few = serve_one_clip(VideoServerConfig(frames_per_clip=2))
        many = serve_one_clip(VideoServerConfig(frames_per_clip=16))
        assert many.latency > few.latency

    def test_longer_clips_cost_more(self):
        short = serve_one_clip(duration=4.0)
        long = serve_one_clip(duration=16.0)
        assert long.latency > short.latency


class TestThroughput:
    def test_closed_loop_serving(self):
        env = Environment()
        node = ServerNode(env)
        collector = MetricsCollector()
        state = {"n": 0}
        done_ev = env.event()

        def on_complete(_r):
            state["n"] += 1
            if state["n"] == 120:
                done_ev.succeed()

        server = VideoClassificationServer(
            env, node, VideoServerConfig(frames_per_clip=8),
            metrics=collector, on_complete=on_complete,
        )
        collector.arm(0.0)
        client = ClosedLoopClient(
            env, server, VideoClipDataset(mean_duration_seconds=4.0), 32, RandomStreams(0)
        )

        def ctrl():
            yield done_ev | env.timeout(120)
            collector.disarm(env.now)
            client.stop()

        env.run(until=env.process(ctrl()))
        metrics = collector.finalize()
        assert metrics.completed >= 100
        assert metrics.throughput > 10  # clips/s
        # Frames batch (within and across clips) on the GPU.
        assert metrics.mean_batch_size > 2
