"""Integration tests for the multi-DNN face pipeline (Sec. 4.7)."""

import pytest

from repro.apps import FacePipeline, FacePipelineConfig
from repro.core import MetricsCollector
from repro.hardware import ServerNode
from repro.serving import run_face_pipeline
from repro.sim import Environment, RandomStreams
from repro.vision import VideoFrameDataset


def single_frame(broker, faces):
    env = Environment()
    node = ServerNode(env)
    pipeline = FacePipeline(
        env, node, FacePipelineConfig(broker=broker, faces_per_frame=faces), RandomStreams(0)
    )
    frame = VideoFrameDataset().sample(RandomStreams(0).stream("x"))
    request = env.run(until=pipeline.submit(frame))
    return request


class TestValidation:
    def test_bad_broker(self):
        with pytest.raises(ValueError):
            FacePipelineConfig(broker="zeromq")

    def test_bad_faces(self):
        with pytest.raises(ValueError):
            FacePipelineConfig(faces_per_frame=-1)

    def test_with_(self):
        config = FacePipelineConfig(broker="kafka")
        assert config.with_overrides(faces_per_frame=9).broker == "kafka"


class TestSingleFrame:
    @pytest.mark.parametrize("broker", ["kafka", "redis", "fused"])
    def test_frame_completes(self, broker):
        request = single_frame(broker, faces=5)
        assert request.completion_time is not None
        assert request.spans["inference"] > 0  # detection
        assert request.spans["identify"] > 0

    @pytest.mark.parametrize("broker", ["kafka", "redis", "fused"])
    def test_zero_faces_frame_completes(self, broker):
        request = single_frame(broker, faces=0)
        assert request.completion_time is not None
        assert "identify" not in request.spans

    def test_fused_has_no_broker_span(self):
        request = single_frame("fused", faces=5)
        assert "broker" not in request.spans

    def test_kafka_broker_span_dominates(self):
        """Paper: Kafka takes ~71% of zero-load latency at 25 faces."""
        request = single_frame("kafka", faces=25)
        assert request.span_fraction("broker") > 0.5

    def test_redis_broker_span_small(self):
        """Paper: Redis takes ~6% of zero-load latency at 25 faces."""
        request = single_frame("redis", faces=25)
        assert request.span_fraction("broker") < 0.15

    def test_more_faces_longer_latency(self):
        few = single_frame("redis", faces=2)
        many = single_frame("redis", faces=25)
        assert many.latency > few.latency


class TestThroughputRelations:
    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for broker in ("kafka", "redis", "fused"):
            for faces in (1, 25):
                result = run_face_pipeline(
                    FacePipelineConfig(broker=broker, faces_per_frame=faces),
                    concurrency=96,
                    warmup_requests=100,
                    measure_requests=500,
                )
                out[(broker, faces)] = result.throughput
        return out

    def test_fused_wins_at_one_face(self, results):
        assert results[("fused", 1)] > results[("redis", 1)]
        assert results[("fused", 1)] > results[("kafka", 1)]

    def test_redis_beats_kafka_at_high_fanout(self, results):
        """Paper: +125% (2.25x) throughput at 25 faces/frame."""
        ratio = results[("redis", 25)] / results[("kafka", 25)]
        assert ratio > 1.7

    def test_redis_beats_fused_at_high_fanout(self, results):
        assert results[("redis", 25)] > results[("fused", 25)]

    def test_throughput_decreases_with_fanout(self, results):
        for broker in ("kafka", "redis", "fused"):
            assert results[(broker, 25)] < results[(broker, 1)]
