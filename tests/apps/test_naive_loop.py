"""Tests for the un-served baseline loop (Fig. 3 rungs 1-3)."""

import pytest

from repro.apps import NaiveLoopConfig, run_naive_loop
from repro.vision import reference_dataset


def run(preprocess, **kwargs):
    config = NaiveLoopConfig(preprocess=preprocess, batches=15, **kwargs)
    return run_naive_loop(config, reference_dataset("medium"))


class TestValidation:
    def test_bad_preprocess(self):
        with pytest.raises(ValueError):
            NaiveLoopConfig(preprocess="fpga")

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            NaiveLoopConfig(batch_size=0)
        with pytest.raises(ValueError):
            NaiveLoopConfig(batches=0)


class TestLadderShape:
    """Paper Fig. 3: python loop < DALI-CPU << DALI-GPU."""

    def test_dali_cpu_slightly_better_than_python(self):
        python = run("python").throughput
        dali_cpu = run("dali-cpu").throughput
        assert dali_cpu > python
        assert dali_cpu < python * 1.25  # the paper's gain was only ~3.5%

    def test_dali_gpu_much_better(self):
        python = run("python").throughput
        dali_gpu = run("dali-gpu").throughput
        assert dali_gpu > 1.5 * python  # paper: 431 -> 842 (~2x)

    def test_preprocess_dominates_python_loop(self):
        result = run("python")
        assert result.preprocess_seconds_per_batch > result.inference_seconds_per_batch

    def test_gpu_preprocess_removes_input_transfer(self):
        cpu = run("python")
        gpu = run("dali-gpu")
        assert gpu.transfer_seconds_per_batch < cpu.transfer_seconds_per_batch

    def test_throughput_accounting(self):
        result = run("python")
        expected = 64 / result.seconds_per_batch
        assert result.throughput == pytest.approx(expected)

    def test_deterministic(self):
        assert run("python").throughput == pytest.approx(run("python").throughput)
