"""Subprocess smoke test: ``python -m repro serve`` end to end.

Boots the live server as a real subprocess, sends HTTP requests with
urllib, scrapes ``/metrics`` through the telemetry round-trip parser,
then delivers SIGINT and asserts a graceful drain and a zero exit —
the same sequence the CI live-serve smoke job runs.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.telemetry.exposition import parse_prometheus_text

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


@pytest.fixture()
def serve_proc():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--model", "tinyvit-5m", "--grace-seconds", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=REPO_ROOT,
    )
    try:
        yield proc
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def _await_ready(proc, timeout=60.0):
    """Read stdout until the ready line; return the bound port."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"serve exited before ready (rc={proc.poll()})")
        if "http://" in line:
            return int(line.split("http://", 1)[1].split("/")[0].split(":")[1].split()[0])
    raise AssertionError("timed out waiting for the ready line")


def _get(port, path, timeout=15):
    return urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout).read()


def test_serve_post_scrape_sigint(serve_proc):
    port = _await_ready(serve_proc)

    # POST a couple of inference requests.
    for index in range(3):
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/v1/infer",
            data=json.dumps({"size": "small", "key": index}).encode(),
            headers={"Content-Type": "application/json"},
        )
        body = json.loads(urllib.request.urlopen(request, timeout=20).read())
        assert body["outcome"] == "ok"
        assert body["latency_seconds"] > 0

    assert json.loads(_get(port, "/healthz"))["status"] == "ok"
    stats = json.loads(_get(port, "/stats"))
    assert stats["completed"] == 3

    # /metrics must round-trip through the exposition parser.
    families = parse_prometheus_text(_get(port, "/metrics").decode())
    assert "repro_requests_completed_total" in families

    # SIGINT: graceful drain, summary on stdout, exit 0.
    serve_proc.send_signal(signal.SIGINT)
    out, _ = serve_proc.communicate(timeout=30)
    assert serve_proc.returncode == 0, out
    assert "draining" in out
    assert "served 3 requests" in out
