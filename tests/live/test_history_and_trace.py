"""Live-node observability: /metrics/history, traceparent, stats v2."""

import asyncio
import json

import pytest

from repro.core.config import ServerConfig
from repro.live import LiveHttpServer, LiveNode, LiveNodeConfig
from repro.telemetry import SloConfig, TelemetryConfig
from repro.telemetry.timeseries import TimeSeriesStore

OBSERVED = TelemetryConfig(
    enabled=True,
    trace=False,
    slo=SloConfig(latency_objective_seconds=0.2),
    scrape_interval_seconds=0.05,
    history_points=128,
)


def _node_config(**overrides):
    defaults = dict(
        server=ServerConfig(model="tinyvit-5m", preprocess_device="gpu"),
        time_scale=1.0,
        grace_seconds=2.0,
        telemetry=OBSERVED,
    )
    defaults.update(overrides)
    return LiveNodeConfig(**defaults)


async def _http(host, port, method, path, payload=None, headers=None):
    body = json.dumps(payload).encode() if payload is not None else b""
    reader, writer = await asyncio.open_connection(host, port)
    head = f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
    for name, value in (headers or {}).items():
        head += f"{name}: {value}\r\n"
    if body:
        head += f"Content-Length: {len(body)}\r\n"
    writer.write(head.encode() + b"\r\n" + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    status = int(raw.split(b" ", 2)[1])
    return status, raw.split(b"\r\n\r\n", 1)[1]


async def _with_server(config, fn):
    node = LiveNode(config)
    http = LiveHttpServer(node, "127.0.0.1", 0)
    node.start()
    await http.start()
    host, port = http.address
    try:
        return await fn(node, host, port)
    finally:
        await http.stop()
        await node.shutdown()


class TestMetricsHistory:
    def test_history_endpoint_serves_the_store(self):
        async def scenario(node, host, port):
            for _ in range(3):
                await _http(host, port, "POST", "/v1/infer", {"size": "small"})
            await asyncio.sleep(0.15)  # let a few scrapes land
            return await _http(host, port, "GET", "/metrics/history")

        status, body = asyncio.run(_with_server(_node_config(), scenario))
        assert status == 200
        store = TimeSeriesStore.from_dict(json.loads(body))
        assert "repro_requests_completed_total" in store.names
        assert "repro_request_latency_seconds:p99" in store.names
        completed = store.get("repro_requests_completed_total")
        assert completed.values[-1] >= 3.0

    def test_history_since_filter_and_bad_value(self):
        async def scenario(node, host, port):
            await _http(host, port, "POST", "/v1/infer", {})
            await asyncio.sleep(0.12)
            full = await _http(host, port, "GET", "/metrics/history")
            trimmed = await _http(
                host, port, "GET", f"/metrics/history?since={node.env.now}")
            bad = await _http(host, port, "GET", "/metrics/history?since=x")
            return full, trimmed, bad

        full, trimmed, bad = asyncio.run(_with_server(_node_config(), scenario))
        assert full[0] == trimmed[0] == 200
        assert bad[0] == 400
        count = sum(len(s["points"]) for s in json.loads(full[1])["series"])
        trimmed_count = sum(
            len(s["points"]) for s in json.loads(trimmed[1])["series"])
        assert trimmed_count < count

    def test_history_404_without_scraper(self):
        config = _node_config(
            telemetry=TelemetryConfig(enabled=True, trace=False))

        async def scenario(node, host, port):
            return await _http(host, port, "GET", "/metrics/history")

        status, body = asyncio.run(_with_server(config, scenario))
        assert status == 404
        assert "scraper" in json.loads(body)["error"]


class TestTraceparent:
    HEADER = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

    def test_traceparent_joins_and_returns_child_context(self):
        async def scenario(node, host, port):
            return await _http(
                host, port, "POST", "/v1/infer", {"size": "small"},
                headers={"traceparent": self.HEADER})

        status, body = asyncio.run(_with_server(_node_config(), scenario))
        assert status == 200
        out = json.loads(body)
        assert out["trace_id"] == "0af7651916cd43dd8448eb211c80319c"
        version, trace_id, span_id, flags = out["traceparent"].split("-")
        assert (version, trace_id, flags) == ("00", out["trace_id"], "01")
        assert span_id != "b7ad6b7169203331"  # server opened a child span

    def test_malformed_traceparent_is_rejected(self):
        async def scenario(node, host, port):
            return await _http(
                host, port, "POST", "/v1/infer", {},
                headers={"traceparent": "garbage"})

        status, body = asyncio.run(_with_server(_node_config(), scenario))
        assert status == 400

    def test_trace_exemplar_lands_in_exposition(self):
        async def scenario(node, host, port):
            await _http(host, port, "POST", "/v1/infer", {},
                        headers={"traceparent": self.HEADER})
            return await _http(host, port, "GET", "/metrics")

        status, body = asyncio.run(_with_server(_node_config(), scenario))
        assert status == 200
        assert b'trace_id="0af7651916cd43dd8448eb211c80319c"' in body

    def test_untraced_request_has_no_trace_fields(self):
        async def scenario(node, host, port):
            return await _http(host, port, "POST", "/v1/infer", {})

        status, body = asyncio.run(_with_server(_node_config(), scenario))
        out = json.loads(body)
        assert status == 200
        assert "trace_id" not in out and "traceparent" not in out


class TestStatsV2:
    def test_stats_exposes_slo_and_scrape_state(self):
        async def scenario(node, host, port):
            await _http(host, port, "POST", "/v1/infer", {})
            await asyncio.sleep(0.12)
            return await _http(host, port, "GET", "/stats")

        status, body = asyncio.run(_with_server(_node_config(), scenario))
        assert status == 200
        stats = json.loads(body)
        assert stats["slo"]["total"] >= 1
        windows = {w["window_seconds"] for w in stats["slo"]["windows"]}
        assert windows == {60.0, 300.0}
        assert stats["scrape"]["samples_taken"] > 0
        assert stats["scrape"]["series"] > 0
        assert stats["scrape"]["alerts_firing"] == []
