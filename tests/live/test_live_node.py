"""In-process tests for the live serving node and its HTTP front-end."""

import asyncio
import json

import pytest

from repro.core.config import ServerConfig
from repro.live import LiveHttpServer, LiveNode, LiveNodeConfig, NodeShuttingDown
from repro.telemetry.exposition import parse_prometheus_text


def _node_config(**overrides):
    defaults = dict(
        server=ServerConfig(model="tinyvit-5m", preprocess_device="gpu"),
        time_scale=1.0,
        grace_seconds=2.0,
    )
    defaults.update(overrides)
    return LiveNodeConfig(**defaults)


async def _http(host, port, method, path, payload=None):
    """One-shot HTTP exchange against the live server."""
    body = json.dumps(payload).encode() if payload is not None else b""
    reader, writer = await asyncio.open_connection(host, port)
    head = f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
    if body:
        head += f"Content-Length: {len(body)}\r\n"
    writer.write(head.encode() + b"\r\n" + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    status = int(raw.split(b" ", 2)[1])
    payload = raw.split(b"\r\n\r\n", 1)[1]
    return status, payload


class TestLiveNodeConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LiveNodeConfig(time_scale=0)
        with pytest.raises(ValueError):
            LiveNodeConfig(gpu_count=0)
        with pytest.raises(ValueError):
            LiveNodeConfig(grace_seconds=-1)


class TestLiveNode:
    def test_infer_and_shutdown(self):
        async def main():
            node = LiveNode(_node_config())
            node.start()
            results = await asyncio.gather(
                *(node.infer(size="small") for _ in range(4))
            )
            metrics = await node.shutdown()
            return node, results, metrics

        node, results, metrics = asyncio.run(main())
        assert len(results) == 4
        for result in results:
            assert result["outcome"] == "ok"
            assert result["latency_seconds"] > 0
            assert result["spans"]
        assert metrics.completed == 4
        assert node.admitted == 4

    def test_rejects_after_shutdown(self):
        async def main():
            node = LiveNode(_node_config())
            node.start()
            await node.infer()
            await node.shutdown()
            with pytest.raises(NodeShuttingDown):
                await node.infer()
            # Shutdown is idempotent.
            again = await node.shutdown()
            return again

        metrics = asyncio.run(main())
        assert metrics.completed == 1

    def test_shutdown_drains_inflight_requests(self):
        """Requests in the batcher when shutdown starts still complete."""

        async def main():
            node = LiveNode(_node_config())
            node.start()
            inflight = [
                asyncio.ensure_future(node.infer(size="small")) for _ in range(6)
            ]
            await asyncio.sleep(0)  # let submissions enter the kernel
            metrics = await node.shutdown()
            results = await asyncio.gather(*inflight)
            return metrics, results

        metrics, results = asyncio.run(main())
        assert len(results) == 6
        assert all(r["outcome"] == "ok" for r in results)
        assert metrics.completed == 6

    def test_stats_shape(self):
        async def main():
            node = LiveNode(_node_config())
            node.start()
            await node.infer()
            stats = node.stats()
            await node.shutdown()
            return stats

        stats = asyncio.run(main())
        assert stats["model"] == "tinyvit-5m"
        assert stats["admitted"] == stats["completed"] == 1
        assert stats["in_flight"] == 0


class TestLiveHttp:
    def _boot(self):
        node = LiveNode(_node_config())
        server = LiveHttpServer(node, port=0)
        return node, server

    def test_routes(self):
        async def main():
            node, server = self._boot()
            node.start()
            await server.start()
            host, port = server.address

            status, health = await _http(host, port, "GET", "/healthz")
            assert status == 200 and b"ok" in health

            status, body = await _http(host, port, "POST", "/v1/infer",
                                       {"size": "small"})
            assert status == 200
            result = json.loads(body)
            assert result["outcome"] == "ok"
            assert result["batch_size"] >= 1

            status, metrics_text = await _http(host, port, "GET", "/metrics")
            assert status == 200
            families = parse_prometheus_text(metrics_text.decode())
            assert "repro_requests_completed_total" in families

            status, stats = await _http(host, port, "GET", "/stats")
            assert status == 200
            assert json.loads(stats)["completed"] == 1

            status, _ = await _http(host, port, "GET", "/nope")
            assert status == 404
            status, _ = await _http(host, port, "GET", "/v1/infer")
            assert status == 405
            status, _ = await _http(host, port, "POST", "/v1/infer",
                                    {"size": "galactic"})
            assert status == 400

            await server.stop()
            await node.shutdown()

        asyncio.run(main())

    def test_draining_node_returns_503(self):
        async def main():
            node, server = self._boot()
            node.start()
            await server.start()
            host, port = server.address
            await node.shutdown()
            status, _ = await _http(host, port, "POST", "/v1/infer", {})
            assert status == 503
            status, health = await _http(host, port, "GET", "/healthz")
            assert status == 200 and b"draining" in health
            await server.stop()

        asyncio.run(main())
