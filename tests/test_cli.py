"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--model", "alexnet"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.model == "resnet-50"
        assert args.preprocess_device == "gpu"

    def test_preprocess_device_flag(self):
        args = build_parser().parse_args(["run", "--preprocess-device", "cpu"])
        assert args.preprocess_device == "cpu"

    def test_deprecated_preprocess_alias_warns(self):
        with pytest.warns(DeprecationWarning, match="--preprocess-device"):
            args = build_parser().parse_args(["run", "--preprocess", "cpu"])
        assert args.preprocess_device == "cpu"

    def test_faults_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.nodes == 2
        assert args.downtimes == "0.01,0.02,0.05"
        assert args.deadline_ms == 250.0

    def test_cache_defaults(self):
        args = build_parser().parse_args(["cache"])
        assert args.skews == "0.0,0.8,1.2"
        assert args.cache_mb == "0,64,256"
        assert args.tiers == "image,tensor"
        assert args.policy == "lru"
        assert args.catalog == 200


class TestCommands:
    def test_models_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "resnet-50" in out
        assert "faster-rcnn-face" in out

    def test_models_json_export(self, tmp_path, capsys):
        path = tmp_path / "zoo.json"
        assert main(["models", "--json", str(path)]) == 0
        rows = json.loads(path.read_text())
        assert any(r["name"] == "vit-base-16" for r in rows)

    def test_run(self, capsys):
        assert main(["run", "--model", "resnet-50", "--concurrency", "64"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "img/s" in out

    def test_run_csv_export(self, tmp_path, capsys):
        path = tmp_path / "run.csv"
        assert main([
            "run", "--model", "tinyvit-5m", "--concurrency", "64",
            "--csv", str(path),
        ]) == 0
        text = path.read_text()
        assert "throughput" in text.splitlines()[0]

    def test_breakdown(self, capsys):
        assert main(["breakdown", "--model", "resnet-50", "--size", "large"]) == 0
        out = capsys.readouterr().out
        assert "preprocessing" in out
        assert "cpu" in out and "gpu" in out

    def test_sweep(self, capsys):
        assert main([
            "sweep", "--model", "resnet-50", "--concurrencies", "1,64",
        ]) == 0
        out = capsys.readouterr().out
        assert "c=1" in out and "c=64" in out

    def test_faces(self, capsys):
        assert main([
            "faces", "--brokers", "redis,fused", "--faces", "5",
            "--frames", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "redis" in out and "fused" in out

    def test_cache_rejects_unknown_tier_and_policy(self, capsys):
        assert main(["cache", "--tiers", "image,l2"]) == 2
        assert "unknown cache tier" in capsys.readouterr().err
        assert main(["cache", "--policy", "clock"]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_cache_sweep_with_export(self, tmp_path, capsys):
        path = tmp_path / "cache.json"
        assert main([
            "cache", "--skews", "1.2", "--cache-mb", "0,64",
            "--tiers", "image,tensor", "--catalog", "50",
            "--concurrency", "16", "--warmup", "50", "--requests", "200",
            "--json", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Throughput vs cache size" in out
        assert "off" in out and "64 MiB" in out
        rows = json.loads(path.read_text())
        assert len(rows) == 2
        off, warm = rows
        assert off["policy"] == "off" and "cache_image_hits" not in off
        assert warm["cache_mb"] == 64.0
        assert warm["cache_image_hits"] >= 0.0
        assert warm["cache_tensor_hit_rate"] >= 0.0

    def test_plan(self, capsys):
        assert main([
            "plan", "--model", "resnet-50", "--rate", "2000",
            "--slo-ms", "500", "--max-nodes", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "nodes needed : 1" in out
        assert "p99 by fleet size" in out


class TestTelemetryCommand:
    def test_telemetry_defaults(self):
        args = build_parser().parse_args(["telemetry"])
        assert args.scenario == "serve"
        assert args.slo_ms == 200.0
        assert args.target == 0.99
        assert args.trace_limit == 2000
        assert args.sample_every == 1

    def test_telemetry_run_with_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "run.trace.json"
        prom = tmp_path / "run.prom"
        metrics_json = tmp_path / "run.metrics.json"
        code = main([
            "telemetry",
            "--requests", "200",
            "--warmup", "30",
            "--concurrency", "16",
            "--trace", str(trace),
            "--metrics", str(prom),
            "--metrics-json", str(metrics_json),
        ])
        assert code == 0  # generous default SLO is met
        out = capsys.readouterr().out
        assert "SLO compliance" in out
        assert "burn rate" in out
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]
        text = prom.read_text()
        assert "# TYPE repro_request_latency_seconds histogram" in text
        assert json.loads(metrics_json.read_text())["metrics"]

    def test_telemetry_exit_code_reflects_missed_slo(self, capsys):
        code = main([
            "telemetry",
            "--requests", "150",
            "--warmup", "20",
            "--concurrency", "16",
            "--slo-ms", "0.001",  # impossible objective
        ])
        assert code == 1
        assert "MISSED" in capsys.readouterr().out


class TestWorkloadCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args([
            "workload", "synthesize", "--spec", "constant:rate=5,duration=2",
            "--out", "t.jsonl",
        ])
        assert args.action == "synthesize"
        assert args.seed == 0

    def test_action_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workload"])

    def test_synthesize_describe_replay_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "day.jsonl.gz"
        assert main([
            "workload", "synthesize",
            "--spec", "flash:mean=40,at=5,len=3,peak=4,duration=12,zipf=1.0,catalog=16",
            "--out", str(trace), "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "sha256" in out

        assert main(["workload", "describe", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "events" in out and "digest" in out

        assert main([
            "workload", "replay", str(trace), "--warmup", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "phase" in out  # flash/day phase counters surfaced

    def test_describe_accepts_a_spec_string(self, capsys):
        assert main(["workload", "describe", "diurnal:mean=80,swing=0.4"]) == 0
        out = capsys.readouterr().out
        assert "arrivals.kind" in out

    def test_synthesize_rejects_unbounded_spec(self, tmp_path, capsys):
        assert main([
            "workload", "synthesize", "--spec", "constant:rate=5",
            "--out", str(tmp_path / "t.jsonl"),
        ]) == 2
        assert "duration" in capsys.readouterr().err

    def test_bad_spec_exits_2(self, tmp_path, capsys):
        assert main([
            "workload", "synthesize", "--spec", "bogus:rate=1",
            "--out", str(tmp_path / "t.jsonl"),
        ]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_accepts_workload_flag(self, capsys):
        assert main([
            "sweep", "--workload", "constant:rate=400,duration=10",
            "--repeats", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "seed=0" in out and "seed=1" in out

    def test_sweep_rejects_bad_workload_spec(self, capsys):
        assert main(["sweep", "--workload", "bogus:rate=1"]) == 2
        assert "error" in capsys.readouterr().err
