"""Determinism: same seed => byte-identical results.

Two layers of guarantee, both required by the parallel executor:

- **Repeatability**: running the same experiment twice in one process
  yields byte-identical ``to_dict()`` output (the simulation is a pure
  function of its config).
- **Serial/parallel identity**: fanning points across pool workers
  changes nothing — every worker computes exactly what the parent would
  have computed serially.
"""

import json

from repro.apps import FacePipelineConfig
from repro.core.config import ServerConfig
from repro.parallel import (
    ExperimentPoint,
    FacePipelinePoint,
    ParallelConfig,
    run_experiment_point,
    run_face_pipeline_point,
    run_sweep,
)
from repro.serving.runner import (
    ExperimentConfig,
    run_experiment,
    run_face_pipeline,
    run_open_loop,
)


def _closed_loop_config(seed=7):
    return ExperimentConfig(
        server=ServerConfig(preprocess_batch_size=8),
        concurrency=8,
        warmup_requests=20,
        measure_requests=120,
        seed=seed,
    )


def _canonical(result_dict):
    """Byte-level canonical form of a result row."""
    return json.dumps(result_dict, sort_keys=True).encode()


class TestRepeatability:
    def test_closed_loop_same_seed_same_bytes(self):
        first = run_experiment(_closed_loop_config())
        second = run_experiment(_closed_loop_config())
        assert _canonical(first.to_dict()) == _canonical(second.to_dict())

    def test_open_loop_different_seed_differs(self):
        """The guarantee is repeatability, not insensitivity: changing
        the seed perturbs the stochastic arrival process."""
        first = run_open_loop(_closed_loop_config(seed=7), offered_rate=200.0)
        second = run_open_loop(_closed_loop_config(seed=8), offered_rate=200.0)
        assert _canonical(first.to_dict()) != _canonical(second.to_dict())

    def test_open_loop_same_seed_same_bytes(self):
        config = _closed_loop_config()
        first = run_open_loop(config, offered_rate=200.0)
        second = run_open_loop(config, offered_rate=200.0)
        assert _canonical(first.to_dict()) == _canonical(second.to_dict())

    def test_face_pipeline_same_seed_same_bytes(self):
        kwargs = dict(
            concurrency=16,
            warmup_requests=20,
            measure_requests=80,
            seed=3,
        )
        first = run_face_pipeline(FacePipelineConfig(), **kwargs)
        second = run_face_pipeline(FacePipelineConfig(), **kwargs)
        assert _canonical(first.to_dict()) == _canonical(second.to_dict())


class TestSerialParallelIdentity:
    def test_closed_and_open_loop_points(self):
        points = [
            ExperimentPoint(config=_closed_loop_config(seed=s), offered_rate=rate)
            for s in (0, 1)
            for rate in (None, 150.0)
        ]
        serial = run_sweep(
            run_experiment_point, points, ParallelConfig(serial=True)
        )
        pooled = run_sweep(run_experiment_point, points, ParallelConfig(workers=2))
        assert pooled.mode == "parallel"
        assert [_canonical(row) for row in serial.values] == [
            _canonical(row) for row in pooled.values
        ]

    def test_persistent_pool_and_chunked_points(self):
        """A persistent spawn pool with chunked batches computes the
        same bytes as a serial loop — worker reuse leaks no state."""
        from repro.parallel.executor import shutdown_persistent_pools

        points = [
            ExperimentPoint(config=_closed_loop_config(seed=s))
            for s in (0, 1, 2, 3)
        ]
        serial = run_sweep(
            run_experiment_point, points, ParallelConfig(serial=True)
        )
        try:
            config = ParallelConfig(workers=2, persistent=True, chunk_size=2)
            first = run_sweep(run_experiment_point, points, config)
            second = run_sweep(run_experiment_point, points, config)  # warm
        finally:
            shutdown_persistent_pools()
        assert [_canonical(row) for row in serial.values] == [
            _canonical(row) for row in first.values
        ] == [_canonical(row) for row in second.values]

    def test_face_pipeline_points(self):
        points = [
            FacePipelinePoint(
                pipeline=FacePipelineConfig(broker=broker),
                concurrency=16,
                warmup_requests=20,
                measure_requests=60,
                seed=1,
            )
            for broker in ("fused", "redis")
        ]
        serial = run_sweep(
            run_face_pipeline_point, points, ParallelConfig(serial=True)
        )
        pooled = run_sweep(
            run_face_pipeline_point, points, ParallelConfig(workers=2)
        )
        assert [_canonical(row) for row in serial.values] == [
            _canonical(row) for row in pooled.values
        ]
