"""Tests for the reactive fleet autoscaler."""

import pytest

from repro.core import MetricsCollector, ServerConfig
from repro.serving import (
    AutoscaledFleet,
    AutoscalerPolicy,
    BurstyArrivals,
    DiurnalArrivals,
    PatternedClient,
    PoissonArrivals,
)
from repro.sim import Environment, RandomStreams
from repro.vision import reference_dataset

SERVER = ServerConfig(model="resnet-50", preprocess_batch_size=64)


def run_autoscaled(arrivals, policy, seconds=20.0):
    env = Environment()
    collector = MetricsCollector()
    collector.arm(0.0)
    fleet = AutoscaledFleet(env, SERVER, policy, metrics=collector)
    PatternedClient(env, fleet, reference_dataset("medium"), arrivals, RandomStreams(0))
    env.run(until=seconds)
    collector.disarm(env.now)
    return fleet, collector.finalize()


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_outstanding_per_node": 0},
            {"scale_out_threshold": 1.0},
            {"scale_in_threshold": 0.0},
            {"scale_in_threshold": 1.0},
            {"interval_seconds": 0},
            {"min_nodes": 0},
            {"min_nodes": 5, "max_nodes": 2},
            {"per_node_cap": 0},
        ],
    )
    def test_invalid_policy(self, kwargs):
        with pytest.raises(ValueError):
            AutoscalerPolicy(**kwargs)


class TestScaling:
    def test_scales_out_under_heavy_load(self):
        policy = AutoscalerPolicy(min_nodes=1, max_nodes=4,
                                  provision_delay_seconds=1.0)
        fleet, metrics = run_autoscaled(PoissonArrivals(15000), policy, seconds=10.0)
        assert fleet.active_count >= 3
        assert any(e.action == "scale_out" for e in fleet.events)
        # With 3-4 nodes active the fleet serves most of the offer.
        assert metrics.throughput > 10000

    def test_stays_small_under_light_load(self):
        policy = AutoscalerPolicy(min_nodes=1, max_nodes=4)
        # ~5% of a node's capacity: comfortably a one-node workload.
        fleet, _ = run_autoscaled(PoissonArrivals(200), policy, seconds=10.0)
        assert fleet.active_count == 1
        assert not any(e.action == "scale_out" for e in fleet.events)

    def test_scales_in_after_burst(self):
        policy = AutoscalerPolicy(min_nodes=1, max_nodes=4,
                                  provision_delay_seconds=0.5)
        arrivals = BurstyArrivals(base_rate=500, burst_rate=15000,
                                  base_seconds=8.0, burst_seconds=3.0)
        fleet, _ = run_autoscaled(arrivals, policy, seconds=11.0)
        actions = [e.action for e in fleet.events]
        assert "scale_out" in actions, "burst must trigger scale-out"
        assert "scale_in" in actions, "quiet period must trigger scale-in"

    def test_respects_max_nodes(self):
        policy = AutoscalerPolicy(min_nodes=1, max_nodes=2,
                                  provision_delay_seconds=0.2)
        fleet, _ = run_autoscaled(PoissonArrivals(30000), policy, seconds=5.0)
        assert fleet.active_count <= 2
        assert all(e.active_nodes <= 2 for e in fleet.events)

    def test_provision_delay_delays_capacity(self):
        slow = AutoscalerPolicy(min_nodes=1, max_nodes=4, provision_delay_seconds=4.0)
        fleet, _ = run_autoscaled(PoissonArrivals(15000), slow, seconds=5.0)
        first_out = next(e for e in fleet.events if e.action == "scale_out")
        assert first_out.at_time >= 4.0

    def test_diurnal_load_tracks_the_wave(self):
        policy = AutoscalerPolicy(min_nodes=1, max_nodes=4,
                                  provision_delay_seconds=1.0)
        arrivals = DiurnalArrivals(mean_rate=9000, swing=0.7, period_seconds=30)
        fleet, metrics = run_autoscaled(arrivals, policy, seconds=45.0)
        actions = {e.action for e in fleet.events}
        assert actions == {"scale_out", "scale_in"}
        assert metrics.throughput > 7000  # most of the mean offer served
