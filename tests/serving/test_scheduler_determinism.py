"""Scheduler invariance: heap and calendar cores are bit-identical.

The calendar queue is a pure data-structure swap — it must preserve the
engine's exact ``(time, priority, eid)`` total order.  These tests pin
that guarantee end-to-end: every experiment entry point (closed-loop,
open-loop, face pipeline, fleet, sharded cluster) produces byte-equal
results and identical span-trace digests under either core, whether the
core is chosen via ``ExperimentConfig.scheduler``, a function argument,
or the ``REPRO_SCHEDULER`` environment variable.
"""

import hashlib
import json

import pytest

from repro.apps import FacePipelineConfig
from repro.cluster import ClusterConfig, run_cluster_experiment
from repro.core.config import ServerConfig
from repro.serving import run_fleet_experiment
from repro.serving.runner import (
    ExperimentConfig,
    run_experiment,
    run_face_pipeline,
    run_open_loop,
)
from repro.sim.engine import SCHEDULERS
from repro.telemetry.config import TelemetryConfig
from repro.workload import Workload

SERVER = ServerConfig(model="resnet-50", preprocess_batch_size=8)


def _config(**overrides):
    base = dict(
        server=SERVER,
        concurrency=8,
        warmup_requests=20,
        measure_requests=120,
        seed=7,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def _canonical(result):
    return json.dumps(result.to_dict(), sort_keys=True).encode()


def _trace_digest(result):
    """Order-sensitive digest of the run's span timeline."""
    events = result.telemetry.tracer.trace_events()
    payload = json.dumps(events, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


class TestConfigField:
    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            _config(scheduler="fibheap")

    def test_closed_loop_byte_equal(self):
        results = [
            run_experiment(_config(scheduler=s)) for s in SCHEDULERS
        ]
        blobs = {_canonical(r) for r in results}
        assert len(blobs) == 1

    def test_open_loop_byte_equal(self):
        results = [
            run_open_loop(_config(scheduler=s), offered_rate=200.0)
            for s in SCHEDULERS
        ]
        assert len({_canonical(r) for r in results}) == 1

    def test_trace_digests_identical(self, monkeypatch):
        """Not just the aggregate metrics: the per-request span
        timeline — every timestamped event, in order — must match.

        Request ids come from a process-global counter (they tag
        requests uniquely across a whole process, including sweeps), so
        it is reset per run here — otherwise the second run's ids start
        where the first stopped and the digests differ for a reason
        that has nothing to do with the scheduler."""
        import itertools

        import repro.core.request as request_mod

        digests = set()
        for s in SCHEDULERS:
            monkeypatch.setattr(request_mod, "_request_ids", itertools.count())
            result = run_experiment(
                _config(
                    scheduler=s,
                    telemetry=TelemetryConfig(enabled=True, trace=True),
                )
            )
            digests.add(_trace_digest(result))
        assert len(digests) == 1


class TestFunctionArgument:
    def test_face_pipeline_byte_equal(self):
        kwargs = dict(
            concurrency=16, warmup_requests=20, measure_requests=60, seed=3
        )
        results = [
            run_face_pipeline(FacePipelineConfig(), scheduler=s, **kwargs)
            for s in SCHEDULERS
        ]
        assert len({_canonical(r) for r in results}) == 1

    def test_fleet_byte_equal(self):
        results = [
            run_fleet_experiment(
                SERVER,
                node_count=2,
                offered_rate=2000,
                warmup_requests=100,
                measure_requests=300,
                scheduler=s,
            )
            for s in SCHEDULERS
        ]
        assert len(
            {json.dumps(r.to_dict(), sort_keys=True) for r in results}
        ) == 1


class TestEnvironmentVariable:
    def test_cluster_byte_equal(self, monkeypatch):
        """The sharded cluster builds Environments internally; the env
        var is the supported selection channel there."""
        workload = Workload.constant(150.0, duration_seconds=3.0)
        metrics = []
        for s in SCHEDULERS:
            monkeypatch.setenv("REPRO_SCHEDULER", s)
            result = run_cluster_experiment(
                SERVER,
                ClusterConfig(cells=2, nodes_per_cell=2),
                workload,
                seed=0,
            )
            metrics.append(result.metrics)
        # RunMetrics dataclass equality compares every float exactly.
        assert metrics[0] == metrics[1]

    def test_env_var_reaches_closed_loop(self, monkeypatch):
        blobs = set()
        for s in SCHEDULERS:
            monkeypatch.setenv("REPRO_SCHEDULER", s)
            blobs.add(_canonical(run_experiment(_config())))
        assert len(blobs) == 1
