"""Tests for closed-loop / open-loop clients and the experiment runner."""

import pytest

from repro.core import ServerConfig
from repro.serving import (
    ClosedLoopClient,
    ExperimentConfig,
    OpenLoopClient,
    run_experiment,
)
from repro.core.server import InferenceServer
from repro.hardware import ServerNode
from repro.sim import Environment, RandomStreams
from repro.vision import reference_dataset


class TestClosedLoopClient:
    def test_validation(self):
        env = Environment()
        node = ServerNode(env)
        server = InferenceServer(env, node, ServerConfig())
        with pytest.raises(ValueError):
            ClosedLoopClient(env, server, reference_dataset("medium"), 0, RandomStreams(0))
        with pytest.raises(ValueError):
            ClosedLoopClient(
                env, server, reference_dataset("medium"), 1, RandomStreams(0),
                think_time_seconds=-1,
            )

    def test_maintains_concurrency(self):
        env = Environment()
        node = ServerNode(env)
        server = InferenceServer(env, node, ServerConfig())
        client = ClosedLoopClient(env, server, reference_dataset("medium"), 8, RandomStreams(0))
        env.run(until=0.5)
        completed = server.metrics.total_completed
        # In flight at any time == concurrency.
        assert client.issued - completed == 8

    def test_stop_halts_new_requests(self):
        env = Environment()
        node = ServerNode(env)
        server = InferenceServer(env, node, ServerConfig())
        client = ClosedLoopClient(env, server, reference_dataset("medium"), 4, RandomStreams(0))
        env.run(until=0.2)
        client.stop()
        issued = client.issued
        env.run(until=0.6)
        assert client.issued <= issued + 4  # only in-flight ones finish


class TestOpenLoopClient:
    def test_rate_validation(self):
        env = Environment()
        node = ServerNode(env)
        server = InferenceServer(env, node, ServerConfig())
        with pytest.raises(ValueError):
            OpenLoopClient(env, server, reference_dataset("medium"), 0, RandomStreams(0))

    def test_offered_rate_approximately_respected(self):
        env = Environment()
        node = ServerNode(env)
        server = InferenceServer(env, node, ServerConfig())
        client = OpenLoopClient(env, server, reference_dataset("medium"), 500, RandomStreams(0))
        env.run(until=2.0)
        assert client.issued == pytest.approx(1000, rel=0.2)

    def test_completion_callback(self):
        env = Environment()
        node = ServerNode(env)
        server = InferenceServer(env, node, ServerConfig())
        seen = []
        client = OpenLoopClient(
            env, server, reference_dataset("medium"), 200, RandomStreams(0),
            on_complete=seen.append,
        )
        env.run(until=1.0)
        assert len(seen) > 50
        assert all(r.completion_time is not None for r in seen)


class TestRunner:
    def test_run_result_fields(self):
        result = run_experiment(
            ExperimentConfig(concurrency=16, warmup_requests=30, measure_requests=150)
        )
        assert result.throughput > 0
        assert result.mean_latency > 0
        assert result.p99_latency >= result.mean_latency * 0.5
        assert result.cpu_joules_per_image > 0
        assert result.gpu_joules_per_image > 0
        assert result.joules_per_image == pytest.approx(
            result.cpu_joules_per_image + result.gpu_joules_per_image
        )
        assert 0 <= result.cpu_utilization <= 1
        assert 0 <= result.gpu_utilization <= 1

    def test_energy_window_excludes_warmup(self):
        """Warm-up traffic must not inflate per-image energy."""
        short = run_experiment(
            ExperimentConfig(concurrency=16, warmup_requests=20, measure_requests=200)
        )
        long = run_experiment(
            ExperimentConfig(concurrency=16, warmup_requests=400, measure_requests=200)
        )
        assert short.joules_per_image == pytest.approx(long.joules_per_image, rel=0.1)

    def test_config_with(self):
        config = ExperimentConfig()
        assert config.with_overrides(concurrency=99).concurrency == 99
        assert config.concurrency == 64
