"""Tests for arrival processes and the patterned open-loop client."""

import pytest

from repro.core import MetricsCollector, ServerConfig
from repro.core.server import InferenceServer
from repro.hardware import ServerNode
from repro.serving import (
    BurstyArrivals,
    DiurnalArrivals,
    PatternedClient,
    PoissonArrivals,
)
from repro.sim import Environment, RandomStreams
from repro.vision import reference_dataset


class TestArrivalProcesses:
    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0)

    def test_poisson_constant_rate(self):
        arrivals = PoissonArrivals(100)
        assert arrivals.rate_at(0) == arrivals.rate_at(42.0) == 100

    def test_bursty_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(base_rate=0, burst_rate=10)
        with pytest.raises(ValueError):
            BurstyArrivals(base_rate=10, burst_rate=5)
        with pytest.raises(ValueError):
            BurstyArrivals(base_rate=10, burst_rate=20, base_seconds=0)

    def test_bursty_phases(self):
        arrivals = BurstyArrivals(base_rate=100, burst_rate=1000,
                                  base_seconds=1.0, burst_seconds=0.5)
        assert arrivals.rate_at(0.5) == 100
        assert arrivals.rate_at(1.2) == 1000
        assert arrivals.rate_at(1.6) == 100  # wrapped into the next period
        assert arrivals.mean_rate == pytest.approx((100 * 1 + 1000 * 0.5) / 1.5)

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(0)
        with pytest.raises(ValueError):
            DiurnalArrivals(100, swing=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(100, period_seconds=0)

    def test_diurnal_swings_around_mean(self):
        arrivals = DiurnalArrivals(100, swing=0.5, period_seconds=60)
        peak = arrivals.rate_at(15)  # quarter period: sin = 1
        trough = arrivals.rate_at(45)
        assert peak == pytest.approx(150)
        assert trough == pytest.approx(50)

    def test_intervals_reflect_rate(self):
        import random

        rng = random.Random(0)
        fast = PoissonArrivals(1000)
        slow = PoissonArrivals(10)
        fast_mean = sum(fast.next_interval(0, rng) for _ in range(500)) / 500
        slow_mean = sum(slow.next_interval(0, rng) for _ in range(500)) / 500
        assert fast_mean < slow_mean / 10

    def test_idle_repoll_is_configurable(self):
        import random

        class Silent(PoissonArrivals):
            def rate_at(self, now):
                return 0.0

        rng = random.Random(0)
        assert Silent(100).next_interval(0, rng) == 0.1  # documented default
        assert Silent(100, idle_repoll_seconds=2.5).next_interval(0, rng) == 2.5

    def test_idle_repoll_validation(self):
        with pytest.raises(ValueError, match="idle_repoll_seconds"):
            PoissonArrivals(100, idle_repoll_seconds=0)
        with pytest.raises(ValueError, match="idle_repoll_seconds"):
            BurstyArrivals(base_rate=10, burst_rate=20, idle_repoll_seconds=-1)
        with pytest.raises(ValueError, match="idle_repoll_seconds"):
            DiurnalArrivals(100, idle_repoll_seconds=0)

    def test_rate_envelopes(self):
        bursty = BurstyArrivals(base_rate=100, burst_rate=1000,
                                base_seconds=0.7, burst_seconds=0.3)
        diurnal = DiurnalArrivals(200, swing=0.4, period_seconds=30)
        for t in [0.01 + 0.13 * i for i in range(300)]:
            assert bursty.rate_at(t) in (100, 1000)
            assert 200 * 0.6 <= diurnal.rate_at(t) <= 200 * 1.4

    def test_intervals_deterministic_under_fixed_seed(self):
        import random

        arrivals = DiurnalArrivals(500, swing=0.5, period_seconds=10)
        a = [arrivals.next_interval(t * 0.01, random.Random(42)) for t in range(50)]
        b = [arrivals.next_interval(t * 0.01, random.Random(42)) for t in range(50)]
        assert a == b


class TestPatternedClient:
    def _run(self, arrivals, seconds=2.0):
        env = Environment()
        node = ServerNode(env)
        collector = MetricsCollector()
        collector.arm(0.0)
        server = InferenceServer(
            env, node, ServerConfig(model="resnet-50", preprocess_batch_size=64),
            metrics=collector,
        )
        client = PatternedClient(
            env, server, reference_dataset("medium"), arrivals, RandomStreams(0)
        )
        env.run(until=seconds)
        collector.disarm(env.now)
        return client, collector

    def test_poisson_rate_respected(self):
        client, collector = self._run(PoissonArrivals(500))
        assert client.issued == pytest.approx(1000, rel=0.2)

    def test_bursty_issues_more_during_bursts(self):
        arrivals = BurstyArrivals(base_rate=200, burst_rate=2000,
                                  base_seconds=1.0, burst_seconds=0.25)
        client, _ = self._run(arrivals, seconds=2.5)
        expected = arrivals.mean_rate * 2.5
        assert client.issued == pytest.approx(expected, rel=0.3)

    def test_stop(self):
        env = Environment()
        node = ServerNode(env)
        server = InferenceServer(env, node, ServerConfig())
        client = PatternedClient(
            env, server, reference_dataset("medium"), PoissonArrivals(100),
            RandomStreams(0),
        )
        env.run(until=0.5)
        client.stop()
        issued = client.issued
        env.run(until=1.5)
        assert client.issued <= issued + 1

    def test_client_deterministic_under_fixed_seed(self):
        counts = []
        for _ in range(2):
            client, collector = self._run(PoissonArrivals(300), seconds=1.0)
            counts.append((client.issued, collector.total_completed))
        assert counts[0] == counts[1]

    def test_completion_callback(self):
        env = Environment()
        node = ServerNode(env)
        server = InferenceServer(env, node, ServerConfig(model="resnet-50"))
        seen = []
        PatternedClient(
            env, server, reference_dataset("medium"), PoissonArrivals(200),
            RandomStreams(0), on_complete=seen.append,
        )
        env.run(until=1.0)
        assert len(seen) > 50
