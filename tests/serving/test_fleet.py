"""Tests for the multi-node fleet: load balancer and capacity planning."""

import pytest

from repro.core import ServerConfig
from repro.serving import (
    LEAST_OUTSTANDING,
    ROUND_ROBIN,
    plan_capacity,
    run_fleet_experiment,
)
from repro.serving.fleet import Fleet, LoadBalancer
from repro.sim import Environment
from repro.vision import reference_dataset

SERVER = ServerConfig(model="resnet-50", preprocess_batch_size=64)


class TestValidation:
    def test_balancer_args(self):
        env = Environment()
        with pytest.raises(ValueError):
            LoadBalancer(env, [], per_node_cap=1)
        fleet = Fleet(env, 1, SERVER)
        with pytest.raises(ValueError):
            LoadBalancer(env, fleet.servers, per_node_cap=0)
        with pytest.raises(ValueError):
            LoadBalancer(env, fleet.servers, per_node_cap=1, policy="random")

    def test_fleet_args(self):
        env = Environment()
        with pytest.raises(ValueError):
            Fleet(env, 0, SERVER)

    def test_run_args(self):
        with pytest.raises(ValueError):
            run_fleet_experiment(SERVER, node_count=1, offered_rate=0)

    def test_plan_args(self):
        with pytest.raises(ValueError):
            plan_capacity(SERVER, offered_rate=100, p99_slo_seconds=0)


class TestFleetBehaviour:
    def test_two_nodes_serve_more_than_one(self):
        one = run_fleet_experiment(
            SERVER, node_count=1, offered_rate=9000,
            warmup_requests=800, measure_requests=1500,
        )
        two = run_fleet_experiment(
            SERVER, node_count=2, offered_rate=9000,
            warmup_requests=800, measure_requests=1500,
        )
        assert one.goodput_fraction < 0.85  # one node is overloaded
        assert two.goodput_fraction > 0.95  # two nodes absorb the load
        assert two.throughput > 1.3 * one.throughput

    def test_least_outstanding_balances_evenly(self):
        result = run_fleet_experiment(
            SERVER, node_count=3, offered_rate=6000,
            warmup_requests=500, measure_requests=1500,
            policy=LEAST_OUTSTANDING,
        )
        assert result.balance_ratio < 1.2

    def test_round_robin_balances_evenly(self):
        result = run_fleet_experiment(
            SERVER, node_count=3, offered_rate=6000,
            warmup_requests=500, measure_requests=1500,
            policy=ROUND_ROBIN,
        )
        assert result.balance_ratio < 1.2

    def test_backlog_grows_under_overload(self):
        result = run_fleet_experiment(
            SERVER, node_count=1, offered_rate=12000,
            warmup_requests=500, measure_requests=1000,
            per_node_cap=256,
        )
        assert result.peak_backlog > 100

    def test_deterministic(self):
        a = run_fleet_experiment(SERVER, node_count=2, offered_rate=4000,
                                 warmup_requests=300, measure_requests=800)
        b = run_fleet_experiment(SERVER, node_count=2, offered_rate=4000,
                                 warmup_requests=300, measure_requests=800)
        assert a.throughput == pytest.approx(b.throughput)


class TestCapacityPlanning:
    def test_plan_finds_minimum_fleet(self):
        plan = plan_capacity(
            SERVER,
            offered_rate=8000,
            p99_slo_seconds=0.2,
            dataset=reference_dataset("medium"),
            warmup_requests=1500,
            measure_requests=2500,
        )
        # One ~5.7k img/s node cannot absorb 8k req/s; two can.
        assert plan.nodes_required == 2
        assert plan.achieved_p99 <= 0.2
        assert 1 in plan.evaluations

    def test_plan_raises_when_impossible(self):
        with pytest.raises(RuntimeError, match="no fleet"):
            plan_capacity(
                SERVER,
                offered_rate=50000,
                p99_slo_seconds=0.001,
                max_nodes=2,
                warmup_requests=200,
                measure_requests=400,
                max_sim_seconds=5.0,
            )
