"""Node identity in the balancer: explicit ids, uniqueness, labels.

Before this existed, per-node metric labels were positional indices —
two fleets in one registry collided, and repartitioning a cluster
renumbered every node.  Ids are now caller-assignable (the cluster
layer passes topology-stable ``c<cell>/n<index>`` ids) and validated
unique.
"""

import pytest

from repro.core import ServerConfig
from repro.serving.fleet import Fleet, LoadBalancer
from repro.sim import Environment
from repro.telemetry import MetricsRegistry

SERVER = ServerConfig(model="resnet-50", preprocess_batch_size=64)


def make_fleet(**kwargs):
    env = Environment()
    return env, Fleet(env, 2, SERVER, **kwargs)


class TestNodeIds:
    def test_default_ids_are_positional(self):
        _, fleet = make_fleet()
        assert fleet.balancer.node_ids == ("0", "1")

    def test_custom_ids_pass_through(self):
        _, fleet = make_fleet(node_ids=("c3/n0", "c3/n1"))
        assert fleet.balancer.node_ids == ("c3/n0", "c3/n1")

    def test_duplicate_ids_rejected(self):
        env = Environment()
        with pytest.raises(ValueError, match="unique"):
            Fleet(env, 2, SERVER, node_ids=("a", "a"))

    def test_count_mismatch_rejected(self):
        env = Environment()
        with pytest.raises(ValueError, match="node ids"):
            Fleet(env, 2, SERVER, node_ids=("only-one",))

    def test_metrics_labelled_by_node_id(self):
        _, fleet = make_fleet(node_ids=("c0/n0", "c0/n1"))
        registry = MetricsRegistry()
        fleet.balancer.register_metrics(registry)
        family = registry.family("repro_node_outstanding")
        labels = {dict(pairs)["node"] for pairs, _ in family.samples()}
        assert labels == {"c0/n0", "c0/n1"}

class TestPickNodeFastPath:
    def test_least_outstanding_still_prefers_first_minimum(self):
        env = Environment()
        fleet = Fleet(env, 3, SERVER)
        balancer = fleet.balancer
        balancer.outstanding[0] = 2
        balancer.outstanding[1] = 1
        balancer.outstanding[2] = 1
        assert balancer._pick_node() == 1

    def test_zero_load_short_circuits(self):
        env = Environment()
        balancer = Fleet(env, 3, SERVER).balancer
        balancer.outstanding[0] = 1
        assert balancer._pick_node() == 1

    def test_capped_and_down_nodes_skipped(self):
        env = Environment()
        balancer = Fleet(env, 3, SERVER, per_node_cap=2).balancer
        balancer.outstanding[0] = 2   # at cap
        balancer.node_up[1] = False
        balancer.outstanding[2] = 1
        assert balancer._pick_node() == 2

    def test_all_unavailable_returns_none(self):
        env = Environment()
        balancer = Fleet(env, 2, SERVER, per_node_cap=1).balancer
        balancer.outstanding[0] = 1
        balancer.outstanding[1] = 1
        assert balancer._pick_node() is None
