"""Property-based tests for metrics, cost models, and the batcher."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DynamicBatcher, percentile
from repro.hardware import DEFAULT_CALIBRATION
from repro.models import TENSORRT, get_model, inference_cost
from repro.sim import Environment
from repro.vision import Image, cpu_preprocess_cost, gpu_preprocess_cost

CAL = DEFAULT_CALIBRATION


@given(values=st.lists(st.floats(min_value=0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=100),
       q1=st.floats(min_value=0, max_value=100),
       q2=st.floats(min_value=0, max_value=100))
@settings(max_examples=80, deadline=None)
def test_percentile_monotone_and_bounded(values, q1, q2):
    ordered = sorted(values)
    lo, hi = min(q1, q2), max(q1, q2)
    p_lo = percentile(ordered, lo)
    p_hi = percentile(ordered, hi)
    assert p_lo <= p_hi
    assert ordered[0] <= p_lo <= ordered[-1]
    assert ordered[0] <= p_hi <= ordered[-1]


@st.composite
def images(draw):
    width = draw(st.integers(min_value=16, max_value=4000))
    height = draw(st.integers(min_value=16, max_value=4000))
    nbytes = draw(st.integers(min_value=256, max_value=20_000_000))
    return Image(width=width, height=height, compressed_bytes=nbytes)


@given(image=images())
@settings(max_examples=80, deadline=None)
def test_preprocess_costs_positive_and_finite(image):
    cpu = cpu_preprocess_cost(image, 224, CAL)
    gpu = gpu_preprocess_cost(image, 224, CAL)
    assert cpu.core_seconds > 0
    assert gpu.staging_seconds > 0
    assert gpu.kernel_seconds > 0
    assert cpu.core_seconds < 10  # no image takes 10 CPU-seconds


@given(image=images(), scale=st.integers(min_value=2, max_value=4))
@settings(max_examples=60, deadline=None)
def test_cpu_preprocess_monotone_in_pixels(image, scale):
    bigger = Image(
        width=image.width * scale,
        height=image.height,
        compressed_bytes=image.compressed_bytes,
    )
    small = cpu_preprocess_cost(image, 224, CAL).core_seconds
    large = cpu_preprocess_cost(bigger, 224, CAL).core_seconds
    assert large > small


@given(batch=st.integers(min_value=1, max_value=256),
       model_name=st.sampled_from(["vit-base-16", "resnet-50", "tinyvit-5m", "detr-resnet-50"]))
@settings(max_examples=80, deadline=None)
def test_inference_cost_invariants(batch, model_name):
    model = get_model(model_name)
    cost = inference_cost(model, TENSORRT, batch, CAL)
    assert cost.total_seconds > 0
    assert cost.per_image_seconds > 0
    if batch > 1:
        one = inference_cost(model, TENSORRT, 1, CAL)
        # More images never run faster in total...
        assert cost.total_seconds >= one.total_seconds
        # ...but amortize better (or at least no worse) per image.
        assert cost.per_image_seconds <= one.per_image_seconds * 1.0001


@given(item_count=st.integers(min_value=1, max_value=60),
       max_batch=st.integers(min_value=1, max_value=16),
       delay_ms=st.floats(min_value=0.0, max_value=5.0,
                          allow_nan=False, allow_infinity=False))
@settings(max_examples=60, deadline=None)
def test_batcher_lossless_and_bounded(item_count, max_batch, delay_ms):
    """Every submitted item is dispatched exactly once, in FIFO order,
    in batches that never exceed max_batch."""
    env = Environment()
    batcher = DynamicBatcher(env, max_batch=max_batch, max_queue_delay=delay_ms / 1e3)
    dispatched = []

    def instance():
        while True:
            batch = yield batcher.next_batch()
            assert 1 <= len(batch) <= max_batch
            dispatched.extend(batch)
            yield env.timeout(0.001)

    env.process(instance())

    def producer():
        for i in range(item_count):
            yield batcher.submit(i)
            yield env.timeout(0.0003)

    env.process(producer())
    env.run(until=10.0)
    assert dispatched == list(range(item_count))
