"""Property-based tests (hypothesis) for the DES kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Container, Environment, PriorityItem, PriorityStore, Resource, Store


@given(delays=st.lists(st.floats(min_value=0, max_value=1e4,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    """No event may observe time going backwards."""
    env = Environment()
    observed = []

    def proc(delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for delay in delays:
        env.process(proc(delay))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
    assert env.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0.001, max_value=10,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=25),
       capacity=st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_resource_never_exceeds_capacity(delays, capacity):
    """At every grant instant, users <= capacity, and all work finishes."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    max_seen = {"users": 0}
    finished = []

    def proc(hold):
        with res.request() as grant:
            yield grant
            max_seen["users"] = max(max_seen["users"], res.count)
            assert res.count <= capacity
            yield env.timeout(hold)
        finished.append(hold)

    for hold in delays:
        env.process(proc(hold))
    env.run()
    assert len(finished) == len(delays)
    assert res.count == 0
    assert max_seen["users"] <= capacity


@given(delays=st.lists(st.floats(min_value=0.01, max_value=5,
                                 allow_nan=False, allow_infinity=False),
                       min_size=2, max_size=20))
@settings(max_examples=40, deadline=None)
def test_resource_busy_time_equals_total_work(delays):
    """With ample capacity, busy slot-seconds == sum of hold times."""
    env = Environment()
    res = Resource(env, capacity=len(delays))

    def proc(hold):
        with res.request() as grant:
            yield grant
            yield env.timeout(hold)

    for hold in delays:
        env.process(proc(hold))
    env.run()
    assert abs(res.busy_time() - sum(delays)) < 1e-9 * max(1, len(delays))


@given(amounts=st.lists(st.floats(min_value=1, max_value=100,
                                  allow_nan=False, allow_infinity=False),
                        min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_container_conserves_quantity(amounts):
    """put(x) then get(x) for every x leaves the container at its
    initial level; the level never goes negative or above capacity."""
    env = Environment()
    capacity = sum(amounts) + 1
    container = Container(env, capacity=capacity)

    def producer():
        for amount in amounts:
            yield container.put(amount)
            assert 0 <= container.level <= capacity

    def consumer():
        for amount in amounts:
            yield container.get(amount)
            assert 0 <= container.level <= capacity

    env.process(producer())
    env.process(consumer())
    env.run()
    assert container.level == 0


@given(items=st.lists(st.integers(), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_store_is_fifo_and_lossless(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == items


@given(priorities=st.lists(st.integers(min_value=-100, max_value=100),
                           min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_priority_store_pops_sorted(priorities):
    env = Environment()
    store = PriorityStore(env)
    popped = []

    def proc():
        for i, p in enumerate(priorities):
            yield store.put(PriorityItem(p, i))
        for _ in priorities:
            item = yield store.get()
            popped.append(item.priority)

    env.run(until=env.process(proc()))
    assert popped == sorted(priorities)
