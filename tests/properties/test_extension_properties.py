"""Property-based tests for the extension subsystems."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import DEFAULT_CALIBRATION
from repro.serving.loadgen import BurstyArrivals, DiurnalArrivals
from repro.sim import Environment, Gauge
from repro.vision.video import (
    Video,
    keyframe_sample_indices,
    uniform_sample_indices,
    video_decode_cost,
)

CAL = DEFAULT_CALIBRATION


@st.composite
def videos(draw):
    return Video(
        width=draw(st.integers(min_value=64, max_value=3840)),
        height=draw(st.integers(min_value=64, max_value=2160)),
        fps=draw(st.sampled_from([24.0, 30.0, 60.0])),
        duration_seconds=draw(st.floats(min_value=0.5, max_value=60.0,
                                        allow_nan=False, allow_infinity=False)),
        bitrate_bps=draw(st.floats(min_value=1e5, max_value=5e7,
                                   allow_nan=False, allow_infinity=False)),
        gop_frames=draw(st.integers(min_value=1, max_value=300)),
    )


@given(video=videos(), count=st.integers(min_value=1, max_value=64))
@settings(max_examples=80, deadline=None)
def test_video_sampling_invariants(video, count):
    """Samples are in bounds, sorted, and decode work is consistent."""
    samples = uniform_sample_indices(video, count)
    assert 1 <= len(samples) <= min(count, video.frame_count)
    indices = [s.index for s in samples]
    assert indices == sorted(indices)
    for sample in samples:
        assert 0 <= sample.keyframe_index <= sample.index < video.frame_count
        assert sample.keyframe_index % video.gop_frames == 0
        assert 1 <= sample.frames_to_decode <= video.gop_frames


@given(video=videos(), count=st.integers(min_value=1, max_value=32))
@settings(max_examples=60, deadline=None)
def test_video_decode_cost_invariants(video, count):
    """Decoded frames are bounded by the clip; keyframe sampling never
    costs more than uniform sampling of the same count."""
    uniform = video_decode_cost(video, uniform_sample_indices(video, count), CAL)
    keyed = video_decode_cost(video, keyframe_sample_indices(video, count), CAL)
    assert 0 < uniform.decoded_frames <= video.frame_count
    assert uniform.decoded_frames >= uniform.sampled_frames
    assert keyed.total_seconds <= uniform.total_seconds * 1.0001
    assert keyed.amplification == 1.0


@given(
    base=st.floats(min_value=1, max_value=1e4, allow_nan=False, allow_infinity=False),
    burst_mult=st.floats(min_value=1.1, max_value=50,
                         allow_nan=False, allow_infinity=False),
    base_s=st.floats(min_value=0.01, max_value=10, allow_nan=False,
                     allow_infinity=False),
    burst_s=st.floats(min_value=0.01, max_value=10, allow_nan=False,
                      allow_infinity=False),
    t=st.floats(min_value=0, max_value=1000, allow_nan=False, allow_infinity=False),
)
@settings(max_examples=80, deadline=None)
def test_bursty_rate_is_one_of_the_two_phases(base, burst_mult, base_s, burst_s, t):
    arrivals = BurstyArrivals(base_rate=base, burst_rate=base * burst_mult,
                              base_seconds=base_s, burst_seconds=burst_s)
    rate = arrivals.rate_at(t)
    assert rate in (arrivals.base_rate, arrivals.burst_rate)
    assert arrivals.base_rate <= arrivals.mean_rate <= arrivals.burst_rate


@given(
    mean=st.floats(min_value=1, max_value=1e5, allow_nan=False, allow_infinity=False),
    swing=st.floats(min_value=0, max_value=0.99, allow_nan=False,
                    allow_infinity=False),
    t=st.floats(min_value=0, max_value=1e4, allow_nan=False, allow_infinity=False),
)
@settings(max_examples=80, deadline=None)
def test_diurnal_rate_bounded_and_positive(mean, swing, t):
    arrivals = DiurnalArrivals(mean, swing=swing, period_seconds=60)
    rate = arrivals.rate_at(t)
    assert mean * (1 - swing) - 1e-6 <= rate <= mean * (1 + swing) + 1e-6
    assert rate > 0


@given(levels=st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=10, allow_nan=False,
                  allow_infinity=False),  # hold duration
        st.floats(min_value=-100, max_value=100, allow_nan=False,
                  allow_infinity=False),  # new level
    ),
    min_size=1, max_size=30,
))
@settings(max_examples=60, deadline=None)
def test_gauge_time_average_bounded_by_extremes(levels):
    env = Environment()
    gauge = Gauge(env, initial=0.0)

    def proc():
        for hold, value in levels:
            yield env.timeout(hold)
            gauge.set(value)
        yield env.timeout(0.5)

    env.run(until=env.process(proc()))
    seen = [0.0] + [value for _, value in levels]
    avg = gauge.time_average()
    assert min(seen) - 1e-9 <= avg <= max(seen) + 1e-9
