"""All four runner entry points accept one Workload; legacy kwargs shim.

The api_redesign contract: ``run_experiment``, ``run_open_loop``,
``run_face_pipeline``, and ``run_fleet_experiment`` all take the same
``Workload`` object, and the legacy ``rate=``/``dataset=`` spellings
keep working behind ``DeprecationWarning`` shims whose RNG draws are
bit-identical to the old inline generators.
"""

import warnings

import pytest

from repro.apps import FacePipelineConfig
from repro.core import ServerConfig
from repro.serving import ExperimentConfig, run_experiment, run_face_pipeline, run_open_loop
from repro.serving.fleet import run_fleet_experiment
from repro.vision import ImageNetLikeDataset, ZipfDataset, reference_dataset
from repro.vision.datasets import VideoFrameDataset
from repro.workload import Workload

SERVER = ServerConfig(model="resnet-50", preprocess_batch_size=64)

SMALL = dict(warmup_requests=50, measure_requests=200)


def open_loop_config(**overrides):
    params = dict(server=SERVER, dataset=reference_dataset("medium"),
                  seed=3, **SMALL)
    params.update(overrides)
    return ExperimentConfig(**params)


class TestOpenLoopShim:
    def test_legacy_rate_warns(self):
        with pytest.warns(DeprecationWarning, match="Workload.constant"):
            run_open_loop(open_loop_config(), 800.0)

    def test_legacy_rate_bit_identical_to_constant_workload(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_open_loop(open_loop_config(), 800.0)
        modern = run_open_loop(open_loop_config(),
                               workload=Workload.constant(800.0))
        assert legacy.metrics == modern.metrics

    def test_both_styles_rejected(self):
        with pytest.raises(ValueError):
            run_open_loop(open_loop_config(), 800.0,
                          workload=Workload.constant(800.0))

    def test_neither_style_rejected(self):
        with pytest.raises(ValueError):
            run_open_loop(open_loop_config())

    def test_config_can_carry_the_workload(self):
        explicit = run_open_loop(open_loop_config(),
                                 workload=Workload.constant(800.0))
        via_config = run_open_loop(
            open_loop_config(workload=Workload.constant(800.0)))
        assert explicit.metrics == via_config.metrics

    def test_phase_counts_surface_in_extras(self):
        workload = Workload.diurnal(800.0, swing=0.6, period_seconds=10.0)
        result = run_open_loop(open_loop_config(), workload=workload)
        phase_keys = [key for key in result.metrics.extras
                      if key.startswith("workload_phase_")]
        assert phase_keys  # diurnal arrivals are phase-stamped
        total = sum(result.metrics.extras[key] for key in phase_keys)
        assert total == result.metrics.completed

    def test_legacy_run_has_no_phase_extras(self):
        result = run_open_loop(open_loop_config(),
                               workload=Workload.constant(800.0))
        assert not any(key.startswith("workload_phase_")
                       for key in result.metrics.extras)


class TestClosedLoopWorkload:
    def test_workload_dataset_drives_closed_loop(self):
        dataset = ZipfDataset(ImageNetLikeDataset(), catalog_size=16, skew=1.0)
        direct = run_experiment(
            ExperimentConfig(server=SERVER, dataset=dataset,
                             concurrency=32, seed=1, **SMALL))
        via_workload = run_experiment(
            ExperimentConfig(server=SERVER, concurrency=32, seed=1, **SMALL),
            workload=Workload.constant(1.0, dataset=dataset))
        assert direct.metrics == via_workload.metrics


class TestFleetShim:
    def run(self, **kwargs):
        return run_fleet_experiment(
            SERVER, node_count=2, seed=2, warmup_requests=50,
            measure_requests=200, max_sim_seconds=30.0, **kwargs)

    def test_legacy_rate_warns(self):
        with pytest.warns(DeprecationWarning, match="Workload.constant"):
            self.run(offered_rate=2000.0)

    def test_legacy_rate_bit_identical_to_constant_workload(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = self.run(offered_rate=2000.0)
        modern = self.run(workload=Workload.constant(2000.0))
        assert legacy.metrics == modern.metrics
        assert legacy.dispatched_per_node == modern.dispatched_per_node
        assert legacy.offered_rate == modern.offered_rate

    def test_both_styles_rejected(self):
        with pytest.raises(ValueError):
            self.run(offered_rate=2000.0, workload=Workload.constant(2000.0))

    def test_neither_style_rejected(self):
        with pytest.raises(ValueError):
            self.run()

    def test_flash_workload_runs_and_labels_rate(self):
        workload = Workload.flash_crowd(
            2000.0, bursts=[(5.0, 5.0, 2.0)], duration_seconds=20.0)
        result = self.run(workload=workload)
        assert result.offered_rate == pytest.approx(
            workload.offered_rate_hint())
        assert result.metrics.completed > 0


class TestFacePipelineShim:
    def run(self, **kwargs):
        return run_face_pipeline(
            FacePipelineConfig(), concurrency=16, seed=1,
            warmup_requests=30, measure_requests=120, **kwargs)

    def test_legacy_frame_dataset_warns(self):
        with pytest.warns(DeprecationWarning, match="frame_dataset"):
            self.run(frame_dataset=VideoFrameDataset())

    def test_legacy_frame_dataset_bit_identical(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = self.run(frame_dataset=VideoFrameDataset())
        modern = self.run(
            workload=Workload.constant(1.0, dataset=VideoFrameDataset()))
        assert legacy.metrics == modern.metrics

    def test_both_styles_rejected(self):
        with pytest.raises(ValueError), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            self.run(frame_dataset=VideoFrameDataset(),
                     workload=Workload.constant(1.0))

    def test_result_records_the_workload(self):
        workload = Workload.constant(1.0, dataset=VideoFrameDataset())
        result = self.run(workload=workload)
        assert result.config.workload is workload


class TestOneWorkloadEverywhere:
    def test_single_workload_accepted_by_all_four_entry_points(self):
        dataset = ZipfDataset(ImageNetLikeDataset(), catalog_size=16, skew=0.9)
        workload = Workload.diurnal(1500.0, swing=0.5, period_seconds=20.0,
                                    dataset=dataset)
        closed = run_experiment(
            ExperimentConfig(server=SERVER, concurrency=16, seed=0, **SMALL),
            workload=workload)
        open_loop = run_open_loop(
            ExperimentConfig(server=SERVER, seed=0, **SMALL),
            workload=workload)
        faces = run_face_pipeline(
            FacePipelineConfig(), concurrency=16, seed=0,
            warmup_requests=30, measure_requests=120, workload=workload)
        fleet = run_fleet_experiment(
            SERVER, node_count=2, seed=0, warmup_requests=50,
            measure_requests=200, max_sim_seconds=30.0, workload=workload)
        for result in (closed, open_loop, faces):
            assert result.metrics.completed > 0
        assert fleet.metrics.completed > 0
