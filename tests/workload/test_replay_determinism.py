"""Serial-vs-parallel byte identity for a trace-replayed sweep.

The acceptance bar for the trace subsystem: a synthesized 24 h
diurnal+flash day, replayed through the open-loop runner, must produce
bit-identical result rows whether the sweep executes serially or across
worker processes.  Any hidden global RNG use, dict-ordering dependence,
or worker-local state would break the byte comparison.
"""

import json

import pytest

from repro.core import ServerConfig
from repro.parallel import ParallelConfig, run_sweep
from repro.parallel.tasks import ExperimentPoint, run_experiment_point
from repro.serving import ExperimentConfig
from repro.vision import ImageNetLikeDataset, ZipfDataset
from repro.workload import DAY_SECONDS, Workload, synthesize_trace, trace_digest

SERVER = ServerConfig(model="resnet-50", preprocess_batch_size=64)


def day_recipe():
    """A full simulated day: diurnal swing plus an evening flash crowd.

    The mean rate is tiny (a couple of thousand events over 86 400 s) so
    replay stays fast while still exercising every phase label.
    """
    return Workload.flash_crowd(
        0.02,
        bursts=[(60_000.0, 1_800.0, 6.0)],
        ramp_seconds=300.0,
        swing=0.5,
        dataset=ZipfDataset(ImageNetLikeDataset(), catalog_size=32, skew=1.0),
        duration_seconds=DAY_SECONDS,
        name="day",
    )


@pytest.fixture(scope="module")
def day_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "day.jsonl.gz"
    synthesize_trace(day_recipe(), str(path), seed=13)
    return str(path)


def replay_points(trace_path):
    workload = Workload.replay(trace_path)
    return [
        ExperimentPoint(
            config=ExperimentConfig(
                server=SERVER,
                seed=seed,
                warmup_requests=0,
                measure_requests=1_000_000,
                max_sim_seconds=2.0 * DAY_SECONDS,
            ),
            workload=workload,
            tags=(("seed", seed),),
        )
        for seed in (0, 1)
    ]


class TestReplayDeterminism:
    def test_synthesis_is_byte_stable(self, day_trace, tmp_path):
        again = tmp_path / "again.jsonl.gz"
        synthesize_trace(day_recipe(), str(again), seed=13)
        assert trace_digest(str(again)) == trace_digest(day_trace)

    def test_serial_and_parallel_rows_are_byte_identical(self, day_trace):
        serial = run_sweep(
            run_experiment_point,
            replay_points(day_trace),
            ParallelConfig(serial=True),
        )
        parallel = run_sweep(
            run_experiment_point,
            replay_points(day_trace),
            ParallelConfig(workers=2),
        )
        assert serial.mode == "serial"
        assert parallel.mode == "parallel"
        assert json.dumps(serial.values, sort_keys=True) == json.dumps(
            parallel.values, sort_keys=True
        )
        # The replay actually consumed the day: every row measured events.
        for row in serial.values:
            assert row["completed"] > 0
