"""Tests for composable arrival-rate models."""

import pytest

from repro.workload import (
    DAY_SECONDS,
    ConstantRate,
    DiurnalCurve,
    FlashCrowd,
    Region,
    RegionalMix,
    Superpose,
    model_from_dict,
)


class TestConstantRate:
    def test_rate_is_flat(self):
        model = ConstantRate(120.0)
        assert model.rate_at(0.0) == 120.0
        assert model.rate_at(1e6) == 120.0
        assert model.peak_rate() == 120.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantRate(0.0)
        with pytest.raises(ValueError):
            ConstantRate(-5.0)


class TestDiurnalCurve:
    def test_trough_at_zero_peak_at_half_period(self):
        model = DiurnalCurve(100.0, swing=0.5, period_seconds=DAY_SECONDS)
        assert model.rate_at(0.0) == pytest.approx(50.0)
        assert model.rate_at(DAY_SECONDS / 2) == pytest.approx(150.0)
        assert model.peak_rate() == pytest.approx(150.0)

    def test_mean_over_full_period_is_mean_rate(self):
        model = DiurnalCurve(80.0, swing=0.7, period_seconds=3600.0)
        assert model.mean_rate(3600.0, samples=4096) == pytest.approx(80.0, rel=0.01)

    def test_phase_offset_shifts_the_curve(self):
        base = DiurnalCurve(100.0, swing=0.5, period_seconds=3600.0)
        shifted = DiurnalCurve(100.0, swing=0.5, period_seconds=3600.0,
                               phase_offset_seconds=1800.0)
        assert shifted.rate_at(0.0) == pytest.approx(base.rate_at(1800.0))

    def test_phases_partition_day_and_night(self):
        model = DiurnalCurve(100.0, swing=0.5, period_seconds=DAY_SECONDS)
        assert model.phase_at(0.0) == "night"
        assert model.phase_at(DAY_SECONDS / 2) == "day"

    def test_swing_bounds(self):
        with pytest.raises(ValueError):
            DiurnalCurve(100.0, swing=1.0)
        with pytest.raises(ValueError):
            DiurnalCurve(100.0, swing=-0.1)


class TestFlashCrowd:
    def make(self, **kwargs):
        defaults = dict(bursts=[(100.0, 50.0, 5.0)], ramp_seconds=10.0)
        defaults.update(kwargs)
        return FlashCrowd(ConstantRate(100.0), **defaults)

    def test_burst_multiplies_base(self):
        model = self.make()
        assert model.rate_at(50.0) == pytest.approx(100.0)
        assert model.rate_at(125.0) == pytest.approx(500.0)
        assert model.rate_at(300.0) == pytest.approx(100.0)

    def test_ramp_is_linear(self):
        model = self.make()
        # Halfway up the 10 s lead-in ramp: halfway between 1x and 5x.
        assert model.rate_at(95.0) == pytest.approx(300.0)
        # Halfway down the decay ramp after the burst window.
        assert model.rate_at(155.0) == pytest.approx(300.0)

    def test_phase_labels_flash_window(self):
        model = self.make()
        assert model.phase_at(125.0) == "flash"
        assert model.phase_at(50.0) != "flash"

    def test_peak_rate_covers_burst(self):
        model = self.make()
        assert model.peak_rate() >= 500.0

    def test_amplitude_must_amplify(self):
        with pytest.raises(ValueError):
            self.make(bursts=[(100.0, 50.0, 1.0)])


class TestRegionalMix:
    def test_weights_scale_regions(self):
        model = RegionalMix(
            DiurnalCurve(90.0, swing=0.5, period_seconds=3600.0),
            [Region("us", weight=2.0, offset_seconds=0.0),
             Region("eu", weight=1.0, offset_seconds=1200.0)],
        )
        # Each region contributes weight x base mean; the mix sums them.
        assert model.mean_rate(3600.0, samples=4096) == pytest.approx(270.0, rel=0.02)

    def test_offsets_desynchronize_peaks(self):
        period = 3600.0
        model = RegionalMix(
            DiurnalCurve(90.0, swing=0.9, period_seconds=period),
            [Region(f"r{i}", weight=1.0, offset_seconds=i * period / 3)
             for i in range(3)],
        )
        flat = [model.rate_at(t) for t in (0.0, period / 4, period / 2)]
        spread = max(flat) - min(flat)
        single = DiurnalCurve(90.0, swing=0.9, period_seconds=period)
        single_spread = (max(single.rate_at(t) for t in (0.0, period / 4, period / 2))
                        - min(single.rate_at(t) for t in (0.0, period / 4, period / 2)))
        assert spread < single_spread  # staggering smooths the aggregate

    def test_phase_names_the_dominant_region(self):
        model = RegionalMix(
            DiurnalCurve(90.0, swing=0.9, period_seconds=3600.0),
            [Region("us", weight=1.0, offset_seconds=0.0),
             Region("eu", weight=1.0, offset_seconds=1800.0)],
        )
        assert model.phase_at(900.0).startswith("region:")


class TestSuperpose:
    def test_add_composes(self):
        combined = ConstantRate(40.0) + ConstantRate(60.0)
        assert isinstance(combined, Superpose)
        assert combined.rate_at(10.0) == pytest.approx(100.0)
        assert combined.peak_rate() == pytest.approx(100.0)


class TestRoundTrip:
    @pytest.mark.parametrize("model", [
        ConstantRate(150.0),
        DiurnalCurve(100.0, swing=0.6, period_seconds=7200.0,
                     phase_offset_seconds=600.0),
        FlashCrowd(DiurnalCurve(80.0, swing=0.4), bursts=[(30.0, 10.0, 4.0)],
                   ramp_seconds=5.0),
        RegionalMix(DiurnalCurve(90.0, swing=0.5, period_seconds=3600.0),
                    [Region("us", weight=2.0, offset_seconds=0.0),
                     Region("eu", weight=1.0, offset_seconds=1200.0)]),
    ])
    def test_describe_round_trips(self, model):
        rebuilt = model_from_dict(model.describe())
        for t in (0.0, 17.3, 1000.0, 40000.0):
            assert rebuilt.rate_at(t) == pytest.approx(model.rate_at(t))
            assert rebuilt.phase_at(t) == model.phase_at(t)

    def test_unknown_kind_returns_none(self):
        # A trace from a newer format must still replay; the envelope
        # is advisory, so unknown kinds degrade to None rather than fail.
        assert model_from_dict({"kind": "nope"}) is None


class TestMeanRate:
    def test_constant_mean_is_exact(self):
        assert ConstantRate(42.0).mean_rate(100.0) == pytest.approx(42.0)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            ConstantRate(1.0).mean_rate(0.0)
