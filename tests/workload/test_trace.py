"""Tests for the JSONL(+gzip) trace record/replay format."""

import gzip
import json

import pytest

from repro.workload import (
    TRACE_FORMAT,
    TraceEvent,
    TraceMeta,
    describe_trace,
    read_trace,
    read_trace_meta,
    trace_digest,
    write_trace,
)

EVENTS = [
    TraceEvent(0.25, phase="night"),
    TraceEvent(1.5, key=3, user=7, state="burst", phase="day"),
    TraceEvent(1.5, key=0, user=7, state="burst", phase="day"),
    TraceEvent(9.75, key=12, phase="flash"),
]


def write_sample(path, events=None):
    meta = TraceMeta(name="sample", seed=11, duration_seconds=10.0,
                     workload={"name": "sample"})
    return write_trace(str(path), meta, events if events is not None else EVENTS)


class TestRoundTrip:
    @pytest.mark.parametrize("suffix", [".jsonl", ".jsonl.gz"])
    def test_events_round_trip(self, tmp_path, suffix):
        path = tmp_path / f"trace{suffix}"
        count = write_sample(path)
        assert count == len(EVENTS)
        meta, events = read_trace(str(path))
        assert meta.name == "sample"
        assert meta.seed == 11
        assert meta.duration_seconds == 10.0
        assert list(events) == EVENTS

    def test_header_carries_format(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_sample(path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == TRACE_FORMAT

    def test_read_meta_only(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        write_sample(path)
        meta = read_trace_meta(str(path))
        assert meta.name == "sample"
        assert meta.workload == {"name": "sample"}

    def test_nulls_omitted_from_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_sample(path, [TraceEvent(0.5, phase="day")])
        line = json.loads(path.read_text().splitlines()[1])
        assert set(line) == {"t", "p"}


class TestDeterminism:
    def test_same_events_same_bytes(self, tmp_path):
        a = tmp_path / "a.jsonl.gz"
        b = tmp_path / "b.jsonl.gz"
        write_sample(a)
        write_sample(b)
        # Byte-identical even though the output *paths* differ — the
        # gzip header embeds neither filename nor mtime.
        assert a.read_bytes() == b.read_bytes()

    def test_digest_ignores_compression(self, tmp_path):
        plain = tmp_path / "t.jsonl"
        packed = tmp_path / "t.jsonl.gz"
        write_sample(plain)
        write_sample(packed)
        assert trace_digest(str(plain)) == trace_digest(str(packed))
        assert plain.read_bytes() == gzip.decompress(packed.read_bytes())

    def test_digest_changes_with_content(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        write_sample(a)
        write_sample(b, EVENTS[:-1])
        assert trace_digest(str(a)) != trace_digest(str(b))


class TestValidation:
    def test_rejects_time_travel(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with pytest.raises(ValueError):
            write_sample(path, [TraceEvent(5.0), TraceEvent(4.0)])

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"format": "other-format"}\n')
        with pytest.raises(ValueError):
            read_trace(str(path))


class TestDescribe:
    def test_describe_counts_everything(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        write_sample(path)
        stats = describe_trace(str(path))
        assert stats["events"] == 4
        assert stats["first_t"] == 0.25
        assert stats["last_t"] == 9.75
        assert stats["phases"] == {"day": 2, "flash": 1, "night": 1}
        assert stats["session_states"] == {"burst": 2}
        assert stats["users"] == 1
        assert stats["distinct_items"] == 3
        assert stats["digest"] == trace_digest(str(path))
