"""Tests for the unified Workload spec: validation, parsing, sources."""

import pytest

from repro.sim import RandomStreams
from repro.vision import ImageNetLikeDataset, ZipfDataset, reference_dataset
from repro.workload import (
    ConstantRate,
    ConstantSource,
    DiurnalCurve,
    MarkovSessionModel,
    ReplaySource,
    SyntheticSource,
    Workload,
    read_trace_meta,
    synthesize_trace,
    trace_digest,
)


def zipf(catalog=32, skew=1.0):
    return ZipfDataset(ImageNetLikeDataset(), catalog_size=catalog, skew=skew)


class TestValidation:
    def test_needs_arrivals_or_trace(self):
        with pytest.raises(ValueError):
            Workload(name="empty")

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            Workload.constant(10.0, duration_seconds=0.0)

    def test_replay_forbids_sessions(self, tmp_path):
        path = tmp_path / "t.jsonl"
        synthesize_trace(Workload.constant(5.0, duration_seconds=2.0), str(path))
        with pytest.raises(ValueError):
            Workload(name="bad", trace_path=str(path),
                     sessions=MarkovSessionModel())

    def test_with_overrides(self):
        base = Workload.constant(10.0)
        longer = base.with_overrides(duration_seconds=60.0)
        assert longer.duration_seconds == 60.0
        assert longer.arrivals is base.arrivals
        assert base.duration_seconds is None  # frozen original untouched


class TestConstructors:
    def test_constant(self):
        workload = Workload.constant(150.0)
        assert isinstance(workload.arrivals, ConstantRate)
        assert workload.offered_rate_hint() == 150.0

    def test_diurnal(self):
        workload = Workload.diurnal(100.0, swing=0.6, period_seconds=3600.0)
        assert isinstance(workload.arrivals, DiurnalCurve)
        assert workload.offered_rate_hint() == pytest.approx(100.0, rel=0.02)

    def test_flash_crowd_with_swing_layers_diurnal(self):
        workload = Workload.flash_crowd(
            100.0, bursts=[(60.0, 30.0, 5.0)], swing=0.5)
        assert isinstance(workload.arrivals.base, DiurnalCurve)

    def test_sessions_amplify_rate_hint(self):
        plain = Workload.diurnal(10.0, duration_seconds=100.0)
        sessioned = Workload.diurnal(10.0, duration_seconds=100.0,
                                     sessions=MarkovSessionModel())
        amplification = sessioned.offered_rate_hint() / plain.offered_rate_hint()
        assert amplification == pytest.approx(
            sessioned.sessions.mean_session_length, rel=1e-6)


class TestParse:
    def test_constant(self):
        workload = Workload.parse("constant:rate=150,duration=60")
        assert isinstance(workload.arrivals, ConstantRate)
        assert workload.arrivals.rate == 150.0
        assert workload.duration_seconds == 60.0

    def test_diurnal_with_zipf(self):
        workload = Workload.parse("diurnal:mean=80,swing=0.3,zipf=1.1,catalog=64")
        assert isinstance(workload.dataset, ZipfDataset)
        assert workload.dataset.catalog_size == 64
        assert workload.dataset.skew == 1.1

    def test_flash_with_sessions(self):
        workload = Workload.parse("flash:mean=50,at=100,len=30,peak=4,sessions=1")
        assert workload.sessions is not None

    def test_regions(self):
        workload = Workload.parse("regions:mean=90,count=3,period=3600")
        assert len(workload.arrivals.regions) == 3

    def test_trace_path_is_replay(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        synthesize_trace(Workload.constant(5.0, duration_seconds=2.0), str(path))
        workload = Workload.parse(str(path))
        assert workload.is_replay

    @pytest.mark.parametrize("spec", [
        "constant:rate=0x10",
        "constant:",
        "diurnal:swing=0.5",
        "flash:mean=10",
        "bogus:rate=1",
        "constant:rate=10,unknown=1",
        "constant:rate=10,extra",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            Workload.parse(spec)


class TestSourceDispatch:
    def test_plain_constant_uses_legacy_parity_source(self):
        source = Workload.constant(100.0).source(RandomStreams(0))
        assert isinstance(source, ConstantSource)

    def test_diurnal_uses_synthetic_source(self):
        source = Workload.diurnal(100.0).source(RandomStreams(0))
        assert isinstance(source, SyntheticSource)

    def test_constant_with_sessions_uses_synthetic_source(self):
        workload = Workload(name="w", arrivals=ConstantRate(10.0),
                            sessions=MarkovSessionModel())
        assert isinstance(workload.source(RandomStreams(0)), SyntheticSource)

    def test_trace_uses_replay_source(self, tmp_path):
        path = tmp_path / "t.jsonl"
        synthesize_trace(Workload.constant(5.0, duration_seconds=2.0), str(path))
        source = Workload.replay(str(path)).source(RandomStreams(0))
        assert isinstance(source, ReplaySource)

    def test_source_draws_respect_duration(self):
        source = Workload.constant(100.0, duration_seconds=1.0).source(
            RandomStreams(0))
        now, drawn = 0.0, 0
        while True:
            interval = source.next_interval(now)
            if interval is None:
                break
            now += interval
            source.next_image()
            drawn += 1
        assert now <= 1.0  # every accepted arrival is inside the window
        assert 50 <= drawn <= 200  # ~100 expected


class TestSynthesize:
    def test_same_seed_same_bytes(self, tmp_path):
        workload = Workload.flash_crowd(
            2.0, bursts=[(10.0, 5.0, 4.0)], swing=0.5, period_seconds=60.0,
            dataset=zipf(), duration_seconds=60.0)
        a = tmp_path / "a.jsonl.gz"
        b = tmp_path / "b.jsonl.gz"
        assert synthesize_trace(workload, str(a), seed=5) == \
            synthesize_trace(workload, str(b), seed=5)
        assert a.read_bytes() == b.read_bytes()

    def test_different_seed_differs(self, tmp_path):
        workload = Workload.constant(20.0, duration_seconds=10.0)
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        synthesize_trace(workload, str(a), seed=1)
        synthesize_trace(workload, str(b), seed=2)
        assert trace_digest(str(a)) != trace_digest(str(b))

    def test_header_embeds_recipe(self, tmp_path):
        workload = Workload.diurnal(5.0, swing=0.4, period_seconds=30.0,
                                    dataset=zipf(catalog=16),
                                    duration_seconds=30.0)
        path = tmp_path / "t.jsonl.gz"
        synthesize_trace(workload, str(path), seed=9)
        meta = read_trace_meta(str(path))
        assert meta.seed == 9
        assert meta.workload["arrivals"]["kind"] == "DiurnalCurve"
        assert meta.workload["dataset"]["catalog_size"] == 16

    def test_replay_rebuilds_dataset_from_header(self, tmp_path):
        workload = Workload.constant(20.0, dataset=zipf(catalog=16),
                                     duration_seconds=5.0)
        path = tmp_path / "t.jsonl"
        synthesize_trace(workload, str(path))
        replay = Workload.replay(str(path))
        assert isinstance(replay.dataset, ZipfDataset)
        assert replay.dataset.catalog_size == 16

    def test_unbounded_workload_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            synthesize_trace(Workload.constant(5.0), str(tmp_path / "t.jsonl"))


class TestReplaySource:
    def test_replay_preserves_event_times_and_phases(self, tmp_path):
        workload = Workload.diurnal(10.0, swing=0.8, period_seconds=20.0,
                                    dataset=zipf(catalog=8),
                                    duration_seconds=20.0)
        path = tmp_path / "t.jsonl.gz"
        synthesize_trace(workload, str(path), seed=2)

        from repro.workload import read_trace

        _, events = read_trace(str(path))
        events = list(events)
        source = Workload.replay(str(path)).source(RandomStreams(0))
        now = 0.0
        replayed = []
        while True:
            interval = source.next_interval(now)
            if interval is None:
                break
            now += interval
            source.next_image()
            replayed.append((now, source.last_phase))
        assert len(replayed) == len(events)
        for (t, phase), event in zip(replayed, events):
            assert t == pytest.approx(event.t, abs=1e-9)
            assert phase == event.phase

    def test_replay_keys_map_to_catalog_images(self, tmp_path):
        dataset = zipf(catalog=8)
        workload = Workload.constant(20.0, dataset=dataset,
                                     duration_seconds=5.0)
        path = tmp_path / "t.jsonl"
        synthesize_trace(workload, str(path), seed=1)
        source = Workload.replay(str(path)).source(RandomStreams(0))
        replay_dataset = source.dataset
        while source.next_interval(0.0) is not None:
            image = source.next_image()
            assert image is replay_dataset.catalog[source.last_key]


class TestResolvedDataset:
    def test_explicit_dataset_wins(self):
        dataset = zipf()
        workload = Workload.constant(10.0, dataset=dataset)
        assert workload.resolved_dataset(reference_dataset("small")) is dataset

    def test_falls_back_to_default_then_reference(self):
        workload = Workload.constant(10.0)
        default = reference_dataset("large")
        assert workload.resolved_dataset(default) is default
        assert workload.resolved_dataset(None) is not None
