"""Flash-crowd scenario: scale-up, load shedding, and SLO burn.

The tentpole integration test: a diurnal baseline with a flash crowd
drives an :class:`AutoscaledFleet` through a
:class:`~repro.serving.loadgen.WorkloadClient`.  The burst must (a)
trigger scale-out, (b) move the admission-control shed counter once the
backlog cap is hit, and (c) spike the short-window SLO burn rate in
:class:`SloTracker` relative to the pre-flash baseline.
"""

from repro.core import MetricsCollector, ServerConfig
from repro.core.request import OUTCOME_OK, OUTCOME_SHED
from repro.serving import AutoscaledFleet, AutoscalerPolicy, WorkloadClient
from repro.sim import Environment, RandomStreams
from repro.telemetry import SloConfig, SloTracker
from repro.vision import reference_dataset
from repro.workload import Workload

SERVER = ServerConfig(model="resnet-50", preprocess_batch_size=64)

FLASH_START = 12.0
FLASH_LEN = 8.0


class Scenario:
    def __init__(self, max_backlog):
        self.env = Environment()
        collector = MetricsCollector()
        collector.arm(0.0)
        # Baseline p99 sits around 0.7 s on one node, so a 1 s objective
        # is met at baseline and blown through during the flash.
        self.tracker = SloTracker(SloConfig(latency_objective_seconds=1.0,
                                            burn_windows_seconds=(5.0,)))
        self.completed = []

        def observe(request):
            self.completed.append(request)
            self.tracker.observe(request.latency, self.env.now,
                                 ok=request.outcome == OUTCOME_OK)

        policy = AutoscalerPolicy(min_nodes=1, max_nodes=4,
                                  provision_delay_seconds=2.0,
                                  interval_seconds=0.5,
                                  max_backlog=max_backlog)
        self.fleet = AutoscaledFleet(self.env, SERVER, policy,
                                     metrics=collector, on_complete=observe)
        # ~20% of one node's capacity at baseline; 12x that in the flash.
        workload = Workload.flash_crowd(
            800.0,
            bursts=[(FLASH_START, FLASH_LEN, 12.0)],
            ramp_seconds=1.0,
            duration_seconds=30.0,
        )
        source = workload.source(RandomStreams(0),
                                 default_dataset=reference_dataset("medium"))
        self.client = WorkloadClient(self.env, self.fleet, source,
                                     on_complete=self._watch_shed)

    def _watch_shed(self, request):
        # Shed requests complete instantly via the client-visible done
        # event, not the server's on_complete, so feed them to the
        # tracker here.
        if request.outcome == OUTCOME_SHED:
            self.completed.append(request)
            self.tracker.observe(0.0, self.env.now, ok=False)


class TestFlashCrowd:
    def test_flash_drives_scaleup_shedding_and_slo_burn(self):
        scenario = Scenario(max_backlog=128)
        env, fleet, tracker = scenario.env, scenario.fleet, scenario.tracker

        # Run to just before the lead-in ramp: steady 800 req/s baseline.
        # The baseline may oscillate 1<->2 nodes; record its peak so the
        # flash assertions measure growth *beyond* baseline behaviour.
        env.run(until=FLASH_START - 1.0)
        burn_before = tracker.burn_rate(5.0, env.now)
        shed_before = fleet.shed
        peak_before = max([e.active_nodes for e in fleet.events] + [1])
        assert burn_before < 1.0, "baseline must meet the SLO"

        # Run through the flash window plus the scaling reaction.
        env.run(until=FLASH_START + FLASH_LEN + 4.0)
        burn_peak = tracker.burn_rate(5.0, FLASH_START + FLASH_LEN)

        # (a) the autoscaler scaled beyond the baseline peak,
        peak_after = max(e.active_nodes for e in fleet.events)
        assert peak_after > peak_before
        # (b) admission control shed once the backlog cap was hit,
        assert fleet.shed > shed_before
        # (c) the 5 s burn rate spiked during the flash.
        assert burn_peak > burn_before
        assert burn_peak > 1.0, "flash must burn error budget faster than target"

    def test_phase_labels_flow_through_the_fleet(self):
        scenario = Scenario(max_backlog=None)
        scenario.env.run(until=FLASH_START + 3.0)
        phases = {request.workload_phase for request in scenario.completed}
        assert "flash" in phases
        assert len(phases) > 1  # baseline phase label also present

    def test_shed_requests_are_observed_as_bad(self):
        scenario = Scenario(max_backlog=64)
        scenario.env.run(until=FLASH_START + FLASH_LEN)
        assert scenario.fleet.shed > 0
        assert scenario.tracker.bad > 0
