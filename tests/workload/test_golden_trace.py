"""Golden-trace regression: the checked-in day must never drift.

``golden/day.jsonl.gz`` is a synthesized 24 h day (diurnal swing, a
noon flash crowd, Markov sessions, Zipf item popularity) committed to
the repository with its digest pinned below.  Any change to the RNG
stream layout, thinning loop, session chain, trace serialization, or
gzip framing shows up here as a digest mismatch — which means old
traces would no longer replay bit-identically and the format version
must be bumped instead.
"""

from pathlib import Path

from repro.vision import ImageNetLikeDataset, ZipfDataset
from repro.workload import (
    MarkovSessionModel,
    Workload,
    describe_trace,
    read_trace,
    synthesize_trace,
    trace_digest,
)

GOLDEN = Path(__file__).parent / "golden" / "day.jsonl.gz"

GOLDEN_DIGEST = "7b6a9790b7b1ba5eefaf34db385ea32424160fe2b00321b2d54069b7e7c555ef"
GOLDEN_EVENTS = 1639
GOLDEN_SEED = 7


def golden_recipe():
    """The exact spec that produced ``golden/day.jsonl.gz``."""
    return Workload.flash_crowd(
        0.001,
        bursts=[(43_200.0, 3_600.0, 8.0)],
        ramp_seconds=600.0,
        swing=0.6,
        sessions=MarkovSessionModel(),
        dataset=ZipfDataset(ImageNetLikeDataset(), catalog_size=16, skew=1.0),
        duration_seconds=86_400.0,
        name="golden-day",
    )


class TestGoldenTrace:
    def test_checked_in_trace_matches_pinned_digest(self):
        assert trace_digest(str(GOLDEN)) == GOLDEN_DIGEST

    def test_resynthesis_reproduces_the_digest(self, tmp_path):
        fresh = tmp_path / "day.jsonl.gz"
        count = synthesize_trace(golden_recipe(), str(fresh), seed=GOLDEN_SEED)
        assert count == GOLDEN_EVENTS
        assert trace_digest(str(fresh)) == GOLDEN_DIGEST
        assert fresh.read_bytes() == GOLDEN.read_bytes()

    def test_replay_consumes_every_event(self):
        meta, events = read_trace(str(GOLDEN))
        assert meta.name == "golden-day"
        assert meta.seed == GOLDEN_SEED
        assert sum(1 for _ in events) == GOLDEN_EVENTS

    def test_trace_covers_every_phase(self):
        stats = describe_trace(str(GOLDEN))
        assert set(stats["phases"]) == {"day", "night", "flash"}
        assert stats["users"] > 0  # sessions recorded user ids
