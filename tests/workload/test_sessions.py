"""Tests for the Markov per-user session model."""

import random

import pytest

from repro.workload import MarkovSessionModel, SessionState, session_model_from_dict


class TestValidation:
    def test_default_chain_is_browse_burst(self):
        model = MarkovSessionModel()
        assert set(model.states) == {"browse", "burst"}
        assert model.entry_state == "browse"

    def test_rejects_bad_state(self):
        with pytest.raises(ValueError):
            SessionState("", think_mean_seconds=1.0, exit_probability=0.1)
        with pytest.raises(ValueError):
            SessionState("a", think_mean_seconds=0.0, exit_probability=0.1)
        with pytest.raises(ValueError):
            SessionState("a", think_mean_seconds=1.0, exit_probability=0.0)

    def test_rejects_nonstochastic_row(self):
        states = [SessionState("a", think_mean_seconds=1.0, exit_probability=0.5)]
        with pytest.raises(ValueError):
            MarkovSessionModel(states, {"a": {"a": 0.9}})

    def test_rejects_unknown_transition_target(self):
        states = [SessionState("a", think_mean_seconds=1.0, exit_probability=0.5)]
        with pytest.raises(ValueError):
            MarkovSessionModel(states, {"a": {"b": 1.0}})

    def test_rejects_duplicate_states(self):
        states = [
            SessionState("a", think_mean_seconds=1.0, exit_probability=0.5),
            SessionState("a", think_mean_seconds=2.0, exit_probability=0.5),
        ]
        with pytest.raises(ValueError):
            MarkovSessionModel(states)


class TestGeneration:
    def test_first_request_at_session_start(self):
        model = MarkovSessionModel()
        t, state = next(model.requests(123.5, random.Random(0)))
        assert t == 123.5
        assert state == "browse"

    def test_times_are_nondecreasing(self):
        model = MarkovSessionModel()
        times = [t for t, _ in model.requests(10.0, random.Random(3))]
        assert times == sorted(times)

    def test_deterministic_given_seed(self):
        model = MarkovSessionModel()
        a = list(model.requests(5.0, random.Random(42)))
        b = list(model.requests(5.0, random.Random(42)))
        assert a == b

    def test_max_requests_caps_sessions(self):
        # An exit probability this low would make sessions huge; the cap
        # must bound them.
        states = [SessionState("loop", think_mean_seconds=0.01,
                               exit_probability=1e-9)]
        model = MarkovSessionModel(states, {"loop": {"loop": 1.0}},
                                   max_requests=17)
        assert len(list(model.requests(0.0, random.Random(0)))) == 17

    def test_single_state_always_that_state(self):
        states = [SessionState("only", think_mean_seconds=0.5,
                               exit_probability=0.3)]
        model = MarkovSessionModel(states)
        assert {s for _, s in model.requests(0.0, random.Random(1))} == {"only"}


class TestMeanLength:
    def test_single_state_geometric_mean(self):
        # Geometric session length: E[L] = 1 / exit_probability.
        states = [SessionState("a", think_mean_seconds=1.0, exit_probability=0.25)]
        model = MarkovSessionModel(states, {"a": {"a": 1.0}})
        assert model.mean_session_length == pytest.approx(4.0, rel=1e-6)

    def test_mean_length_capped(self):
        states = [SessionState("a", think_mean_seconds=1.0, exit_probability=0.001)]
        model = MarkovSessionModel(states, {"a": {"a": 1.0}}, max_requests=10)
        assert model.mean_session_length == 10.0

    def test_empirical_mean_matches_analytic(self):
        model = MarkovSessionModel()
        rng = random.Random(7)
        lengths = [sum(1 for _ in model.requests(0.0, rng)) for _ in range(4000)]
        empirical = sum(lengths) / len(lengths)
        assert empirical == pytest.approx(model.mean_session_length, rel=0.1)


class TestRoundTrip:
    def test_describe_round_trips(self):
        model = MarkovSessionModel()
        rebuilt = session_model_from_dict(model.describe())
        assert rebuilt.entry_state == model.entry_state
        assert rebuilt.transitions == model.transitions
        assert rebuilt.max_requests == model.max_requests
        a = list(model.requests(0.0, random.Random(9)))
        b = list(rebuilt.requests(0.0, random.Random(9)))
        assert a == b

    def test_unknown_kind_returns_none(self):
        assert session_model_from_dict({"kind": "nope"}) is None
