"""Tooling gates: ruff lint (when available) and CLI smoke tests."""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    result = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks", "examples"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_faults_help_exits_cleanly(capsys):
    with pytest.raises(SystemExit) as exit_info:
        main(["faults", "--help"])
    assert exit_info.value.code == 0
    out = capsys.readouterr().out
    assert "--downtimes" in out
    assert "--deadline-ms" in out


def test_faults_smoke_run(capsys):
    assert main([
        "faults",
        "--downtimes", "0.05",
        "--restart-ms", "400",
        "--rate", "120",
        "--requests", "200",
        "--warmup", "50",
    ]) == 0
    out = capsys.readouterr().out
    assert "goodput" in out
    assert "downtime" in out


def test_module_entrypoint_help():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0
    assert "faults" in result.stdout
