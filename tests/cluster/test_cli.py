"""CLI coverage for ``repro cluster`` and ``repro bench --cluster``."""

import json

from repro.cli import main


def test_cluster_command_runs_and_exports(tmp_path, capsys):
    out = tmp_path / "cluster.json"
    code = main([
        "cluster", "--cells", "4", "--nodes-per-cell", "2", "--shards", "2",
        "--rate", "80", "--duration", "2", "--slo-ms", "250",
        "--per-shard", "--json", str(out),
    ])
    assert code == 0
    shown = capsys.readouterr().out
    assert "8 (4 cells x 2)" in shown
    assert "per-shard" in shown
    rows = json.loads(out.read_text())
    assert rows[0]["shard_count"] == 2
    assert rows[0]["completed"] > 0
    assert rows[0]["slo_met"] is True


def test_cluster_command_replays_traces(tmp_path, capsys):
    trace = tmp_path / "mini.jsonl.gz"
    assert main([
        "workload", "synthesize",
        "--spec", "constant:rate=60,duration=2", "--out", str(trace),
    ]) == 0
    capsys.readouterr()
    assert main(["cluster", "--cells", "2", "--nodes-per-cell", "1",
                 "--workload", str(trace)]) == 0
    assert "completed" in capsys.readouterr().out


def test_cluster_workers_flag_is_not_the_sweep_flag(capsys):
    """--workers 0 means one worker per shard (process mode default)."""
    code = main([
        "cluster", "--cells", "2", "--nodes-per-cell", "1",
        "--shards", "2", "--execution", "process",
        "--rate", "40", "--duration", "1",
    ])
    assert code == 0
    assert "process, 2 worker(s)" in capsys.readouterr().out


def test_cluster_trace_and_timeseries_exports(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    series = tmp_path / "day.jsonl"
    code = main([
        "cluster", "--cells", "4", "--nodes-per-cell", "1",
        "--routing", "round_robin", "--rate", "40", "--duration", "4",
        "--slo-ms", "250",
        "--trace-out", str(trace), "--trace-sessions", "2",
        "--timeseries-out", str(series), "--timeseries-interval", "2",
    ])
    assert code == 0
    shown = capsys.readouterr().out
    assert "trace events" in shown and "time series" in shown
    data = json.loads(trace.read_text())
    assert data["traceEvents"]
    assert series.exists() and series.read_text().strip()
