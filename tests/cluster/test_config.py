"""ClusterConfig / ShardPlan validation and derived topology."""

import pytest

from repro.cluster import ClusterConfig, ShardPlan, route_hash_cell


class TestValidation:
    def test_defaults_valid(self):
        ClusterConfig().validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"cells": 0},
            {"nodes_per_cell": 0},
            {"shards": 0},
            {"routing": "random"},
            {"cell_policy": "nope"},
            {"per_node_cap": 0},
            {"gpu_count": 0},
            {"base_latency_seconds": -1e-6},
            {"jitter_latency_seconds": -1e-6},
            {"epoch_seconds": 0.0},
            {"execution": "threads"},
            {"workers": 0},
            {"fluid": True, "fluid_hot_threshold": 0},
            {"fluid": True, "fluid_hot_window_seconds": 0.0},
        ],
    )
    def test_bad_values_raise(self, overrides):
        with pytest.raises(ValueError):
            ClusterConfig(**overrides).validate()

    def test_least_backlog_needs_serial(self):
        with pytest.raises(ValueError, match="serial"):
            ClusterConfig(routing="least_backlog",
                          execution="process").validate()

    def test_least_backlog_needs_positive_latency(self):
        with pytest.raises(ValueError, match="latency"):
            ClusterConfig(routing="least_backlog",
                          base_latency_seconds=0.0).validate()

    def test_least_backlog_epoch_bounded_by_latency(self):
        with pytest.raises(ValueError, match="epoch_seconds"):
            ClusterConfig(routing="least_backlog",
                          base_latency_seconds=1e-3,
                          epoch_seconds=2e-3).validate()

    def test_with_overrides_validates(self):
        base = ClusterConfig()
        assert base.with_overrides(shards=4).shards == 4
        with pytest.raises(ValueError):
            base.with_overrides(cells=-1)


class TestShardPlan:
    def test_round_robin_deal(self):
        plan = ShardPlan.build(cells=7, shards=3)
        assert plan.shard_cells == ((0, 3, 6), (1, 4), (2, 5))
        for shard, cells in enumerate(plan.shard_cells):
            for cell in cells:
                assert plan.shard_of(cell) == shard

    def test_shards_clamped_to_cells(self):
        plan = ShardPlan.build(cells=2, shards=8)
        assert plan.shards == 2

    def test_every_cell_assigned_exactly_once(self):
        plan = ShardPlan.build(cells=13, shards=4)
        seen = sorted(cell for group in plan.shard_cells for cell in group)
        assert seen == list(range(13))


class TestTopology:
    def test_node_count(self):
        assert ClusterConfig(cells=5, nodes_per_cell=3).node_count == 15

    def test_node_ids_globally_unique_and_stable(self):
        config = ClusterConfig(cells=3, nodes_per_cell=2)
        ids = [nid for cell in range(3) for nid in config.node_ids(cell)]
        assert len(set(ids)) == len(ids)
        # Stable under repartitioning: ids derive from the topology, not
        # from any shard plan.
        assert config.with_overrides(shards=3).node_ids(1) == config.node_ids(1)
        assert config.node_ids(1) == ("c1/n0", "c1/n1")

    def test_latency_model_deterministic(self):
        config = ClusterConfig(cells=4, jitter_latency_seconds=200e-6,
                               topology_seed=7)
        assert config.ingress_latency(2) == config.ingress_latency(2)
        assert config.ingress_latency(2) >= config.base_latency_seconds
        spread = {config.ingress_latency(c) for c in range(4)}
        assert len(spread) == 4  # jitter actually differentiates cells
        other = config.with_overrides(topology_seed=8)
        assert other.ingress_latency(2) != config.ingress_latency(2)

    def test_epoch_defaults_to_min_latency(self):
        config = ClusterConfig(base_latency_seconds=250e-6)
        assert config.resolved_epoch_seconds() == 250e-6
        assert config.with_overrides(
            epoch_seconds=1e-4).resolved_epoch_seconds() == 1e-4
        # Zero-latency fabric: any positive window works; the fallback
        # keeps the epoch count low.
        assert ClusterConfig(
            base_latency_seconds=0.0).resolved_epoch_seconds() > 0


class TestHashRouting:
    def test_stable_and_in_range(self):
        for key in ("user-1", 42, "user-2"):
            cell = route_hash_cell(0, key, 8)
            assert 0 <= cell < 8
            assert route_hash_cell(0, key, 8) == cell

    def test_seed_changes_mapping(self):
        keys = [f"user-{i}" for i in range(64)]
        a = [route_hash_cell(0, k, 16) for k in keys]
        b = [route_hash_cell(1, k, 16) for k in keys]
        assert a != b

    def test_spreads_keys(self):
        cells = {route_hash_cell(0, f"user-{i}", 4) for i in range(100)}
        assert cells == {0, 1, 2, 3}
