"""Guard: ``repro.cluster`` keeps the pool-worker import rule.

Process-mode shards run :func:`repro.cluster.shards.run_shard_point`
inside ``repro.parallel`` pool workers, so the whole cluster package is
worker surface and must honour the same ``HEAVY_MODULES`` rule the
parallel package pins for itself (``tests/parallel/test_import_hygiene``).
"""

import os
import pathlib
import subprocess
import sys

import repro
from repro.parallel import HEAVY_MODULES

CHECK_SNIPPET = """
import sys
import repro.cluster             # config/records/runner: the API surface
import repro.cluster.shards      # what run_shard_point executes
import repro.cluster.bench       # the harness a CI worker runs
heavy = [name for name in {heavy!r} if name in sys.modules]
assert not heavy, f"cluster worker surface imported heavy modules: {{heavy}}"
print("clean")
"""


def test_cluster_import_surface_stays_lean():
    """Importing everything a cluster pool worker imports must not load
    any heavyweight optional dependency (fresh interpreter, like spawn)."""
    package_root = str(pathlib.Path(repro.__file__).parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (package_root, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", CHECK_SNIPPET.format(heavy=HEAVY_MODULES)],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "clean"


def test_cluster_package_has_no_static_heavy_imports():
    """No module under repro.cluster may even mention a heavy import."""
    import repro.cluster

    package_dir = pathlib.Path(repro.cluster.__file__).parent
    for path in package_dir.glob("*.py"):
        source = path.read_text()
        for name in HEAVY_MODULES:
            assert f"import {name}" not in source, (
                f"{path.name} imports {name}; plotting/analysis belongs "
                "in the parent process, not in shard workers"
            )
