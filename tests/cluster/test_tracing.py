"""Cluster distributed-tracing tests: sampling, merge, Perfetto export.

A traced cluster run follows whole user *sessions* across cells: under
round-robin routing consecutive requests of one session land in
different cells, so a single trace id must span >= 2 cells in the merged
timeline, stitched by session flow arrows.  The exported trace is
invariant to execution mode and shard count, observer-neutral, and
pinned as a golden artifact.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.cluster import ClusterConfig, run_cluster_experiment
from repro.cluster.tracing import (
    TraceSampler,
    cluster_trace_events,
    merge_trace_records,
)
from repro.core.config import ServerConfig
from repro.telemetry import SloConfig
from repro.workload import MarkovSessionModel, Workload
from repro.workload.arrivals import ConstantRate

GOLDEN = Path(__file__).parent / "golden" / "cluster_trace.json"
GOLDEN_DAY = Path(__file__).parent.parent / "workload" / "golden" / "day.jsonl.gz"
GOLDEN_DIGEST = "ad20c841ed5ab548290492eaa0f783bc9ce1bc4a7d36aea6259d00519e3f8e69"

SERVER = ServerConfig(model="resnet-50", preprocess_batch_size=64)

CLUSTER = ClusterConfig(cells=4, nodes_per_cell=1, routing="round_robin")


def session_workload(duration: float = 8.0) -> Workload:
    return Workload(
        name="traced-sessions",
        arrivals=ConstantRate(40.0),
        sessions=MarkovSessionModel(),
        duration_seconds=duration,
    )


def run_traced(config: ClusterConfig = CLUSTER, *, sessions: int = 3,
               interval: float = 2.0, **overrides):
    return run_cluster_experiment(
        SERVER, config, session_workload(), seed=3,
        slo=SloConfig(latency_objective_seconds=0.2),
        trace_sessions=sessions,
        timeseries_interval=interval,
        **overrides,
    )


class TestTraceSampler:
    def test_admits_first_n_sessions_in_stream_order(self):
        sampler = TraceSampler(seed=0, max_sessions=2)

        class A:
            def __init__(self, seq, user):
                self.seq, self.user = seq, user

        first = sampler.trace_for(A(0, "alice"))
        again = sampler.trace_for(A(1, "alice"))
        second = sampler.trace_for(A(2, "bob"))
        third = sampler.trace_for(A(3, "carol"))
        assert first is not None and second is not None
        assert third is None  # cap reached
        assert again.trace_id == first.trace_id  # same session, same trace
        assert again.span_id != first.span_id  # distinct request spans
        assert set(sampler.sessions.values()) == {"alice", "bob"}

    def test_is_pure_function_of_the_stream(self):
        class A:
            def __init__(self, seq):
                self.seq, self.user = seq, f"u{seq % 5}"

        def ids():
            sampler = TraceSampler(seed=7, max_sessions=3)
            return [
                (t.trace_id, t.span_id) if t is not None else None
                for t in (sampler.trace_for(A(i)) for i in range(20))
            ]

        assert ids() == ids()


class TestClusterTracing:
    def test_traces_cross_cells_with_flow_arrows(self):
        result = run_traced()
        assert result.traces
        cells = {}
        for record in result.traces:
            cells.setdefault(record.trace_id, set()).add(record.cell_id)
        # Round-robin routing spreads one session across cells.
        assert any(len(spread) >= 2 for spread in cells.values())

        events = cluster_trace_events(result.traces)
        slices = [e for e in events if e.get("ph") == "X"]
        flows_out = [e for e in events if e.get("ph") == "s"]
        flows_in = [e for e in events if e.get("ph") == "f"]
        assert slices and flows_out and flows_in
        # Session arrows chain requests of one trace; at least one must
        # hop between two different cell process groups.
        pid_of = {}
        for event in flows_out + flows_in:
            pid_of.setdefault((event["cat"], event["id"]), set()).add(event["pid"])
        session_hops = [
            pids for (cat, _), pids in pid_of.items()
            if cat == "session" and len(pids) >= 2
        ]
        assert session_hops, "no session flow arrow crosses cells"

    def test_tracing_is_observer_neutral(self):
        base = run_cluster_experiment(SERVER, CLUSTER, session_workload(),
                                      seed=3)
        traced = run_traced()
        assert traced.metrics == base.metrics
        assert traced.issued == base.issued

    def test_golden_day_tracing_is_observer_neutral(self):
        """The checked-in 24 h day, traced + windowed, changes nothing."""
        config = ClusterConfig(cells=50, nodes_per_cell=2,
                               routing="round_robin")
        day = Workload.replay(str(GOLDEN_DAY))
        base = run_cluster_experiment(SERVER, config, day, seed=0)
        observed = run_cluster_experiment(
            SERVER, config, day, seed=0,
            slo=SloConfig(latency_objective_seconds=0.2),
            trace_sessions=4, timeseries_interval=3600.0,
        )
        assert observed.metrics == base.metrics
        assert observed.issued == base.issued
        assert observed.traces
        assert observed.timeseries is not None

    def test_trace_invariant_to_shards_and_execution(self, tmp_path):
        one = run_traced()
        sharded = run_traced(CLUSTER.with_overrides(shards=4))
        process = run_traced(
            CLUSTER.with_overrides(shards=2, execution="process", workers=2))
        paths = []
        for tag, result in (("one", one), ("sharded", sharded),
                            ("process", process)):
            path = tmp_path / f"{tag}.json"
            result.write_trace(str(path))
            paths.append(path.read_bytes())
        assert paths[0] == paths[1] == paths[2]
        assert process.metrics == one.metrics

    def test_write_trace_without_tracing_raises(self):
        result = run_cluster_experiment(SERVER, CLUSTER, session_workload(),
                                        seed=3)
        with pytest.raises(RuntimeError, match="trace_sessions"):
            result.write_trace("/tmp/never-written.json")

    def test_merge_orders_canonically_and_backfills_sessions(self):
        result = run_traced()
        records = result.traces
        keys = [(r.trace_id, r.arrival_time - r.ingress, r.cell_id)
                for r in records]
        assert keys == sorted(keys)
        assert all(r.session is not None for r in records)
        # Re-merging shuffled per-shard chunks reproduces the order.
        chunks = [records[::2], records[1::2]]
        assert merge_trace_records(chunks) == tuple(records)


class TestClusterTimeseries:
    def test_series_present_and_deterministic(self, tmp_path):
        one = run_traced()
        two = run_traced(CLUSTER.with_overrides(shards=4))
        assert one.timeseries is not None
        names = one.timeseries.names
        assert "repro_cluster_completions:rate" in names
        assert "repro_cluster_latency_seconds:p99" in names
        assert "repro_slo_burn_rate" in names
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        one.write_timeseries(str(a))
        two.write_timeseries(str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_per_cell_rates_sum_to_global(self):
        result = run_traced()
        store = result.timeseries
        global_rate = store.get("repro_cluster_completions:rate")
        per_cell = [
            buffer for buffer in store.select("repro_cluster_completions:rate")
            if buffer.labels
        ]
        assert per_cell
        for index, (_, total) in enumerate(global_rate.points()):
            summed = sum(buffer.values[index] for buffer in per_cell
                         if len(buffer.values) > index)
            assert summed == pytest.approx(total)

    def test_write_timeseries_without_interval_raises(self):
        result = run_cluster_experiment(SERVER, CLUSTER, session_workload(),
                                        seed=3)
        with pytest.raises(RuntimeError):
            result.write_timeseries("/tmp/never-written.jsonl")


class TestGoldenClusterTrace:
    """The 4-shard traced run is pinned byte for byte as an artifact."""

    def _generate(self, path):
        result = run_traced(CLUSTER.with_overrides(shards=4))
        result.write_trace(str(path))
        return result

    def test_golden_artifact_matches_fresh_run(self, tmp_path):
        fresh = tmp_path / "cluster_trace.json"
        self._generate(fresh)
        assert GOLDEN.exists(), (
            "golden artifact missing; regenerate via this test's _generate")
        assert fresh.read_bytes() == GOLDEN.read_bytes()

    def test_golden_artifact_structure(self):
        data = json.loads(GOLDEN.read_text())
        events = data["traceEvents"]
        assert data["displayTimeUnit"] == "ms"
        phases = {event["ph"] for event in events}
        assert {"X", "s", "f", "M"} <= phases
        cells = {}
        for event in events:
            args = event.get("args", {})
            if event["ph"] == "X" and "trace_id" in args and "cell" in args:
                cells.setdefault(args["trace_id"], set()).add(args["cell"])
        assert any(len(spread) >= 2 for spread in cells.values())

    def test_golden_digest_is_stable(self):
        digest = hashlib.sha256(GOLDEN.read_bytes()).hexdigest()
        assert digest == GOLDEN_DIGEST
