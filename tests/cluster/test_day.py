"""The tentpole scenario: a 10k-node cluster replaying the golden day.

2500 cells x 4 nodes replaying the checked-in 24 h golden trace with
the fluid cold-cell model on.  Lazy cells plus the fluid model keep the
run in the hundreds of milliseconds — and the merged metrics must be
invariant to the shard count, same as any other topology.
"""

from pathlib import Path

from repro.cluster import ClusterConfig, run_cluster_experiment
from repro.core import ServerConfig
from repro.workload import Workload

GOLDEN = (
    Path(__file__).parent.parent / "workload" / "golden" / "day.jsonl.gz"
)

SERVER = ServerConfig(model="resnet-50", preprocess_batch_size=64)

TEN_K = ClusterConfig(
    cells=2500, nodes_per_cell=4,
    fluid=True, fluid_hot_threshold=8, fluid_hot_window_seconds=1.0,
)


def run_day(config: ClusterConfig):
    return run_cluster_experiment(
        SERVER, config, Workload.replay(str(GOLDEN)), seed=0)


def test_ten_thousand_node_day_completes_and_is_shard_invariant():
    assert TEN_K.node_count == 10_000
    one = run_day(TEN_K)
    assert one.issued == one.completed > 0
    # Traffic concentrates: the overwhelming majority of the 2500 cells
    # never builds a queue, so the fluid model carries most requests.
    assert 0 < one.cells_touched < TEN_K.cells
    assert one.fluid_served > one.completed // 2
    # Sharding the same day never changes the answer.
    sharded = run_day(TEN_K.with_overrides(shards=7))
    assert sharded.metrics == one.metrics
    assert sharded.fluid_served == one.fluid_served


def test_day_without_fluid_matches_request_count():
    """Fluid changes latency modelling for cold cells, never accounting:
    the same arrivals are issued and completed either way."""
    full = run_day(TEN_K.with_overrides(fluid=False, cells=50,
                                        nodes_per_cell=2))
    fluid = run_day(TEN_K.with_overrides(cells=50, nodes_per_cell=2))
    assert full.issued == fluid.issued
    assert full.completed == fluid.completed
