"""The cluster's headline guarantees, pinned.

1. A one-cell, zero-latency-fabric cluster is *byte-identical* in its
   merged ``RunMetrics`` to the unsharded
   :func:`repro.serving.fleet.run_fleet_experiment` — same floats, not
   approximately equal.
2. For a fixed topology, results are invariant to the shard count, to
   the routing policy's execution packing, and to serial vs
   process-pool execution.  Sharding decides how fast the answer
   arrives, never what the answer is.
"""

import pytest

from repro.cluster import ClusterConfig, run_cluster_experiment
from repro.core import ServerConfig
from repro.serving import run_fleet_experiment
from repro.telemetry.slo import SloConfig
from repro.workload import Workload

SERVER = ServerConfig(model="resnet-50", preprocess_batch_size=64)
WORKLOAD = Workload.constant(150.0, duration_seconds=3.0)


def cluster_run(config: ClusterConfig, seed: int = 0, **kwargs):
    return run_cluster_experiment(SERVER, config, WORKLOAD, seed=seed, **kwargs)


class TestFleetIdentity:
    def test_one_cell_zero_fabric_matches_unsharded_fleet(self):
        fleet = run_fleet_experiment(
            SERVER, node_count=3, workload=WORKLOAD, seed=11,
            warmup_requests=0, measure_requests=10**9,
            max_sim_seconds=10**6,
        )
        cluster = run_cluster_experiment(
            SERVER,
            ClusterConfig(cells=1, nodes_per_cell=3,
                          base_latency_seconds=0.0),
            WORKLOAD, seed=11,
        )
        # Dataclass equality on RunMetrics compares every float exactly,
        # including the sorted latency tuple and per-span means.
        assert cluster.metrics == fleet.metrics
        assert cluster.completed == fleet.metrics.completed

    def test_fabric_latency_shifts_latency_not_count(self):
        zero = cluster_run(ClusterConfig(cells=1, nodes_per_cell=2,
                                         base_latency_seconds=0.0))
        slow = cluster_run(ClusterConfig(cells=1, nodes_per_cell=2,
                                         base_latency_seconds=2e-3))
        assert slow.completed == zero.completed
        assert slow.metrics.latency.mean == pytest.approx(
            zero.metrics.latency.mean + 4e-3)


class TestShardInvariance:
    BASE = ClusterConfig(cells=6, nodes_per_cell=2)

    def test_serial_shard_count_invariant(self):
        reference = cluster_run(self.BASE)
        for shards in (2, 3, 6):
            result = cluster_run(self.BASE.with_overrides(shards=shards))
            assert result.metrics == reference.metrics
            assert result.issued == reference.issued

    @pytest.mark.parametrize("routing", ["round_robin", "least_backlog"])
    def test_routing_policies_shard_invariant(self, routing):
        base = self.BASE.with_overrides(routing=routing)
        one = cluster_run(base)
        many = cluster_run(base.with_overrides(shards=4))
        assert one.metrics == many.metrics

    def test_jittered_fabric_shard_invariant(self):
        base = self.BASE.with_overrides(jitter_latency_seconds=300e-6,
                                        topology_seed=5)
        assert cluster_run(base).metrics == cluster_run(
            base.with_overrides(shards=5)).metrics

    def test_process_pool_matches_serial(self):
        serial = cluster_run(self.BASE)
        pooled = cluster_run(
            self.BASE.with_overrides(shards=2, execution="process"))
        assert pooled.metrics == serial.metrics
        assert pooled.issued == serial.issued
        assert pooled.mode == "process"
        assert pooled.workers == 2

    def test_fluid_knob_packing_and_mode_invariant(self):
        base = self.BASE.with_overrides(
            fluid=True, fluid_hot_threshold=5, fluid_hot_window_seconds=0.5)
        one = cluster_run(base)
        assert one.fluid_served > 0  # the knob actually engaged
        many = cluster_run(base.with_overrides(shards=5))
        pooled = cluster_run(base.with_overrides(shards=3,
                                                 execution="process"))
        assert many.metrics == one.metrics
        assert pooled.metrics == one.metrics
        assert many.fluid_served == one.fluid_served

    def test_seed_changes_results(self):
        assert cluster_run(self.BASE, seed=0).metrics != cluster_run(
            self.BASE, seed=1).metrics


class TestResultSurface:
    def test_slo_views(self):
        result = cluster_run(
            ClusterConfig(cells=4, nodes_per_cell=2, shards=2),
            slo=SloConfig(latency_objective_seconds=0.2, target=0.99),
        )
        assert result.slo is not None and result.slo.met
        assert len(result.shards) == 2
        for shard in result.shards:
            assert shard.slo is not None
            assert shard.slo["met"] is True

    def test_unbounded_workload_rejected(self):
        with pytest.raises(ValueError, match="bounded"):
            run_cluster_experiment(
                SERVER, ClusterConfig(), Workload.constant(50.0))

    def test_max_requests_bounds_unbounded_workload(self):
        result = run_cluster_experiment(
            SERVER, ClusterConfig(cells=2, nodes_per_cell=1),
            Workload.constant(100.0), max_requests=40)
        assert result.issued == 40

    def test_export_row_shape(self):
        row = cluster_run(ClusterConfig(cells=2, nodes_per_cell=1)).to_dict()
        assert row["shard_count"] == 1
        assert row["node_count"] == 2
        assert row["execution_mode"] == "serial"
        assert row["completed"] > 0
