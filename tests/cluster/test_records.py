"""Completion records: fabric accounting and the canonical merge."""

import pickle

import pytest

from repro.cluster import SPAN_NETWORK, CompletionRecord, canonical_order, merge_records
from repro.core.request import OUTCOME_OK, OUTCOME_TIMEOUT


def record(t_done, *, t_in=None, outcome=OUTCOME_OK, spans=None):
    arrival = t_done - 0.01 if t_in is None else t_in
    return CompletionRecord(
        arrival_time=arrival,
        completion_time=t_done,
        latency=t_done - arrival,
        outcome=outcome,
        spans=spans or {"inference": 0.005},
        batch_size=1,
        eviction_count=0,
        served_from=None,
        workload_phase=None,
    )


class FakeRequest:
    arrival_time = 10.0
    completion_time = 10.25
    latency = 0.25
    outcome = OUTCOME_OK
    spans = {"inference": 0.2}
    batch_size = 4
    eviction_count = 1
    served_from = "image"
    workload_phase = "peak"


class TestFromRequest:
    def test_zero_fabric_passes_floats_through(self):
        rec = CompletionRecord.from_request(FakeRequest(), ingress=0.0, egress=0.0)
        assert rec.arrival_time == 10.0
        assert rec.completion_time == 10.25
        assert rec.latency == 0.25
        # Zero fabric must not clone or annotate the span dict.
        assert rec.spans is FakeRequest.spans
        assert SPAN_NETWORK not in rec.spans

    def test_fabric_shifts_into_router_coordinates(self):
        rec = CompletionRecord.from_request(
            FakeRequest(), ingress=0.001, egress=0.002)
        assert rec.arrival_time == pytest.approx(9.999)
        assert rec.completion_time == pytest.approx(10.252)
        assert rec.latency == pytest.approx(0.253)
        assert rec.spans[SPAN_NETWORK] == pytest.approx(0.003)
        assert SPAN_NETWORK not in FakeRequest.spans  # original untouched

    def test_picklable(self):
        rec = CompletionRecord.from_request(FakeRequest(), ingress=0.0, egress=0.0)
        clone = pickle.loads(pickle.dumps(rec))
        assert clone == rec


class TestCanonicalOrder:
    def test_single_cell_is_identity(self):
        records = [record(1.0), record(2.0), record(3.0)]
        assert canonical_order([(0, records)]) == records

    def test_sorts_by_completion_across_cells(self):
        merged = canonical_order([
            (1, [record(2.0), record(4.0)]),
            (0, [record(1.0), record(3.0)]),
        ])
        assert [r.completion_time for r in merged] == [1.0, 2.0, 3.0, 4.0]

    def test_ties_break_by_cell_id_not_input_order(self):
        a = record(5.0, t_in=4.0)
        b = record(5.0, t_in=3.0)
        # Same completion time in cells 2 and 0, cells listed out of
        # order: the merge must order by cell id, independent of how
        # shards happened to report.
        merged = canonical_order([(2, [a]), (0, [b])])
        assert merged == [b, a]
        assert canonical_order([(0, [b]), (2, [a])]) == [b, a]


class TestMergeRecords:
    def test_empty_raises(self):
        with pytest.raises(RuntimeError, match="no requests"):
            merge_records([])

    def test_window_spans_first_to_last_completion(self):
        metrics = merge_records([record(1.0), record(9.0)])
        assert metrics.completed == 2
        assert metrics.window_seconds == pytest.approx(9.0)
        assert metrics.throughput == pytest.approx(2 / 9.0)

    def test_counts_outcomes_and_counters(self):
        metrics = merge_records(
            [record(1.0), record(2.0, outcome=OUTCOME_TIMEOUT)],
            retry_count=3, shed_count=2,
        )
        assert metrics.completed == 1  # timeouts are not latency samples
        assert metrics.timeout_count == 1
        assert metrics.retry_count == 3
        assert metrics.shed_count == 2
