"""The renamed APIs keep working for one release, with warnings."""

import pytest

from repro import ExperimentConfig, ServerConfig
from repro.apps import FacePipelineConfig
from repro.apps.video_classification import VideoServerConfig


class TestWithUnderscoreAlias:
    @pytest.mark.parametrize(
        "config, override",
        [
            (ServerConfig(), {"max_batch_size": 32}),
            (ExperimentConfig(), {"concurrency": 8}),
            (FacePipelineConfig(), {"faces_per_frame": 3}),
            (VideoServerConfig(), {"frames_per_clip": 4}),
        ],
        ids=["server", "experiment", "faces", "video"],
    )
    def test_with_warns_and_still_works(self, config, override):
        with pytest.warns(DeprecationWarning, match="with_overrides"):
            updated = config.with_(**override)
        (field, value), = override.items()
        assert getattr(updated, field) == value
        assert updated == config.with_overrides(**override)

    def test_with_overrides_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ServerConfig().with_overrides(max_batch_size=32)


class TestKeywordOnlyConfigs:
    @pytest.mark.parametrize(
        "cls", [ServerConfig, ExperimentConfig, FacePipelineConfig],
        ids=["server", "experiment", "faces"],
    )
    def test_positional_construction_rejected(self, cls):
        with pytest.raises(TypeError):
            cls("tensorrt")

    def test_validate_returns_self(self):
        config = ServerConfig(max_batch_size=16)
        assert config.validate() is config
        assert ExperimentConfig().validate().concurrency == 64

    def test_validation_still_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ServerConfig(preprocess_device="tpu")
        with pytest.raises(ValueError):
            ExperimentConfig(concurrency=0)
        with pytest.raises(ValueError):
            FacePipelineConfig(faces_per_frame=-1)
