"""Deeper tests of server scheduling internals: instances, pipelines,
ingest, spans under load, and multi-GPU routing."""

import pytest

from repro.core import InferenceServer, MetricsCollector, ServerConfig
from repro.hardware import ServerNode
from repro.serving import ExperimentConfig, run_experiment
from repro.sim import Environment, RandomStreams
from repro.serving.client import ClosedLoopClient
from repro.vision import LARGE_IMAGE, MEDIUM_IMAGE, reference_dataset


def run_quick(server, concurrency=128, measure=600, **kw):
    return run_experiment(
        ExperimentConfig(
            server=server,
            dataset=reference_dataset("medium"),
            concurrency=concurrency,
            warmup_requests=100,
            measure_requests=measure,
            **kw,
        )
    )


class TestInstances:
    def test_instance_count_interacts_with_batching(self):
        """Instance count is a real trade-off, not a free win: for a
        launch-overhead-dominated small model, two greedy instances
        split the queue into half-size batches and *lose* throughput —
        which is exactly why the Sec. 2.3 tuner searches this axis."""
        one = run_quick(ServerConfig(model="tinyvit-5m", inference_instances=1,
                                     preprocess_batch_size=64), concurrency=128)
        two = run_quick(ServerConfig(model="tinyvit-5m", inference_instances=2,
                                     preprocess_batch_size=64), concurrency=128)
        assert two.metrics.mean_batch_size < one.metrics.mean_batch_size
        # The direction of the throughput effect depends on the operating
        # point; the magnitude stays material either way.
        ratio = two.throughput / one.throughput
        assert 0.5 < ratio < 1.5

    def test_instances_harmless_for_large_models(self):
        """For a compute-dominated model the split batches still sit on
        the efficient part of the curve; two instances keep (or beat)
        single-instance throughput by overlapping transfers."""
        one = run_quick(ServerConfig(model="vit-base-16", inference_instances=1,
                                     preprocess_batch_size=64), concurrency=256)
        two = run_quick(ServerConfig(model="vit-base-16", inference_instances=2,
                                     preprocess_batch_size=64), concurrency=256)
        assert two.throughput >= 0.9 * one.throughput

    def test_batches_respect_max_batch(self):
        result = run_quick(ServerConfig(max_batch_size=16, preprocess_batch_size=16),
                           concurrency=256)
        assert result.metrics.mean_batch_size <= 16


class TestMultiGpuRouting:
    def test_requests_spread_across_gpus(self):
        env = Environment()
        node = ServerNode(env, gpu_count=3)
        collector = MetricsCollector()
        collector.arm(0.0)
        server = InferenceServer(env, node, ServerConfig(model="resnet-50"),
                                 metrics=collector)
        client = ClosedLoopClient(env, server, reference_dataset("medium"),
                                  48, RandomStreams(0))
        env.run(until=0.5)
        collector.disarm(env.now)
        metrics = collector.finalize()
        assert metrics.completed > 100
        # Every GPU did work (round-robin assignment).
        for gpu in node.gpus:
            assert gpu.busy_time() > 0

    def test_gpu_index_recorded_on_requests(self):
        env = Environment()
        node = ServerNode(env, gpu_count=2)
        server = InferenceServer(env, node, ServerConfig())
        first = env.run(until=server.submit(MEDIUM_IMAGE))
        second = env.run(until=server.submit(MEDIUM_IMAGE))
        assert {first.gpu_index, second.gpu_index} == {0, 1}


class TestIngestPath:
    def test_inference_only_pays_ingest_for_raw_tensors(self):
        """The raw fp32 tensor parse is visible in the frontend span."""
        env = Environment()
        node = ServerNode(env)
        e2e_server = InferenceServer(env, node, ServerConfig())
        e2e = env.run(until=e2e_server.submit(MEDIUM_IMAGE))

        env2 = Environment()
        node2 = ServerNode(env2)
        raw_server = InferenceServer(env2, node2, ServerConfig(mode="inference_only"))
        raw = env2.run(until=raw_server.submit(MEDIUM_IMAGE))

        assert raw.spans["frontend"] > 1.8 * e2e.spans["frontend"]

    def test_large_blob_ingest_scales_with_bytes(self):
        env = Environment()
        node = ServerNode(env)
        server = InferenceServer(env, node, ServerConfig())
        small = env.run(until=server.submit(MEDIUM_IMAGE))
        large = env.run(until=server.submit(LARGE_IMAGE))
        assert large.spans["frontend"] > small.spans["frontend"]


class TestPreprocessingPipelines:
    def test_preproc_batches_fill_under_load(self):
        env = Environment()
        node = ServerNode(env)
        server = InferenceServer(
            env, node, ServerConfig(model="resnet-50", preprocess_batch_size=64)
        )
        client = ClosedLoopClient(env, server, reference_dataset("medium"),
                                  512, RandomStreams(0))
        env.run(until=1.0)
        batcher = server._preproc_batchers[0]
        assert batcher.mean_batch_size > 16

    def test_stage_isolation_preprocess_only_never_touches_inference(self):
        env = Environment()
        node = ServerNode(env)
        collector = MetricsCollector()
        collector.arm(0.0)
        server = InferenceServer(
            env, node, ServerConfig(mode="preprocess_only"), metrics=collector
        )
        client = ClosedLoopClient(env, server, reference_dataset("medium"),
                                  64, RandomStreams(0))
        env.run(until=0.3)
        collector.disarm(env.now)
        metrics = collector.finalize()
        assert metrics.completed > 50
        assert metrics.span_mean("inference") == 0.0


class TestSpanAccounting:
    def test_spans_cover_latency_under_load(self):
        """Even with queueing and batching, the recorded spans account
        for nearly all of every request's wall-clock latency."""
        result = run_quick(ServerConfig(model="resnet-50", preprocess_batch_size=64),
                           concurrency=256)
        m = result.metrics
        accounted = sum(m.span_means.values())
        assert accounted == pytest.approx(m.latency.mean, rel=0.08)

    def test_queue_span_zero_at_zero_load(self):
        result = run_quick(ServerConfig(), concurrency=1, measure=60)
        assert result.metrics.span_mean("queue") < 1e-4
