"""Integration tests for the inference server.

These run small closed-loop simulations and check the serving
machinery end to end: completion, span accounting, stage-isolation
modes, both preprocessing devices, batching, and eviction.
"""

import pytest

from repro.core import ALL_SPANS, InferenceServer, MetricsCollector, ServerConfig
from repro.hardware import DEFAULT_CALIBRATION, ServerNode
from repro.hardware.calibration import GpuCalibration
from repro.serving import ExperimentConfig, run_experiment
from repro.sim import Environment, RandomStreams
from repro.vision import MEDIUM_IMAGE, reference_dataset


def run_small(server=None, concurrency=32, measure=300, **overrides):
    config = ExperimentConfig(
        server=server if server is not None else ServerConfig(),
        dataset=reference_dataset("medium"),
        concurrency=concurrency,
        warmup_requests=50,
        measure_requests=measure,
        **overrides,
    )
    return run_experiment(config)


class TestBasicServing:
    def test_single_request_completes(self):
        env = Environment()
        node = ServerNode(env)
        server = InferenceServer(env, node, ServerConfig())
        done = server.submit(MEDIUM_IMAGE)
        request = env.run(until=done)
        assert request.completion_time is not None
        assert request.latency > 0

    def test_spans_roughly_account_for_latency(self):
        env = Environment()
        node = ServerNode(env)
        server = InferenceServer(env, node, ServerConfig())
        request = env.run(until=server.submit(MEDIUM_IMAGE))
        # Spans cover the whole request life within a small slack
        # (event-scheduling boundaries).
        assert request.accounted_seconds == pytest.approx(request.latency, rel=0.05)

    def test_canonical_spans_present(self):
        env = Environment()
        node = ServerNode(env)
        server = InferenceServer(env, node, ServerConfig())
        request = env.run(until=server.submit(MEDIUM_IMAGE))
        for span in ("frontend", "preprocess", "inference", "postprocess"):
            assert span in request.spans, span
        assert set(request.spans) <= set(ALL_SPANS)

    def test_cpu_preprocessing_path(self):
        env = Environment()
        node = ServerNode(env)
        server = InferenceServer(env, node, ServerConfig(preprocess_device="cpu"))
        request = env.run(until=server.submit(MEDIUM_IMAGE))
        assert request.spans["preprocess"] > 0
        assert request.spans["transfer"] > 0  # host tensor moved to GPU

    def test_metrics_recorded(self):
        env = Environment()
        node = ServerNode(env)
        collector = MetricsCollector()
        collector.arm(0.0)
        server = InferenceServer(env, node, ServerConfig(), metrics=collector)
        env.run(until=server.submit(MEDIUM_IMAGE))
        assert collector.sample_count == 1


class TestModes:
    def test_preprocess_only_skips_inference(self):
        env = Environment()
        node = ServerNode(env)
        server = InferenceServer(env, node, ServerConfig(mode="preprocess_only"))
        request = env.run(until=server.submit(MEDIUM_IMAGE))
        assert "inference" not in request.spans
        assert request.spans["preprocess"] > 0

    def test_inference_only_skips_preprocess(self):
        env = Environment()
        node = ServerNode(env)
        server = InferenceServer(env, node, ServerConfig(mode="inference_only"))
        request = env.run(until=server.submit(MEDIUM_IMAGE))
        assert "preprocess" not in request.spans
        assert request.spans["inference"] > 0
        assert request.spans["transfer"] > 0


class TestServingBehaviour:
    def test_throughput_positive_and_latency_sane(self):
        result = run_small()
        assert result.throughput > 100
        assert result.metrics.latency.p99 >= result.metrics.latency.p50

    def test_batches_form_under_load(self):
        result = run_small(concurrency=256, measure=600)
        assert result.metrics.mean_batch_size > 4

    def test_zero_load_runs_batch_one(self):
        result = run_small(concurrency=1, measure=50)
        assert result.metrics.mean_batch_size == pytest.approx(1.0)

    def test_multi_gpu_increases_throughput(self):
        one = run_small(concurrency=256, measure=600)
        two = run_small(concurrency=512, measure=900, gpu_count=2)
        assert two.throughput > 1.5 * one.throughput

    def test_fixed_batching_runs(self):
        server = ServerConfig(max_queue_delay_seconds=None, max_batch_size=16)
        result = run_small(server=server, concurrency=64, measure=300)
        assert result.metrics.mean_batch_size == pytest.approx(16.0)

    def test_deterministic_across_runs(self):
        a = run_small(measure=200)
        b = run_small(measure=200)
        assert a.throughput == pytest.approx(b.throughput)
        assert a.metrics.latency.mean == pytest.approx(b.metrics.latency.mean)

    def test_seed_changes_with_jitter(self):
        a = run_small(measure=200, seed=1, think_jitter_seconds=1e-3)
        b = run_small(measure=200, seed=2, think_jitter_seconds=1e-3)
        assert a.metrics.latency.mean != b.metrics.latency.mean


class TestEviction:
    def _tiny_memory_calibration(self):
        # A ~1 GB usable pool: large enough for one pinned max batch
        # (64 x ~5.7 MB), small enough that 256 outstanding requests
        # (~1.45 GB of working sets) must spill.
        small_gpu = GpuCalibration(
            memory_bytes=5 * 1024**3,
            reserved_bytes=4 * 1024**3,
        )
        return DEFAULT_CALIBRATION.with_overrides(gpu=small_gpu)

    def test_memory_pressure_triggers_evictions(self):
        """With a ~1 GB pool, a few hundred in-flight requests must
        spill (the Fig. 5 high-concurrency regime, shrunk)."""
        calibration = self._tiny_memory_calibration()
        result = run_small(
            concurrency=256,
            measure=500,
            calibration=calibration,
        )
        assert result.metrics.eviction_count > 0

    def test_eviction_can_be_disabled(self):
        calibration = self._tiny_memory_calibration()
        server = ServerConfig(allow_eviction=False)
        result = run_small(
            server=server,
            concurrency=64,
            measure=200,
            calibration=calibration,
        )
        assert result.metrics.eviction_count == 0
