"""Unit tests for ServerConfig validation and helpers."""

import pytest

from repro.core import (
    CPU_PREPROCESS,
    GPU_PREPROCESS,
    MODE_INFERENCE_ONLY,
    ServerConfig,
)


def test_defaults_are_valid():
    config = ServerConfig()
    assert config.preprocess_device == GPU_PREPROCESS
    assert config.dynamic_batching


def test_invalid_device():
    with pytest.raises(ValueError):
        ServerConfig(preprocess_device="tpu")


def test_invalid_mode():
    with pytest.raises(ValueError):
        ServerConfig(mode="training")


@pytest.mark.parametrize(
    "field,value",
    [
        ("preprocess_workers", 0),
        ("inference_instances", 0),
        ("max_batch_size", 0),
        ("preprocess_batch_size", 0),
        ("preprocess_pipelines", 0),
        ("max_queue_delay_seconds", -1.0),
        ("preprocess_queue_delay_seconds", -1.0),
    ],
)
def test_invalid_numeric_fields(field, value):
    with pytest.raises(ValueError):
        ServerConfig(**{field: value})


def test_fixed_batching_mode():
    config = ServerConfig(max_queue_delay_seconds=None)
    assert not config.dynamic_batching


def test_with_replaces_fields():
    config = ServerConfig(model="resnet-50")
    other = config.with_overrides(preprocess_device=CPU_PREPROCESS, mode=MODE_INFERENCE_ONLY)
    assert other.model == "resnet-50"
    assert other.preprocess_device == CPU_PREPROCESS
    assert config.preprocess_device == GPU_PREPROCESS  # original untouched
