"""Unit tests for the dynamic batcher policies."""

import pytest

from repro.core import DynamicBatcher
from repro.sim import Environment


def consume(env, batcher, sink, service_time=0.0):
    """Instance stand-in: drain batches into ``sink``."""

    def instance():
        while True:
            batch = yield batcher.next_batch()
            sink.append((env.now, list(batch)))
            if service_time:
                yield env.timeout(service_time)

    return env.process(instance())


class TestValidation:
    def test_bad_args(self):
        env = Environment()
        with pytest.raises(ValueError):
            DynamicBatcher(env, max_batch=0, max_queue_delay=None)
        with pytest.raises(ValueError):
            DynamicBatcher(env, max_batch=4, max_queue_delay=-1)
        with pytest.raises(ValueError):
            DynamicBatcher(env, max_batch=4, max_queue_delay=None, output_capacity=0)
        with pytest.raises(ValueError):
            DynamicBatcher(env, max_batch=4, max_queue_delay=1e-3, preferred_batch=5)


class TestGreedyDynamic:
    def test_idle_consumer_gets_batch_immediately(self):
        """Triton semantics: no queue delay when an instance is idle."""
        env = Environment()
        batcher = DynamicBatcher(env, max_batch=8, max_queue_delay=10.0)
        sink = []
        consume(env, batcher, sink)

        def producer():
            yield batcher.submit("x")

        env.process(producer())
        env.run(until=1.0)
        assert sink == [(0.0, ["x"])]

    def test_busy_consumer_accumulates_until_deadline(self):
        env = Environment()
        batcher = DynamicBatcher(env, max_batch=8, max_queue_delay=0.5)
        sink = []
        consume(env, batcher, sink, service_time=2.0)

        def producer():
            yield batcher.submit("a")  # dispatched instantly (idle consumer)
            yield env.timeout(0.1)
            yield batcher.submit("b")  # consumer busy until t=2
            yield env.timeout(0.1)
            yield batcher.submit("c")

        env.process(producer())
        env.run(until=10)
        assert sink[0] == (0.0, ["a"])
        # b and c batch together; the batch was formed at the 0.5s deadline
        # and picked up when the consumer freed at t=2.
        assert sink[1][1] == ["b", "c"]
        assert sink[1][0] == pytest.approx(2.0)

    def test_full_batch_dispatches_without_waiting_delay(self):
        env = Environment()
        batcher = DynamicBatcher(env, max_batch=2, max_queue_delay=100.0)
        sink = []
        consume(env, batcher, sink, service_time=1.0)

        def producer():
            for item in "abcd":
                yield batcher.submit(item)

        env.process(producer())
        env.run(until=10)
        batches = [batch for _, batch in sink]
        assert batches == [["a"], ["b", "c"], ["d"]] or batches == [
            ["a", "b"],
            ["c", "d"],
        ]

    def test_mean_batch_size(self):
        env = Environment()
        batcher = DynamicBatcher(env, max_batch=4, max_queue_delay=0.1)
        sink = []
        consume(env, batcher, sink, service_time=1.0)

        def producer():
            for item in range(8):
                yield batcher.submit(item)

        env.process(producer())
        env.run(until=20)
        assert batcher.dispatched_items == 8
        assert batcher.mean_batch_size == pytest.approx(8 / batcher.dispatched_batches)


class TestDeadlineAnchor:
    """Regression: the dynamic deadline is anchored to the *oldest
    item's enqueue time* (Triton max_queue_delay semantics), not to the
    moment the batcher gets around to filling.  When the batcher stalls
    on a full output store, the queue head's wait already counts."""

    def test_deadline_anchored_to_oldest_arrival(self):
        env = Environment()
        batcher = DynamicBatcher(env, max_batch=8, max_queue_delay=2.0)
        sink = []

        def producer():
            yield batcher.submit("a")  # t=0: dispatched at t=2 (no consumer yet)
            yield env.timeout(2.5)
            yield batcher.submit("b")  # t=2.5: dispatched 4.5; put blocks (store full)
            yield env.timeout(2.5)
            yield batcher.submit("c")  # t=5.0: waits in queue while batcher is stalled
            yield env.timeout(2.5)
            yield batcher.submit("d")  # t=7.5: after c's deadline (5+2) has passed

        def consumer():
            # First pickup at t=6: the batcher resumes, takes "c" (which
            # already waited 1.0 of its 2.0 budget) and must dispatch it
            # at t=7.0 — before "d" arrives.  The buggy anchor (fill
            # start, t=6) would keep filling until t=8 and merge in "d".
            yield env.timeout(6.0)
            while True:
                batch = yield batcher.next_batch()
                sink.append((env.now, list(batch)))
                yield env.timeout(2.0)

        env.process(producer())
        env.process(consumer())
        env.run(until=20)
        assert [batch for _, batch in sink] == [["a"], ["b"], ["c"], ["d"]]

    def test_expired_deadline_dispatches_immediately(self):
        env = Environment()
        batcher = DynamicBatcher(env, max_batch=8, max_queue_delay=1.0)
        sink = []

        def producer():
            yield batcher.submit("a")  # dispatched at t=1 (no consumer yet)
            yield env.timeout(1.5)
            yield batcher.submit("b")  # dispatched 2.5; put blocks on full store
            yield env.timeout(2.0)
            yield batcher.submit("c")  # t=3.5: queued; deadline 4.5 expires
            yield env.timeout(2.0)     # ...while the batcher is still stalled
            yield batcher.submit("d")  # t=5.5

        def consumer():
            yield env.timeout(5.0)
            while True:
                batch = yield batcher.next_batch()
                sink.append((env.now, list(batch)))
                yield env.timeout(2.0)

        env.process(producer())
        env.process(consumer())
        env.run(until=20)
        # At t=5 the batcher unblocks and finds "c" 0.5s past its
        # deadline: it must go out alone, not wait until t=6 for "d".
        assert [batch for _, batch in sink] == [["a"], ["b"], ["c"], ["d"]]
    def test_small_batch_waits_for_preferred(self):
        env = Environment()
        batcher = DynamicBatcher(
            env, max_batch=8, max_queue_delay=1.0, preferred_batch=4
        )
        sink = []
        consume(env, batcher, sink)

        def producer():
            yield batcher.submit("a")  # below preferred: must wait the delay

        env.process(producer())
        env.run(until=5)
        assert sink[0][0] == pytest.approx(1.0)

    def test_preferred_reached_dispatches_immediately(self):
        env = Environment()
        batcher = DynamicBatcher(
            env, max_batch=8, max_queue_delay=5.0, preferred_batch=2
        )
        sink = []
        consume(env, batcher, sink)

        def producer():
            yield batcher.submit("a")
            yield batcher.submit("b")

        env.process(producer())
        env.run(until=10)
        assert sink[0][0] == pytest.approx(0.0)
        assert sink[0][1] == ["a", "b"]


class TestFixedBatch:
    def test_waits_for_full_batch(self):
        """max_queue_delay=None: the pre-dynamic-batching config."""
        env = Environment()
        batcher = DynamicBatcher(env, max_batch=3, max_queue_delay=None)
        sink = []
        consume(env, batcher, sink)

        def producer():
            yield batcher.submit("a")
            yield env.timeout(5)
            yield batcher.submit("b")
            yield env.timeout(5)
            yield batcher.submit("c")

        env.process(producer())
        env.run(until=30)
        assert sink == [(10.0, ["a", "b", "c"])]


class TestNonGreedy:
    def test_waits_out_delay_even_with_idle_consumer(self):
        """DALI-style pipelines build their preferred batch."""
        env = Environment()
        batcher = DynamicBatcher(env, max_batch=8, max_queue_delay=2.0, greedy=False)
        sink = []
        consume(env, batcher, sink)

        def producer():
            yield batcher.submit("a")
            yield env.timeout(1.0)
            yield batcher.submit("b")

        env.process(producer())
        env.run(until=10)
        assert sink[0][0] == pytest.approx(2.0)
        assert sink[0][1] == ["a", "b"]


class TestDrain:
    """Graceful shutdown: drain() flushes partial batches instead of
    dropping queued work, under both execution backends."""

    @staticmethod
    def _backends():
        import asyncio

        from repro.kernel import AsyncioBackend, VirtualTimeBackend

        def des():
            env = VirtualTimeBackend()
            return env, lambda until: env.run(until=until)

        def rt():
            env = AsyncioBackend(fast_forward=True)
            return env, lambda until: asyncio.run(
                env.run_async(until=until, stop_on_empty=True)
            )

        return [("virtual", des), ("asyncio", rt)]

    def _each_backend(self, scenario):
        for name, make in self._backends():
            env, run = make()
            scenario(env, run, name)

    def test_drain_flushes_partial_dynamic_batch(self):
        """A deadline wait in progress is cut short by drain()."""

        def scenario(env, run, name):
            batcher = DynamicBatcher(env, max_batch=8, max_queue_delay=100.0)
            sink = []
            consume(env, batcher, sink, service_time=1.0)
            done = []

            def producer():
                yield batcher.submit("a")  # dispatched instantly
                yield env.timeout(0.1)
                yield batcher.submit("b")  # consumer busy: accumulates
                yield batcher.submit("c")
                yield env.timeout(0.1)
                drained = batcher.drain()
                assert batcher.draining
                yield drained
                done.append(env.now)

            env.process(producer())
            run(10)
            assert [b for _, b in sink] == [["a"], ["b", "c"]], name
            # Flushed at the drain request, not at the 100 s deadline.
            assert sink[1][0] == pytest.approx(1.0), name
            assert done and done[0] < 2.0, name

        self._each_backend(scenario)

    def test_drain_unblocks_fixed_batch_policy(self):
        """max_queue_delay=None would otherwise hold items forever."""

        def scenario(env, run, name):
            batcher = DynamicBatcher(env, max_batch=4, max_queue_delay=None)
            sink = []
            consume(env, batcher, sink)
            done = []

            def producer():
                yield batcher.submit("a")
                yield batcher.submit("b")
                yield env.timeout(1.0)
                yield batcher.drain()
                done.append(env.now)

            env.process(producer())
            run(10)
            assert [b for _, b in sink] == [["a", "b"]], name
            assert done == [pytest.approx(1.0)], name

        self._each_backend(scenario)

    def test_drain_empty_queue_succeeds_immediately(self):
        def scenario(env, run, name):
            batcher = DynamicBatcher(env, max_batch=4, max_queue_delay=0.5)
            consume(env, batcher, [])
            done = []

            def producer():
                yield env.timeout(2.0)
                yield batcher.drain()
                done.append(env.now)

            env.process(producer())
            run(10)
            assert done == [pytest.approx(2.0)], name

        self._each_backend(scenario)

    def test_items_submitted_behind_drain_still_flush(self):
        """Work racing with shutdown completes rather than being lost."""

        def scenario(env, run, name):
            batcher = DynamicBatcher(env, max_batch=4, max_queue_delay=None)
            sink = []
            consume(env, batcher, sink)
            done = []

            def producer():
                yield batcher.submit("a")
                drained = batcher.drain()
                yield batcher.submit("late")
                yield drained
                done.append(env.now)

            env.process(producer())
            run(10)
            flushed = [item for _, batch in sink for item in batch]
            assert flushed == ["a", "late"], name
            assert done, name

        self._each_backend(scenario)

    def test_drain_is_idempotent(self):
        def scenario(env, run, name):
            batcher = DynamicBatcher(env, max_batch=4, max_queue_delay=0.5)
            consume(env, batcher, [])
            first = batcher.drain()
            assert batcher.drain() is first, name
            run(1)
            assert first.triggered, name

        self._each_backend(scenario)

    def test_server_drain_fans_out(self):
        from repro.core import InferenceServer, ServerConfig
        from repro.hardware import DEFAULT_CALIBRATION, ServerNode
        from repro.sim import Environment
        from repro.vision import reference_dataset

        env = Environment()
        node = ServerNode(env, DEFAULT_CALIBRATION, gpu_count=1)
        server = InferenceServer(env, node, ServerConfig())
        import random

        dataset = reference_dataset("medium")
        rng = random.Random(7)
        done = []

        def scenario():
            completions = [server.submit(dataset.sample(rng)) for _ in range(3)]
            yield env.all_of(completions)
            yield server.drain()
            done.append(env.now)

        env.process(scenario())
        env.run(until=60)
        assert done and server.metrics is not None
