"""Tests for the server-parameter search (paper Sec. 2.3)."""

import pytest

from repro.core import ServerConfig
from repro.core.tuner import TuningResult, tune_server
from repro.vision import reference_dataset


@pytest.fixture(scope="module")
def tuning_result() -> TuningResult:
    """One small search, shared across assertions (runs are deterministic)."""
    base = ServerConfig(
        model="resnet-50",
        preprocess_workers=8,
        inference_instances=1,
        max_batch_size=16,
        preprocess_batch_size=64,
    )
    return tune_server(
        base,
        dataset=reference_dataset("medium"),
        search_space={
            "preprocess_workers": (8, 16),
            "inference_instances": (1, 2),
            "max_batch_size": (16, 64),
            "concurrency": (128, 256),
        },
        baseline_concurrency=128,
        measure_requests=600,
        warmup_requests=150,
    )


def test_best_at_least_baseline(tuning_result):
    assert tuning_result.best.throughput >= tuning_result.baseline.throughput
    assert tuning_result.improvement >= 0
    assert tuning_result.speedup >= 1.0


def test_search_finds_larger_batch(tuning_result):
    """From a deliberately poor start, the search must improve things
    substantially — the paper found ~300 img/s from its quick search."""
    assert tuning_result.speedup > 1.1
    assert tuning_result.best.server.max_batch_size >= 16


def test_trace_contains_all_evaluations(tuning_result):
    assert tuning_result.trace[0] == tuning_result.baseline
    assert len(tuning_result.trace) >= 4
    assert max(p.throughput for p in tuning_result.trace) == tuning_result.best.throughput


def test_points_record_latency(tuning_result):
    for point in tuning_result.trace:
        assert point.p99_latency > 0
