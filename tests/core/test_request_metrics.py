"""Unit tests for request spans and the metrics collector."""

import pytest

from repro.core import InferenceRequest, LatencyStats, MetricsCollector, percentile
from repro.vision import MEDIUM_IMAGE


def make_request(arrival=0.0):
    return InferenceRequest(MEDIUM_IMAGE, arrival_time=arrival)


class TestRequestSpans:
    def test_begin_end_accumulates(self):
        r = make_request()
        r.begin("preprocess", 1.0)
        r.end("preprocess", 3.0)
        r.begin("preprocess", 5.0)
        r.end("preprocess", 6.0)
        assert r.spans["preprocess"] == pytest.approx(3.0)

    def test_end_without_begin_raises(self):
        r = make_request()
        with pytest.raises(RuntimeError):
            r.end("queue", 1.0)

    def test_add_negative_rejected(self):
        r = make_request()
        with pytest.raises(ValueError):
            r.add("queue", -0.1)

    def test_span_open(self):
        r = make_request()
        assert not r.span_open("queue")
        r.begin("queue", 0.0)
        assert r.span_open("queue")
        r.end("queue", 1.0)
        assert not r.span_open("queue")

    def test_latency_requires_completion(self):
        r = make_request(arrival=2.0)
        with pytest.raises(RuntimeError):
            _ = r.latency
        r.complete(5.0)
        assert r.latency == 3.0
        with pytest.raises(RuntimeError):
            r.complete(6.0)

    def test_span_fraction(self):
        r = make_request()
        r.add("inference", 1.0)
        r.complete(4.0)
        assert r.span_fraction("inference") == pytest.approx(0.25)
        assert r.span_fraction("unknown") == 0.0

    def test_unique_ids(self):
        assert make_request().request_id != make_request().request_id


class TestPercentile:
    def test_basics(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 50) == 3.0
        assert percentile(values, 100) == 5.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0


class TestLatencyStats:
    def test_from_values(self):
        stats = LatencyStats.from_values([3.0, 1.0, 2.0])
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.p50 == 2.0
        assert stats.maximum == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats.from_values([])


class TestMetricsCollector:
    def _completed(self, arrival, finish, spans=None, batch=None):
        r = make_request(arrival)
        for name, value in (spans or {}).items():
            r.add(name, value)
        if batch is not None:
            r.batch_size = batch
        r.complete(finish)
        return r

    def test_only_armed_requests_counted(self):
        c = MetricsCollector()
        c.record(self._completed(0, 1))  # before arming: warm-up
        c.arm(1.0)
        c.record(self._completed(1, 2))
        c.disarm(3.0)
        metrics = c.finalize()
        assert metrics.completed == 1
        assert c.total_completed == 2

    def test_throughput_over_window(self):
        c = MetricsCollector()
        c.arm(0.0)
        for i in range(10):
            c.record(self._completed(i * 0.1, i * 0.1 + 0.05))
        c.disarm(2.0)
        assert c.finalize().throughput == pytest.approx(5.0)

    def test_incomplete_request_rejected(self):
        c = MetricsCollector()
        with pytest.raises(ValueError):
            c.record(make_request())

    def test_finalize_requires_window(self):
        c = MetricsCollector()
        with pytest.raises(RuntimeError):
            c.finalize()

    def test_finalize_requires_samples(self):
        c = MetricsCollector()
        c.arm(0.0)
        c.disarm(1.0)
        with pytest.raises(RuntimeError, match="no requests"):
            c.finalize()

    def test_span_means_and_fractions(self):
        c = MetricsCollector()
        c.arm(0.0)
        c.record(self._completed(0, 1.0, spans={"inference": 0.5, "queue": 0.25}))
        c.record(self._completed(0, 1.0, spans={"inference": 0.5, "queue": 0.25}))
        c.disarm(2.0)
        metrics = c.finalize()
        assert metrics.span_mean("inference") == pytest.approx(0.5)
        assert metrics.inference_fraction == pytest.approx(0.5)
        assert metrics.overhead_fraction == pytest.approx(0.5)
        assert metrics.span_fraction("queue") == pytest.approx(0.25)

    def test_non_canonical_spans_preserved(self):
        c = MetricsCollector()
        c.arm(0.0)
        c.record(self._completed(0, 1.0, spans={"broker": 0.3}))
        c.disarm(1.0)
        assert c.finalize().span_mean("broker") == pytest.approx(0.3)

    def test_mean_batch_size(self):
        c = MetricsCollector()
        c.arm(0.0)
        c.record(self._completed(0, 1.0, batch=8))
        c.record(self._completed(0, 1.0, batch=16))
        c.disarm(1.0)
        assert c.finalize().mean_batch_size == 12.0


class TestLatencyRetention:
    def _metrics(self, latencies):
        c = MetricsCollector()
        c.arm(0.0)
        for latency in latencies:
            c.record(self._request_with_latency(latency))
        c.disarm(1.0)
        return c.finalize()

    @staticmethod
    def _request_with_latency(latency):
        r = make_request(arrival=0.0)
        r.complete(latency)
        return r

    def test_latencies_sorted_and_complete(self):
        metrics = self._metrics([0.3, 0.1, 0.2])
        assert metrics.latencies == (0.1, 0.2, 0.3)

    def test_histogram_covers_all_samples(self):
        metrics = self._metrics([0.1, 0.2, 0.3, 0.4, 0.5])
        hist = metrics.latency_histogram(buckets=4)
        assert sum(count for _, _, count in hist) == 5
        assert hist[0][0] == pytest.approx(0.1)
        assert hist[-1][1] == pytest.approx(0.5)

    def test_histogram_flat_values(self):
        metrics = self._metrics([0.2, 0.2, 0.2])
        hist = metrics.latency_histogram(buckets=5)
        assert hist == [(0.2, 0.2, 3)]

    def test_histogram_validation(self):
        metrics = self._metrics([0.1])
        with pytest.raises(ValueError):
            metrics.latency_histogram(buckets=0)

    def test_slo_attainment(self):
        metrics = self._metrics([0.1, 0.2, 0.3, 0.4])
        assert metrics.slo_attainment(0.25) == pytest.approx(0.5)
        assert metrics.slo_attainment(1.0) == 1.0
        with pytest.raises(ValueError):
            metrics.slo_attainment(0)
