"""Unit tests for the PCIe link model."""

import pytest

from repro.hardware import DEFAULT_CALIBRATION, D2H, H2D, PcieLink
from repro.sim import Environment


def make_link(env):
    return PcieLink(env, DEFAULT_CALIBRATION.pcie)


class TestTransferSeconds:
    def test_includes_latency(self):
        env = Environment()
        link = make_link(env)
        assert link.transfer_seconds(0) == pytest.approx(link.latency)

    def test_scales_with_bytes(self):
        env = Environment()
        link = make_link(env)
        one_gb = link.transfer_seconds(1e9)
        two_gb = link.transfer_seconds(2e9)
        assert two_gb - one_gb == pytest.approx(1e9 / link.bandwidth)

    def test_pageable_slower_than_pinned(self):
        env = Environment()
        link = make_link(env)
        assert link.transfer_seconds(1e6, pinned=False) > link.transfer_seconds(1e6, pinned=True)

    def test_negative_bytes_rejected(self):
        env = Environment()
        link = make_link(env)
        with pytest.raises(ValueError):
            link.transfer_seconds(-1)

    def test_unknown_direction_rejected(self):
        env = Environment()
        link = make_link(env)
        with pytest.raises(ValueError):
            link.busy_time("sideways")


class TestTransfers:
    def test_transfer_advances_time_and_counts(self):
        env = Environment()
        link = make_link(env)

        def proc():
            yield from link.transfer(24e9, H2D)  # exactly 1s of wire time

        env.run(until=env.process(proc()))
        assert env.now == pytest.approx(1.0 + link.latency)
        assert link.bytes_moved[H2D] == 24e9
        assert link.transfer_count[H2D] == 1
        assert link.bytes_moved[D2H] == 0

    def test_same_direction_serializes(self):
        env = Environment()
        link = make_link(env)
        done = []

        def proc(tag):
            yield from link.transfer(24e9, H2D)
            done.append((tag, env.now))

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        # Second transfer must wait for the first: ~2s total.
        assert done[1][1] == pytest.approx(2 * (1.0 + link.latency))

    def test_opposite_directions_overlap(self):
        env = Environment()
        link = make_link(env)
        done = []

        def proc(direction):
            yield from link.transfer(24e9, direction)
            done.append(env.now)

        env.process(proc(H2D))
        env.process(proc(D2H))
        env.run()
        # Full duplex: both finish at ~1s.
        for at in done:
            assert at == pytest.approx(1.0 + link.latency)

    def test_busy_time_accounting(self):
        env = Environment()
        link = make_link(env)

        def proc():
            yield from link.transfer(12e9, H2D)  # 0.5s

        env.run(until=env.process(proc()))
        assert link.busy_time(H2D) == pytest.approx(0.5 + link.latency)
        assert link.busy_time(D2H) == 0.0
