"""Unit tests for Cpu, Gpu, EnergyMeter, and ServerNode."""

import pytest

from repro.hardware import (
    DEFAULT_CALIBRATION,
    Cpu,
    EnergyMeter,
    Gpu,
    ServerNode,
)
from repro.hardware.gpu import PRIORITY_INFERENCE, PRIORITY_PREPROCESS
from repro.sim import Environment


class TestCpu:
    def test_run_occupies_core(self):
        env = Environment()
        cpu = Cpu(env, DEFAULT_CALIBRATION.cpu)

        def proc():
            yield from cpu.run(2.0)

        env.run(until=env.process(proc()))
        assert env.now == 2.0
        assert cpu.busy_time() == pytest.approx(2.0)

    def test_negative_duration_rejected(self):
        env = Environment()
        cpu = Cpu(env, DEFAULT_CALIBRATION.cpu)

        def proc():
            yield from cpu.run(-1)

        env.process(proc())
        with pytest.raises(ValueError):
            env.run()

    def test_core_count_limits_parallelism(self):
        env = Environment()
        cpu = Cpu(env, DEFAULT_CALIBRATION.cpu)
        finished = []

        def proc():
            yield from cpu.run(1.0)
            finished.append(env.now)

        for _ in range(cpu.core_count + 1):
            env.process(proc())
        env.run()
        # One task had to wait for a free core.
        assert max(finished) == pytest.approx(2.0)
        assert finished.count(1.0) == cpu.core_count

    def test_carved_pool_busy_counts_toward_cpu(self):
        env = Environment()
        cpu = Cpu(env, DEFAULT_CALIBRATION.cpu)
        pool = cpu.carve_pool(2)

        def proc():
            with pool.request() as grant:
                yield grant
                yield env.timeout(3.0)

        env.run(until=env.process(proc()))
        assert cpu.busy_time() == pytest.approx(3.0)

    def test_utilization_clamped(self):
        env = Environment()
        cpu = Cpu(env, DEFAULT_CALIBRATION.cpu)
        assert cpu.utilization(0) == 0.0
        assert 0.0 <= cpu.utilization(10.0) <= 1.0


class TestGpu:
    def test_execute_serializes_kernels(self):
        env = Environment()
        gpu = Gpu(env, DEFAULT_CALIBRATION)
        finished = []

        def proc(tag):
            yield from gpu.execute(1.0)
            finished.append((tag, env.now))

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        assert finished == [("a", 1.0), ("b", 2.0)]
        assert gpu.kernel_count == 2
        assert gpu.busy_time() == pytest.approx(2.0)

    def test_preprocess_priority_wins(self):
        env = Environment()
        gpu = Gpu(env, DEFAULT_CALIBRATION)
        order = []

        def holder():
            yield from gpu.execute(1.0)

        def inference():
            yield env.timeout(0.1)
            yield from gpu.execute(1.0, priority=PRIORITY_INFERENCE)
            order.append("inference")

        def preprocess():
            yield env.timeout(0.2)  # requests *after* inference queued
            yield from gpu.execute(1.0, priority=PRIORITY_PREPROCESS)
            order.append("preprocess")

        env.process(holder())
        env.process(inference())
        env.process(preprocess())
        env.run()
        assert order == ["preprocess", "inference"]

    def test_memory_pool_sized_below_device(self):
        env = Environment()
        gpu = Gpu(env, DEFAULT_CALIBRATION)
        expected = DEFAULT_CALIBRATION.gpu.memory_bytes - DEFAULT_CALIBRATION.gpu.reserved_bytes
        assert gpu.memory.capacity_bytes == expected


class TestEnergyMeter:
    def test_energy_between_snapshots(self):
        meter = EnergyMeter()
        busy = {"t": 0.0}
        meter.register("dev", lambda: busy["t"], capacity=1, idle_watts=10, peak_watts=110)

        start = meter.snapshot(0.0)
        busy["t"] = 5.0
        end = meter.snapshot(10.0)

        report = meter.energy_between(start, end)["dev"]
        assert report.window_seconds == 10.0
        assert report.utilization == pytest.approx(0.5)
        assert report.idle_joules == pytest.approx(100.0)
        assert report.dynamic_joules == pytest.approx(500.0)
        assert report.total_joules == pytest.approx(600.0)

    def test_duplicate_registration_rejected(self):
        meter = EnergyMeter()
        meter.register("dev", lambda: 0.0, 1, 10, 100)
        with pytest.raises(ValueError):
            meter.register("dev", lambda: 0.0, 1, 10, 100)

    def test_validation(self):
        meter = EnergyMeter()
        with pytest.raises(ValueError):
            meter.register("bad", lambda: 0.0, 0, 10, 100)
        with pytest.raises(ValueError):
            meter.register("bad", lambda: 0.0, 1, 100, 10)

    def test_reversed_snapshots_rejected(self):
        meter = EnergyMeter()
        meter.register("dev", lambda: 0.0, 1, 10, 100)
        with pytest.raises(ValueError):
            meter.energy_between(meter.snapshot(5.0), meter.snapshot(1.0))


class TestServerNode:
    def test_default_node(self):
        env = Environment()
        node = ServerNode(env)
        assert node.gpu_count == 1
        assert node.cpu.core_count == DEFAULT_CALIBRATION.cpu.cores
        assert node.energy.device_names == ["cpu", "gpu0"]

    def test_multi_gpu_node(self):
        env = Environment()
        node = ServerNode(env, gpu_count=4)
        assert node.gpu_count == 4
        assert len(node.gpu_energy_names()) == 4
        # Each GPU gets its own PCIe link and memory pool.
        links = {gpu.link.name for gpu in node.gpus}
        assert len(links) == 4

    def test_invalid_gpu_count(self):
        env = Environment()
        with pytest.raises(ValueError):
            ServerNode(env, gpu_count=0)

    def test_staging_pool_shared_and_counted(self):
        env = Environment()
        node = ServerNode(env, gpu_count=2)
        assert node.staging.capacity == DEFAULT_CALIBRATION.gpu.staging_threads

        def proc():
            with node.staging.request() as grant:
                yield grant
                yield env.timeout(2.0)

        env.run(until=env.process(proc()))
        assert node.cpu.busy_time() == pytest.approx(2.0)
