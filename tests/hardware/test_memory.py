"""Unit tests for the GPU memory pool and eviction machinery."""

import pytest

from repro.hardware import GpuMemoryPool, OutOfMemoryError
from repro.sim import Environment


class TestBasicAllocation:
    def test_alloc_and_free(self):
        env = Environment()
        pool = GpuMemoryPool(env, 1000)
        allocations = []

        def proc():
            a = yield from pool.alloc(400)
            allocations.append(a)

        env.run(until=env.process(proc()))
        assert pool.used_bytes == 400
        pool.free(allocations[0])
        assert pool.used_bytes == 0

    def test_free_is_idempotent(self):
        env = Environment()
        pool = GpuMemoryPool(env, 1000)
        holder = []

        def proc():
            a = yield from pool.alloc(400)
            holder.append(a)

        env.run(until=env.process(proc()))
        pool.free(holder[0])
        pool.free(holder[0])
        assert pool.used_bytes == 0

    def test_oversized_alloc_raises(self):
        env = Environment()
        pool = GpuMemoryPool(env, 1000)

        def proc():
            yield from pool.alloc(1001)

        env.process(proc())
        with pytest.raises(OutOfMemoryError):
            env.run()

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            GpuMemoryPool(env, 0)
        with pytest.raises(ValueError):
            GpuMemoryPool(env, 100, evict_policy="random")
        pool = GpuMemoryPool(env, 100)
        with pytest.raises(ValueError):
            pool.try_alloc(-1)

    def test_try_alloc(self):
        env = Environment()
        pool = GpuMemoryPool(env, 1000)
        a = pool.try_alloc(600)
        assert a is not None
        assert pool.try_alloc(600) is None
        pool.free(a)
        assert pool.try_alloc(600) is not None

    def test_alloc_blocks_until_free(self):
        env = Environment()
        pool = GpuMemoryPool(env, 1000)
        trace = []

        def first():
            a = yield from pool.alloc(800)
            yield env.timeout(5)
            pool.free(a)

        def second():
            yield env.timeout(1)
            yield from pool.alloc(800)
            trace.append(env.now)

        env.process(first())
        env.process(second())
        env.run()
        assert trace == [5]

    def test_peak_used_tracks_high_water_mark(self):
        env = Environment()
        pool = GpuMemoryPool(env, 1000)

        def proc():
            a = yield from pool.alloc(700)
            pool.free(a)
            yield from pool.alloc(100)

        env.run(until=env.process(proc()))
        assert pool.peak_used == 700


class TestEviction:
    def test_evicts_to_make_room(self):
        env = Environment()
        pool = GpuMemoryPool(env, 1000)
        evicted = []

        def proc():
            yield from pool.alloc(600, evictable=True, on_evict=lambda a: evicted.append(a))
            yield from pool.alloc(600)  # must evict the first

        env.run(until=env.process(proc()))
        assert len(evicted) == 1
        assert evicted[0].evicted
        assert pool.eviction_count == 1
        assert pool.evicted_bytes == 600
        assert pool.used_bytes == 600

    def test_non_evictable_not_evicted(self):
        env = Environment()
        pool = GpuMemoryPool(env, 1000)

        def holder():
            yield from pool.alloc(600, evictable=False)

        def contender():
            yield env.timeout(1)
            yield from pool.alloc(600)

        env.process(holder())
        env.process(contender())
        env.run(until=5)
        assert pool.eviction_count == 0
        assert pool.used_bytes == 600  # contender still waiting

    def test_pin_removes_from_eviction_set(self):
        env = Environment()
        pool = GpuMemoryPool(env, 1000)
        evicted = []

        def proc():
            a = yield from pool.alloc(600, evictable=True, on_evict=evicted.append)
            pool.pin(a)
            # This alloc cannot be satisfied by eviction any more.
            later = pool.try_alloc(600)
            assert later is None
            yield env.timeout(0)

        env.run(until=env.process(proc()))
        assert evicted == []
        assert pool.eviction_count == 0

    def test_newest_policy_evicts_most_recent(self):
        env = Environment()
        pool = GpuMemoryPool(env, 1000, evict_policy="newest")
        order = []

        def proc():
            yield from pool.alloc(300, evictable=True, on_evict=lambda a: order.append("old"))
            yield env.timeout(1)
            yield from pool.alloc(300, evictable=True, on_evict=lambda a: order.append("new"))
            yield from pool.alloc(500)  # evicts one: the newest

        env.run(until=env.process(proc()))
        assert order == ["new"]

    def test_oldest_policy_evicts_first_allocated(self):
        env = Environment()
        pool = GpuMemoryPool(env, 1000, evict_policy="oldest")
        order = []

        def proc():
            yield from pool.alloc(300, evictable=True, on_evict=lambda a: order.append("old"))
            yield env.timeout(1)
            yield from pool.alloc(300, evictable=True, on_evict=lambda a: order.append("new"))
            yield from pool.alloc(500)

        env.run(until=env.process(proc()))
        assert order == ["old"]

    def test_eviction_cascades_until_fit(self):
        env = Environment()
        pool = GpuMemoryPool(env, 1000)
        evicted = []

        def proc():
            for _ in range(3):
                yield from pool.alloc(300, evictable=True, on_evict=evicted.append)
            yield from pool.alloc(900)  # needs all three evicted

        env.run(until=env.process(proc()))
        assert len(evicted) == 3
        assert pool.used_bytes == 900
