"""Tests for the A100-style hardware JPEG decode engine."""

import dataclasses

import pytest

from repro.hardware import DEFAULT_CALIBRATION, Gpu, ServerNode
from repro.serving import ExperimentConfig, run_experiment
from repro.core import ServerConfig
from repro.sim import Environment
from repro.vision import LARGE_IMAGE, gpu_preprocess_cost, reference_dataset

HW_CALIBRATION = DEFAULT_CALIBRATION.with_overrides(
    gpu=dataclasses.replace(DEFAULT_CALIBRATION.gpu, hardware_jpeg_decoder=True)
)


class TestCostModel:
    def test_hw_decoder_reduces_staging(self):
        soft = gpu_preprocess_cost(LARGE_IMAGE, 224, DEFAULT_CALIBRATION)
        hard = gpu_preprocess_cost(LARGE_IMAGE, 224, HW_CALIBRATION)
        assert hard.staging_seconds < soft.staging_seconds / 2

    def test_postprocess_kernels_unchanged(self):
        soft = gpu_preprocess_cost(LARGE_IMAGE, 224, DEFAULT_CALIBRATION)
        hard = gpu_preprocess_cost(LARGE_IMAGE, 224, HW_CALIBRATION)
        assert hard.postprocess_kernel_seconds == pytest.approx(
            soft.postprocess_kernel_seconds
        )

    def test_decomposition(self):
        cost = gpu_preprocess_cost(LARGE_IMAGE, 224, HW_CALIBRATION)
        assert cost.kernel_seconds == pytest.approx(
            cost.decode_kernel_seconds + cost.postprocess_kernel_seconds
        )


class TestDevice:
    def test_decoder_engine_present_only_when_enabled(self):
        env = Environment()
        assert Gpu(env, DEFAULT_CALIBRATION).decoder is None
        assert Gpu(env, HW_CALIBRATION).decoder is not None

    def test_decode_overlaps_compute(self):
        """Decode on the engine runs concurrently with SM kernels."""
        env = Environment()
        gpu = Gpu(env, HW_CALIBRATION)
        finished = []

        def compute():
            yield from gpu.execute(1.0)
            finished.append(("compute", env.now))

        def decode():
            yield from gpu.decode(1.0)
            finished.append(("decode", env.now))

        env.process(compute())
        env.process(decode())
        env.run()
        assert all(at == pytest.approx(1.0) for _, at in finished)

    def test_decode_falls_back_to_compute_without_engine(self):
        env = Environment()
        gpu = Gpu(env, DEFAULT_CALIBRATION)
        finished = []

        def compute():
            yield from gpu.execute(1.0)
            finished.append(env.now)

        def decode():
            yield from gpu.decode(1.0)
            finished.append(env.now)

        env.process(compute())
        env.process(decode())
        env.run()
        assert max(finished) == pytest.approx(2.0)  # serialized

    def test_negative_duration_rejected(self):
        env = Environment()
        gpu = Gpu(env, HW_CALIBRATION)

        def proc():
            yield from gpu.decode(-1)

        env.process(proc())
        with pytest.raises(ValueError):
            env.run()


class TestServingImpact:
    def test_hw_decoder_lifts_large_image_throughput(self):
        """The paper's Sec. 2.2 point: the A100's dedicated JPEG engine
        exists because decode-on-SMs throttles serving."""
        results = {}
        for label, calibration in (("soft", DEFAULT_CALIBRATION), ("hw", HW_CALIBRATION)):
            results[label] = run_experiment(
                ExperimentConfig(
                    server=ServerConfig(
                        model="vit-base-16",
                        preprocess_device="gpu",
                        preprocess_batch_size=64,
                    ),
                    dataset=reference_dataset("large"),
                    concurrency=256,
                    calibration=calibration,
                    warmup_requests=200,
                    measure_requests=800,
                )
            ).throughput
        assert results["hw"] > 1.5 * results["soft"]
