"""Sanity checks on the calibration bundle."""

import dataclasses

import pytest

from repro.hardware import (
    DEFAULT_CALIBRATION,
    Calibration,
    CpuCalibration,
    GpuCalibration,
)


def test_default_is_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        DEFAULT_CALIBRATION.cpu.cores = 1  # type: ignore[misc]


def test_with_overrides_replaces_section():
    custom_cpu = CpuCalibration(cores=8)
    calib = DEFAULT_CALIBRATION.with_overrides(cpu=custom_cpu)
    assert calib.cpu.cores == 8
    assert calib.gpu is DEFAULT_CALIBRATION.gpu
    assert DEFAULT_CALIBRATION.cpu.cores == 24  # untouched


def test_testbed_scale_constants():
    """The defaults mirror the paper's i9-13900K + RTX 4090 testbed."""
    gpu = DEFAULT_CALIBRATION.gpu
    assert gpu.memory_bytes == 24 * 1024**3
    assert 50e12 < gpu.peak_flops < 120e12
    assert 0 < gpu.efficiency_max <= 1
    cpu = DEFAULT_CALIBRATION.cpu
    assert 16 <= cpu.cores <= 32


def test_pinned_faster_than_pageable():
    pcie = DEFAULT_CALIBRATION.pcie
    assert pcie.bandwidth > pcie.pageable_bandwidth


def test_power_ordering():
    power = DEFAULT_CALIBRATION.power
    assert power.cpu_peak_watts > power.cpu_idle_watts
    assert power.gpu_peak_watts > power.gpu_idle_watts


def test_broker_cost_ordering():
    """Kafka's per-message produce dwarfs Redis's (disk vs memory)."""
    broker = DEFAULT_CALIBRATION.broker
    assert broker.kafka_produce_seconds > 10 * broker.redis_produce_seconds
    assert broker.kafka_disk_bandwidth < broker.redis_memory_bandwidth


def test_calibration_is_value_like():
    assert Calibration() == Calibration()
