"""Unit tests for :class:`repro.kernel.AsyncioBackend`.

The backend subclasses the DES :class:`Environment`, sharing every
primitive by identity; what needs testing here is the wall-clock
dispatch loop itself — sleeping/waking, time mapping, external
injection, cancellation races under ``run_async``, and the asyncio
bridging (:meth:`as_future`, :meth:`request_stop`).

Most tests run in ``fast_forward`` mode, which never sleeps: those
are exact-semantics tests.  The handful of real-sleep tests use
aggressive ``time_scale`` values so the whole file stays fast.
"""

import asyncio

import pytest

from repro.kernel import (
    AsyncioBackend,
    Event,
    Interrupt,
    Store,
    VirtualTimeBackend,
    is_realtime,
    run_until,
)


def go(env, coro_or_until=None, **kwargs):
    """Drive ``env.run_async`` from sync test code."""
    return asyncio.run(env.run_async(coro_or_until, **kwargs))


class TestConstruction:
    def test_defaults(self):
        env = AsyncioBackend()
        assert env.now == 0.0
        assert env.time_scale == 1.0
        assert not env.fast_forward
        assert is_realtime(env)
        assert not is_realtime(VirtualTimeBackend())

    def test_bad_time_scale(self):
        with pytest.raises(ValueError):
            AsyncioBackend(time_scale=0)
        with pytest.raises(ValueError):
            AsyncioBackend(time_scale=-1)

    def test_sync_run_refused(self):
        env = AsyncioBackend()
        with pytest.raises(RuntimeError, match="run_async"):
            env.run(until=1.0)


class TestFastForwardSemantics:
    """No-sleep dispatch follows DES time semantics exactly."""

    def test_timeout_advances_virtual_time(self):
        env = AsyncioBackend(fast_forward=True)
        seen = []

        def proc():
            yield env.timeout(1.5)
            seen.append(env.now)
            yield env.timeout(2.5)
            seen.append(env.now)

        env.process(proc())
        go(env)
        assert seen == [1.5, 4.0]

    def test_until_time(self):
        env = AsyncioBackend(fast_forward=True)

        def ticker():
            while True:
                yield env.timeout(1.0)

        env.process(ticker())
        go(env, 5.0)
        assert env.now == 5.0

    def test_until_event_value(self):
        env = AsyncioBackend(fast_forward=True)

        def proc():
            yield env.timeout(3.0)
            return "done"

        assert go(env, env.process(proc())) == "done"

    def test_until_already_processed_event(self):
        env = AsyncioBackend(fast_forward=True)
        event = env.event()
        event.succeed("early")
        go(env)  # drains the succeed
        assert go(env, event) == "early"

    def test_process_failure_propagates(self):
        env = AsyncioBackend(fast_forward=True)

        def proc():
            yield env.timeout(1.0)
            raise RuntimeError("boom")

        env.process(proc())
        with pytest.raises(RuntimeError, match="boom"):
            go(env)

    def test_interrupt_semantics_survive_the_backend(self):
        env = AsyncioBackend(fast_forward=True)
        log = []

        def victim():
            try:
                yield env.timeout(10.0)
            except Interrupt as interrupt:
                log.append((env.now, interrupt.cause))

        def attacker(proc):
            yield env.timeout(2.0)
            proc.interrupt("move it")

        proc = env.process(victim())
        env.process(attacker(proc))
        go(env)
        assert log == [(2.0, "move it")]

    def test_store_get_cancel_race_requeues_under_run_async(self):
        """The PR-5 ``get | timeout`` race, driven by the asyncio loop."""
        env = AsyncioBackend(fast_forward=True)
        store = Store(env)
        seen = []

        def proc():
            yield store.put("a")
            yield store.put("b")
            get = store.get()  # succeeds immediately with "a"
            timeout = env.timeout(0)
            yield get | timeout
            get.cancel()  # loser branch: give "a" back
            seen.append(list(store.items))

        env.process(proc())
        go(env)
        assert seen == [["a", "b"]]

    def test_cancel_pending_get_under_run_async(self):
        env = AsyncioBackend(fast_forward=True)
        store = Store(env)

        def proc():
            get = store.get()
            yield env.timeout(1)
            get.cancel()
            yield store.put("x")

        go(env, env.process(proc()))
        assert store.size == 1

    def test_matches_virtual_backend_exactly(self):
        """Same program, both clocks: identical event trace."""

        def program(env, log):
            store = Store(env, capacity=2)

            def producer():
                for index in range(6):
                    yield store.put(index)
                    yield env.timeout(0.25)

            def consumer():
                while True:
                    item = yield store.get()
                    log.append((round(env.now, 6), item))
                    yield env.timeout(0.4)

            env.process(producer())
            env.process(consumer())

        virtual_log = []
        venv = VirtualTimeBackend()
        program(venv, virtual_log)
        venv.run(until=10.0)

        live_log = []
        lenv = AsyncioBackend(fast_forward=True)
        program(lenv, live_log)
        go(lenv, 10.0)

        assert live_log == virtual_log


class TestWallClock:
    def test_time_scale_compresses_sleep(self):
        env = AsyncioBackend(time_scale=200.0)
        done = []

        def proc():
            yield env.timeout(2.0)  # 2 virtual seconds = 10ms wall
            done.append(env.now)

        env.process(proc())
        go(env)
        assert done and done[0] >= 2.0
        # Wall overhead is stamped into now but must stay small.
        assert done[0] < 10.0

    def test_touch_advances_now(self):
        env = AsyncioBackend(time_scale=1000.0)

        async def main():
            task = asyncio.get_running_loop().create_task(
                env.run_async(stop_on_empty=False)
            )
            before = env.now
            await asyncio.sleep(0.01)
            touched = env.touch()
            assert touched >= before
            env.request_stop()
            await task
            return touched

        touched = asyncio.run(main())
        assert touched > 0.0  # 10ms wall * 1000 = 10 virtual seconds

    def test_external_injection_wakes_parked_loop(self):
        env = AsyncioBackend(time_scale=100.0)
        served = []

        def handle(tag):
            yield env.timeout(0.5)
            served.append(tag)
            return tag

        async def main():
            task = asyncio.get_running_loop().create_task(
                env.run_async(stop_on_empty=False)
            )
            # Let the loop park on an empty queue, then inject.
            await asyncio.sleep(0.005)
            env.touch()
            result = await env.as_future(env.process(handle("req-1")))
            assert result == "req-1"
            env.request_stop()
            await task

        asyncio.run(main())
        assert served == ["req-1"]

    def test_request_stop_exits_parked_loop(self):
        env = AsyncioBackend()

        async def main():
            task = asyncio.get_running_loop().create_task(
                env.run_async(stop_on_empty=False)
            )
            await asyncio.sleep(0.005)
            env.request_stop()
            await task

        asyncio.run(main())  # must terminate


class TestAsFuture:
    def test_resolves_with_value(self):
        env = AsyncioBackend(fast_forward=True)

        def proc():
            yield env.timeout(1.0)
            return 42

        async def main():
            future = env.as_future(env.process(proc()))
            await env.run_async()
            return await future

        assert asyncio.run(main()) == 42

    def test_resolves_with_exception_and_defuses(self):
        env = AsyncioBackend(fast_forward=True)

        def proc():
            yield env.timeout(1.0)
            raise ValueError("nope")

        async def main():
            future = env.as_future(env.process(proc()))
            # The failure is defused by the future: run_async must not
            # re-raise it as an unhandled event failure.
            await env.run_async()
            with pytest.raises(ValueError, match="nope"):
                await future

        asyncio.run(main())

    def test_already_processed_event(self):
        env = AsyncioBackend(fast_forward=True)

        async def main():
            event = Event(env)
            event.succeed("x")
            await env.run_async()
            assert event.callbacks is None  # processed
            return await env.as_future(event)

        assert asyncio.run(main()) == "x"

    def test_cancelled_future_defuses_failure(self):
        env = AsyncioBackend(fast_forward=True)

        def proc():
            yield env.timeout(1.0)
            raise ValueError("ignored")

        async def main():
            future = env.as_future(env.process(proc()))
            future.cancel()
            await env.run_async()  # must not raise

        asyncio.run(main())


class TestRunUntilHelper:
    def test_drives_either_backend(self):
        def proc(env):
            yield env.timeout(1.0)
            return "ok"

        venv = VirtualTimeBackend()
        assert run_until(venv, venv.process(proc(venv))) == "ok"
        lenv = AsyncioBackend(fast_forward=True)
        assert run_until(lenv, lenv.process(proc(lenv))) == "ok"
