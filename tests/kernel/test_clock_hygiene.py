"""Clock hygiene: policy code never touches a clock or event queue.

The whole point of the execution kernel is that everything above it —
``repro.core``, ``repro.serving``, ``repro.apps``, ``repro.brokers``,
``repro.faults``, ``repro.hardware``, ``repro.telemetry``, ``repro.live``
— runs identically under virtual time and the wall clock.  That only
holds if policy modules obtain time and scheduling exclusively through
the :class:`~repro.kernel.ExecutionBackend` protocol.  This test is the
always-on enforcement of the ban (the ruff ``TID251`` configuration in
``pyproject.toml`` is the same gate for editors and CI lint, but ruff
is an optional tool; this scanner runs wherever pytest runs).

Banned outside ``repro.sim`` / ``repro.kernel``:

- ``heapq`` imports — event queues are the kernel's;
- ``time.time()`` / ``time.monotonic()`` — read ``env.now``;
- ``asyncio.sleep()`` — yield ``env.timeout(...)``.

``time.perf_counter`` stays allowed: benchmarking how long the
*simulator* takes is measurement of the tool, not policy time.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Tuple

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Path prefixes (relative to src/repro) exempt from the ban.  Keep in
#: sync with the TID251 per-file-ignores in pyproject.toml.
EXEMPT_PREFIXES = ("sim/", "kernel/")
EXEMPT_FILES = {
    # heapq as a k-way-merge data structure over arrival streams — not
    # an event queue.
    "workload/source.py",
}

BANNED_FROM_IMPORTS = {
    ("time", "time"),
    ("time", "monotonic"),
    ("asyncio", "sleep"),
}
BANNED_ATTRIBUTES = {"time.time", "time.monotonic", "asyncio.sleep"}


def _policy_files() -> List[Path]:
    files = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if rel in EXEMPT_FILES or rel.startswith(EXEMPT_PREFIXES):
            continue
        files.append(path)
    return files


def _violations(path: Path) -> List[Tuple[int, str]]:
    tree = ast.parse(path.read_text(), filename=str(path))
    found: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "heapq" or alias.name.startswith("heapq."):
                    found.append((node.lineno, "import heapq"))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "heapq":
                found.append((node.lineno, "from heapq import ..."))
            for alias in node.names:
                if (node.module, alias.name) in BANNED_FROM_IMPORTS:
                    found.append(
                        (node.lineno, f"from {node.module} import {alias.name}")
                    )
        elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            dotted = f"{node.value.id}.{node.attr}"
            if dotted in BANNED_ATTRIBUTES:
                found.append((node.lineno, dotted))
    return found


def test_scanner_covers_the_tree():
    files = _policy_files()
    assert len(files) > 40, "scanner found suspiciously few policy modules"
    covered = {f.relative_to(SRC).parts[0] for f in files}
    for package in ("core", "serving", "apps", "brokers", "live", "telemetry"):
        assert package in covered


def test_scanner_detects_each_banned_form(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import heapq\n"
        "from heapq import heappush\n"
        "from time import monotonic\n"
        "import time\n"
        "import asyncio\n"
        "t = time.time()\n"
        "m = time.monotonic()\n"
        "async def f():\n"
        "    await asyncio.sleep(1)\n"
    )
    kinds = {kind for _, kind in _violations(bad)}
    assert kinds == {
        "import heapq",
        "from heapq import ...",
        "from time import monotonic",
        "time.time",
        "time.monotonic",
        "asyncio.sleep",
    }


def test_policy_code_is_clock_clean():
    offenders = []
    for path in _policy_files():
        for lineno, kind in _violations(path):
            offenders.append(f"{path.relative_to(SRC)}:{lineno}: {kind}")
    assert not offenders, (
        "policy code must get time/scheduling from repro.kernel, found:\n  "
        + "\n  ".join(offenders)
    )
