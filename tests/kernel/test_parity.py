"""Sim-vs-live parity: the same workload through both backends.

The acceptance property of the clock-agnostic kernel: a recorded
workload driven through :class:`~repro.kernel.AsyncioBackend` in
``fast_forward`` mode produces the *same* ``RunMetrics`` as the
discrete-event backend — same completions, same latencies, same
batch-size histogram, same cache hits — because fast-forward dispatch
follows the identical (time, priority, insertion) order.  A second,
wall-clock test replays time-compressed with real sleeping and asserts
agreement within tolerance (counts exact, latency distortion bounded).
"""

from collections import Counter

import pytest

from repro.cache import CacheConfig
from repro.core.config import ServerConfig
from repro.kernel import AsyncioBackend
from repro.live import replay_trace
from repro.serving.runner import ExperimentConfig, run_experiment, run_open_loop
from repro.vision import ImageNetLikeDataset, ZipfDataset
from repro.workload import Workload

GOLDEN_TRACE = "tests/workload/golden/day.jsonl.gz"

MIB = 1 << 20


def _config(on_complete=None, cache=None, measure=200, dataset=None):
    return ExperimentConfig(
        server=ServerConfig(model="tinyvit-5m", preprocess_device="gpu",
                            cache=cache),
        dataset=dataset,
        concurrency=48,
        warmup_requests=50,
        measure_requests=measure,
        seed=11,
        max_sim_seconds=120.0,
        on_complete=on_complete,
    )


class TestGoldenTraceParity:
    """The pinned 24h trace through both clocks (time-compressed)."""

    def test_fast_forward_replay_is_exact(self):
        report = replay_trace(
            GOLDEN_TRACE,
            model="tinyvit-5m",
            measure_requests=60,
            max_sim_seconds=12000.0,
            fast_forward=True,
        )
        assert report.exact_parity_expected
        sim, live = report.sim.metrics, report.live.metrics
        assert sim.completed == live.completed > 0
        assert sim.latencies == live.latencies
        assert sim.latency == live.latency
        assert sim.mean_batch_size == live.mean_batch_size
        assert sim.cache_hits == live.cache_hits
        assert sim.extras == live.extras

    def test_compressed_wall_clock_replay_within_tolerance(self):
        """Real sleeping (aggressively compressed): counts must match
        exactly; wall-clock jitter may only inflate latencies, and not
        unrecognizably."""
        report = replay_trace(
            GOLDEN_TRACE,
            model="tinyvit-5m",
            measure_requests=25,
            max_sim_seconds=5000.0,
            time_scale=2000.0,
        )
        sim, live = report.sim.metrics, report.live.metrics
        assert sim.completed == live.completed > 0
        # Arrivals are sparse at this rate: batch formation must agree.
        assert live.mean_batch_size == pytest.approx(sim.mean_batch_size)
        assert sim.cache_hits == live.cache_hits
        # Wall jitter adds latency, never removes it; at x2000 the added
        # milliseconds of wall time are bounded by seconds of virtual
        # time.  Generous ceiling: mean within 50x (sim mean is ~4ms).
        assert live.latency.mean >= sim.latency.mean * 0.99
        assert live.latency.mean < sim.latency.mean + 2000.0 * 0.05


class TestClosedLoopParity:
    """High-concurrency closed loop: real batching, caches, backpressure."""

    def test_batch_histogram_and_cache_hits_match(self):
        def run(backend=None):
            batch_sizes = Counter()

            def observe(request):
                if request.batch_size:
                    batch_sizes[request.batch_size] += 1

            cache = CacheConfig(image_cache_bytes=64 * MIB,
                                tensor_cache_bytes=64 * MIB)
            config = _config(
                on_complete=observe,
                cache=cache,
                dataset=ZipfDataset(ImageNetLikeDataset(),
                                    catalog_size=64, skew=1.1),
            )
            result = run_experiment(config, backend=backend)
            return result, batch_sizes

        sim_result, sim_hist = run()
        live_result, live_hist = run(AsyncioBackend(fast_forward=True))

        sim, live = sim_result.metrics, live_result.metrics
        assert sim.completed == live.completed > 0
        assert sim_hist == live_hist
        assert sum(sim_hist.values()) > 0
        assert sim.latencies == live.latencies
        assert sim.cache_hits == live.cache_hits
        assert sim_result.energy == live_result.energy
        assert sim_result.cpu_utilization == live_result.cpu_utilization

    def test_open_loop_workload_parity(self):
        workload = Workload.constant(400.0)

        def run(backend=None):
            return run_open_loop(
                _config(measure=150), workload=workload, backend=backend
            )

        sim = run().metrics
        live = run(AsyncioBackend(fast_forward=True)).metrics
        assert sim.completed == live.completed > 0
        assert sim.latencies == live.latencies
        assert sim.mean_batch_size == live.mean_batch_size
