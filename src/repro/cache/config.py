"""Cache subsystem configuration.

A :class:`CacheConfig` hangs off :class:`~repro.core.config.ServerConfig`
(``cache=None`` by default — the server then takes the exact pre-cache
code path, so every paper figure is bit-identical with caching off).
Capacities are byte budgets; a tier with a zero budget is disabled.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["CacheConfig", "POLICY_LRU", "POLICY_LFU", "POLICY_S3FIFO", "POLICIES"]

POLICY_LRU = "lru"
POLICY_LFU = "lfu"
POLICY_S3FIFO = "s3fifo"
POLICIES = (POLICY_LRU, POLICY_LFU, POLICY_S3FIFO)

MIB = float(1024 * 1024)


@dataclass(frozen=True, kw_only=True)
class CacheConfig:
    """Byte budgets, TTLs, and eviction policy for the three cache tiers.

    - **image tier** — decoded images in host RAM; a hit skips JPEG
      decode (CPU path) or the staging/decode kernels (GPU path).
    - **tensor tier** — preprocessed input tensors resident in the
      :class:`~repro.hardware.memory.GpuMemoryPool`; a hit skips the
      whole preprocessing stage *and* the H2D transfer.  Entries compete
      with request working sets for device memory, so high concurrency
      evicts them (pool-pressure evictions are counted separately).
    - **result tier** — inference outputs; a hit skips the DNN entirely
      for exact-duplicate requests.
    """

    enabled: bool = True
    #: Eviction policy for every tier: "lru", "lfu", or "s3fifo".
    policy: str = POLICY_LRU
    #: Host-RAM budget for decoded images (0 disables the tier).
    image_cache_bytes: float = 0.0
    image_ttl_seconds: Optional[float] = None
    #: Per-GPU device-memory budget for preprocessed tensors (0 disables).
    tensor_cache_bytes: float = 0.0
    tensor_ttl_seconds: Optional[float] = None
    #: Budget for inference outputs (0 disables the tier).
    result_cache_bytes: float = 0.0
    result_ttl_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {self.policy!r}")
        for field_name in ("image_cache_bytes", "tensor_cache_bytes", "result_cache_bytes"):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be >= 0, got {value}")
        for field_name in ("image_ttl_seconds", "tensor_ttl_seconds", "result_ttl_seconds"):
            value = getattr(self, field_name)
            if value is not None and value <= 0:
                raise ValueError(f"{field_name} must be positive or None, got {value}")

    @property
    def any_tier_enabled(self) -> bool:
        return self.enabled and (
            self.image_cache_bytes > 0
            or self.tensor_cache_bytes > 0
            or self.result_cache_bytes > 0
        )

    def validate(self) -> "CacheConfig":
        """Re-run field validation (useful after deserialization)."""
        self.__post_init__()
        return self

    def with_overrides(self, **kwargs) -> "CacheConfig":
        """Copy with fields replaced."""
        return replace(self, **kwargs)

    def with_(self, **kwargs) -> "CacheConfig":
        """Deprecated alias of :meth:`with_overrides`."""
        warnings.warn(
            "CacheConfig.with_() is deprecated; use with_overrides()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.with_overrides(**kwargs)
