"""Pluggable eviction policies for the cache tiers.

A policy only orders *keys*; byte accounting lives in the tier.  The
tier calls :meth:`EvictionPolicy.victim` repeatedly until the incoming
entry fits its byte budget.

Three policies are provided:

- **LRU** — classic recency order (an ``OrderedDict`` move-to-end).
- **LFU** — O(1) frequency buckets; ties broken by recency within a
  bucket.  Resists one-shot scans better than LRU on Zipf traffic.
- **S3-FIFO** — the small/main/ghost design of Yang et al. (SOSP'23):
  new keys enter a small probationary FIFO; keys re-referenced while
  probationary (or remembered by the ghost) are promoted to the main
  FIFO, which evicts with one-bit second chance.  Cheap and scan-
  resistant, which is why production CDN caches adopted it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from .config import POLICIES, POLICY_LFU, POLICY_LRU, POLICY_S3FIFO

__all__ = [
    "EvictionPolicy",
    "LruPolicy",
    "LfuPolicy",
    "S3FifoPolicy",
    "make_policy",
]


class EvictionPolicy:
    """Order cache keys for eviction."""

    name = "policy"

    def admit(self, key: str) -> None:
        """Register a newly inserted key."""
        raise NotImplementedError

    def touch(self, key: str) -> None:
        """Record a hit on ``key``."""
        raise NotImplementedError

    def victim(self) -> Optional[str]:
        """Pick and remove the next key to evict (None when empty)."""
        raise NotImplementedError

    def discard(self, key: str) -> None:
        """Forget ``key`` (evicted externally, expired, or invalidated)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        raise NotImplementedError


class LruPolicy(EvictionPolicy):
    """Least-recently-used ordering."""

    name = POLICY_LRU

    def __init__(self) -> None:
        self._order: "OrderedDict[str, None]" = OrderedDict()

    def admit(self, key: str) -> None:
        if key in self._order:
            raise KeyError(f"key {key!r} already admitted")
        self._order[key] = None

    def touch(self, key: str) -> None:
        if key in self._order:
            self._order.move_to_end(key)

    def victim(self) -> Optional[str]:
        if not self._order:
            return None
        key, _ = self._order.popitem(last=False)
        return key

    def discard(self, key: str) -> None:
        self._order.pop(key, None)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: str) -> bool:
        return key in self._order


class LfuPolicy(EvictionPolicy):
    """Least-frequently-used with O(1) frequency buckets.

    Within the minimum-frequency bucket the least recently touched key
    is evicted first (LRU tie-break), matching the usual LFU-with-aging
    implementations.
    """

    name = POLICY_LFU

    def __init__(self) -> None:
        self._freq: Dict[str, int] = {}
        self._buckets: Dict[int, "OrderedDict[str, None]"] = {}
        self._min_freq = 0

    def admit(self, key: str) -> None:
        if key in self._freq:
            raise KeyError(f"key {key!r} already admitted")
        self._freq[key] = 1
        self._buckets.setdefault(1, OrderedDict())[key] = None
        self._min_freq = 1

    def touch(self, key: str) -> None:
        freq = self._freq.get(key)
        if freq is None:
            return
        bucket = self._buckets[freq]
        del bucket[key]
        if not bucket:
            del self._buckets[freq]
            if self._min_freq == freq:
                self._min_freq = freq + 1
        self._freq[key] = freq + 1
        self._buckets.setdefault(freq + 1, OrderedDict())[key] = None

    def victim(self) -> Optional[str]:
        if not self._freq:
            return None
        while self._min_freq not in self._buckets:
            self._min_freq += 1
        bucket = self._buckets[self._min_freq]
        key, _ = bucket.popitem(last=False)
        if not bucket:
            del self._buckets[self._min_freq]
        del self._freq[key]
        return key

    def discard(self, key: str) -> None:
        freq = self._freq.pop(key, None)
        if freq is None:
            return
        bucket = self._buckets.get(freq)
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._buckets[freq]

    def __len__(self) -> int:
        return len(self._freq)

    def __contains__(self, key: str) -> bool:
        return key in self._freq


class S3FifoPolicy(EvictionPolicy):
    """S3-FIFO-style small/main/ghost queues (entry-count quotas).

    ``small_fraction`` of the tracked entries sit in the probationary
    FIFO.  The ghost remembers up to ``ghost_multiple`` times the live
    entry count of recently evicted keys so a quick re-reference is
    admitted straight to main.
    """

    name = POLICY_S3FIFO

    def __init__(self, small_fraction: float = 0.1, ghost_multiple: float = 1.0) -> None:
        if not 0 < small_fraction < 1:
            raise ValueError(f"small_fraction must be in (0, 1), got {small_fraction}")
        if ghost_multiple < 0:
            raise ValueError(f"ghost_multiple must be >= 0, got {ghost_multiple}")
        self.small_fraction = small_fraction
        self.ghost_multiple = ghost_multiple
        self._small: "OrderedDict[str, None]" = OrderedDict()
        self._main: "OrderedDict[str, None]" = OrderedDict()
        self._ghost: "OrderedDict[str, None]" = OrderedDict()
        #: One-bit reference flags (the "accessed since insertion" bit).
        self._referenced: Dict[str, bool] = {}

    def admit(self, key: str) -> None:
        if key in self._referenced:
            raise KeyError(f"key {key!r} already admitted")
        if key in self._ghost:
            del self._ghost[key]
            self._main[key] = None
        else:
            self._small[key] = None
        self._referenced[key] = False

    def touch(self, key: str) -> None:
        if key in self._referenced:
            self._referenced[key] = True

    def victim(self) -> Optional[str]:
        total = len(self._small) + len(self._main)
        if total == 0:
            return None
        # Evict from small once it exceeds its quota (or main is empty).
        small_quota = max(1, int(total * self.small_fraction))
        while True:
            from_small = len(self._small) >= small_quota or not self._main
            if from_small and self._small:
                key, _ = self._small.popitem(last=False)
                if self._referenced.pop(key):
                    # Survived probation: promote instead of evicting.
                    self._main[key] = None
                    self._referenced[key] = False
                    continue
                self._remember_ghost(key)
                return key
            if self._main:
                key, _ = self._main.popitem(last=False)
                if self._referenced.pop(key):
                    # Second chance: reinsert at the tail, clear the bit.
                    self._main[key] = None
                    self._referenced[key] = False
                    continue
                self._remember_ghost(key)
                return key
            return None

    def _remember_ghost(self, key: str) -> None:
        limit = int(self.ghost_multiple * max(1, len(self._referenced)))
        if limit <= 0:
            return
        self._ghost[key] = None
        while len(self._ghost) > limit:
            self._ghost.popitem(last=False)

    def discard(self, key: str) -> None:
        if self._referenced.pop(key, None) is None:
            return
        self._small.pop(key, None)
        self._main.pop(key, None)

    def __len__(self) -> int:
        return len(self._referenced)

    def __contains__(self, key: str) -> bool:
        return key in self._referenced


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate an eviction policy by config name."""
    if name == POLICY_LRU:
        return LruPolicy()
    if name == POLICY_LFU:
        return LfuPolicy()
    if name == POLICY_S3FIFO:
        return S3FifoPolicy()
    raise ValueError(f"unknown eviction policy {name!r}; expected one of {POLICIES}")
