"""Multi-tier content-aware caching (decoded images, tensors, results).

The paper shows non-inference work — JPEG decode, resize/normalize, and
host<->device transfer — dominating end-to-end latency for small models.
Under production traffic request popularity is heavily skewed
(Zipf-like), so repeated preprocessing of popular images is wasted work.
This package short-circuits pipeline stages for content the server has
seen before:

- **image tier** (host RAM) — skips JPEG decode;
- **tensor tier** (GPU memory pool) — skips preprocessing *and* the
  H2D transfer, competing with request working sets for device memory;
- **result tier** — skips the DNN for exact-duplicate requests.

Enable via ``ServerConfig(cache=CacheConfig(...))``; with ``cache=None``
(the default) the server takes the exact pre-cache code path.  Drive it
with a skewed workload via
:class:`~repro.vision.datasets.ZipfDataset`, or sweep from the shell::

    python -m repro cache --skews 0.6,1.0,1.3 --cache-mb 64,256
"""

from .config import POLICIES, POLICY_LFU, POLICY_LRU, POLICY_S3FIFO, CacheConfig
from .policies import EvictionPolicy, LfuPolicy, LruPolicy, S3FifoPolicy, make_policy
from .tiers import CacheEntry, CacheHierarchy, CacheStats, CacheTier, GpuTensorCache

__all__ = [
    "CacheConfig",
    "CacheEntry",
    "CacheHierarchy",
    "CacheStats",
    "CacheTier",
    "EvictionPolicy",
    "GpuTensorCache",
    "LfuPolicy",
    "LruPolicy",
    "POLICIES",
    "POLICY_LFU",
    "POLICY_LRU",
    "POLICY_S3FIFO",
    "S3FifoPolicy",
    "make_policy",
]
