"""Content-addressed cache tiers and the per-server hierarchy.

Tiers are byte-budgeted key/value maps with TTL expiry and a pluggable
:mod:`eviction policy <repro.cache.policies>`.  Values are descriptors
(the simulator never touches pixels): the image tier stores decoded-size
bookkeeping, the tensor tier stores live
:class:`~repro.hardware.memory.Allocation` handles inside the GPU memory
pool — so cached tensors genuinely compete with request working sets for
device memory and get pushed out under concurrency pressure — and the
result tier stores response sizes.

Every tier keeps a :class:`CacheStats` ledger (hits, misses, TTL
expirations, admissions, rejections, policy evictions, pool-pressure
evictions, bytes) that flows into ``RunMetrics.extras`` and the CSV/JSON
exports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .config import CacheConfig
from .policies import EvictionPolicy, make_policy

__all__ = ["CacheStats", "CacheEntry", "CacheTier", "GpuTensorCache", "CacheHierarchy"]


@dataclass
class CacheStats:
    """Counters for one tier (whole run, including warm-up)."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    admissions: int = 0
    #: Admissions refused (entry larger than the budget, or — tensor
    #: tier — the GPU pool had no free bytes to lend).
    rejections: int = 0
    #: Evictions decided by the tier's own policy (budget pressure).
    evictions: int = 0
    evicted_bytes: float = 0.0
    #: Tensor tier only: entries pushed out of the GPU *pool* by request
    #: working sets (the paper's memory-capacity contention).
    pressure_evictions: int = 0
    pressure_evicted_bytes: float = 0.0
    #: Bytes served from cache (sum of hit entry sizes).
    hit_bytes: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self, prefix: str) -> Dict[str, float]:
        """Flat export with ``prefix`` (e.g. ``cache_image_``)."""
        return {
            f"{prefix}hits": float(self.hits),
            f"{prefix}misses": float(self.misses),
            f"{prefix}hit_rate": self.hit_rate,
            f"{prefix}expirations": float(self.expirations),
            f"{prefix}admissions": float(self.admissions),
            f"{prefix}rejections": float(self.rejections),
            f"{prefix}evictions": float(self.evictions),
            f"{prefix}evicted_bytes": self.evicted_bytes,
            f"{prefix}pressure_evictions": float(self.pressure_evictions),
            f"{prefix}pressure_evicted_bytes": self.pressure_evicted_bytes,
        }

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum (aggregating per-GPU tensor tiers)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            expirations=self.expirations + other.expirations,
            admissions=self.admissions + other.admissions,
            rejections=self.rejections + other.rejections,
            evictions=self.evictions + other.evictions,
            evicted_bytes=self.evicted_bytes + other.evicted_bytes,
            pressure_evictions=self.pressure_evictions + other.pressure_evictions,
            pressure_evicted_bytes=self.pressure_evicted_bytes + other.pressure_evicted_bytes,
            hit_bytes=self.hit_bytes + other.hit_bytes,
        )


class CacheEntry:
    """One cached object (descriptor + optional payload handle)."""

    __slots__ = ("key", "nbytes", "inserted_at", "expires_at", "payload", "resident")

    def __init__(
        self,
        key: str,
        nbytes: float,
        inserted_at: float,
        expires_at: Optional[float],
        payload: object = None,
    ) -> None:
        self.key = key
        self.nbytes = nbytes
        self.inserted_at = inserted_at
        self.expires_at = expires_at
        self.payload = payload
        #: False once the backing storage is gone (pool eviction); a
        #: holder that looked the entry up earlier must re-check this.
        self.resident = True

    def __repr__(self) -> str:
        state = "resident" if self.resident else "gone"
        return f"<CacheEntry {self.key!r} {self.nbytes:.0f} B ({state})>"


class CacheTier:
    """One byte-budgeted, TTL-aware, policy-managed cache tier."""

    def __init__(
        self,
        env,
        name: str,
        capacity_bytes: float,
        policy: str = "lru",
        ttl_seconds: Optional[float] = None,
        on_evict_entry: Optional[Callable[[CacheEntry], None]] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive or None, got {ttl_seconds}")
        self.env = env
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.ttl_seconds = ttl_seconds
        self.policy: EvictionPolicy = make_policy(policy)
        self.on_evict_entry = on_evict_entry
        self.stats = CacheStats()
        self._entries: Dict[str, CacheEntry] = {}
        self.used_bytes = 0.0
        self.peak_bytes = 0.0

    def __repr__(self) -> str:
        return (
            f"<CacheTier {self.name} {self.policy.name} "
            f"{self.used_bytes:.0f}/{self.capacity_bytes:.0f} B, {len(self._entries)} entries>"
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def lookup(self, key: str) -> Optional[CacheEntry]:
        """Hit/miss-counted lookup; expired entries count as misses."""
        entry = self._entries.get(key)
        if entry is not None and entry.expires_at is not None and self.env.now >= entry.expires_at:
            self._remove(entry)
            self.stats.expirations += 1
            entry = None
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.stats.hit_bytes += entry.nbytes
        self.policy.touch(key)
        return entry

    def peek(self, key: str) -> Optional[CacheEntry]:
        """Lookup without touching counters or recency (tests/diagnostics)."""
        return self._entries.get(key)

    def admit(self, key: str, nbytes: float, payload: object = None) -> Optional[CacheEntry]:
        """Insert ``key``; evicts per policy until it fits the budget.

        Returns the live entry, or ``None`` when the object is larger
        than the whole budget (admission rejected).  Re-admitting a
        present key refreshes nothing and returns the existing entry.
        """
        if nbytes < 0:
            raise ValueError(f"negative entry size {nbytes}")
        existing = self._entries.get(key)
        if existing is not None:
            return existing
        if nbytes > self.capacity_bytes:
            self.stats.rejections += 1
            return None
        while self.used_bytes + nbytes > self.capacity_bytes:
            victim_key = self.policy.victim()
            if victim_key is None:
                break
            victim = self._entries.pop(victim_key)
            self.used_bytes -= victim.nbytes
            self.stats.evictions += 1
            self.stats.evicted_bytes += victim.nbytes
            victim.resident = False
            if self.on_evict_entry is not None:
                self.on_evict_entry(victim)
        entry = CacheEntry(
            key,
            nbytes,
            inserted_at=self.env.now,
            expires_at=(self.env.now + self.ttl_seconds) if self.ttl_seconds else None,
            payload=payload,
        )
        self._entries[key] = entry
        self.policy.admit(key)
        self.used_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        self.stats.admissions += 1
        return entry

    def invalidate(self, key: str, pressure: bool = False) -> None:
        """Drop ``key`` if present.

        ``pressure=True`` attributes the removal to external memory
        pressure (GPU pool eviction) rather than the tier's own policy.
        """
        entry = self._entries.get(key)
        if entry is None:
            return
        self._remove(entry)
        if pressure:
            self.stats.pressure_evictions += 1
            self.stats.pressure_evicted_bytes += entry.nbytes

    def _remove(self, entry: CacheEntry) -> None:
        del self._entries[entry.key]
        self.policy.discard(entry.key)
        self.used_bytes -= entry.nbytes
        entry.resident = False
        if self.on_evict_entry is not None:
            self.on_evict_entry(entry)


class GpuTensorCache:
    """Preprocessed-tensor tier resident in one GPU's memory pool.

    Each entry's payload is a live pool :class:`Allocation` tagged
    ``"cache"``, registered evictable: when request working sets fill
    the pool, the pool's eviction sweep reclaims cache entries and this
    tier invalidates them (counted as pressure evictions).  A holder of
    a looked-up entry must re-check ``entry.resident`` at use time.
    """

    def __init__(
        self,
        env,
        gpu,
        capacity_bytes: float,
        policy: str = "lru",
        ttl_seconds: Optional[float] = None,
    ) -> None:
        self.gpu = gpu
        self.pool = gpu.memory
        self.tier = CacheTier(
            env,
            name=f"{gpu.name}.tensor-cache",
            capacity_bytes=capacity_bytes,
            policy=policy,
            ttl_seconds=ttl_seconds,
            on_evict_entry=self._release_allocation,
        )

    @property
    def stats(self) -> CacheStats:
        return self.tier.stats

    def __len__(self) -> int:
        return len(self.tier)

    def lookup(self, key: str) -> Optional[CacheEntry]:
        return self.tier.lookup(key)

    def admit(self, key: str, nbytes: float) -> Optional[CacheEntry]:
        """Admit a tensor if the pool has free bytes *right now*.

        The cache never blocks a request on its own allocation: if the
        pool cannot satisfy it immediately the admission is dropped
        (counted as a rejection) — exactly what a real serving cache
        does when device memory is contended.
        """
        if key in self.tier:
            return self.tier.peek(key)
        allocation = self.pool.try_alloc(
            nbytes,
            evictable=True,
            on_evict=lambda alloc, k=key: self._on_pool_evict(k),
            tag="cache",
        )
        if allocation is None:
            self.tier.stats.rejections += 1
            return None
        entry = self.tier.admit(key, nbytes, payload=allocation)
        if entry is None:
            self.pool.free(allocation)
        return entry

    def _on_pool_evict(self, key: str) -> None:
        # The pool frees the allocation itself after this callback; the
        # tier just has to forget the entry and attribute the eviction.
        self.tier.invalidate(key, pressure=True)

    def _release_allocation(self, entry: CacheEntry) -> None:
        if entry.payload is not None:
            self.pool.free(entry.payload)  # idempotent


class CacheHierarchy:
    """All cache tiers of one server deployment.

    Tier methods are safe to call unconditionally: a disabled tier (zero
    budget) or an empty content id short-circuits to a miss/no-op
    without touching any counters.
    """

    def __init__(self, env, config: CacheConfig, gpus) -> None:
        config.validate()
        self.config = config
        self.image: Optional[CacheTier] = None
        self.result: Optional[CacheTier] = None
        self.tensor: List[GpuTensorCache] = []
        if config.image_cache_bytes > 0:
            self.image = CacheTier(
                env,
                name="image-cache",
                capacity_bytes=config.image_cache_bytes,
                policy=config.policy,
                ttl_seconds=config.image_ttl_seconds,
            )
        if config.tensor_cache_bytes > 0:
            self.tensor = [
                GpuTensorCache(
                    env,
                    gpu,
                    capacity_bytes=config.tensor_cache_bytes,
                    policy=config.policy,
                    ttl_seconds=config.tensor_ttl_seconds,
                )
                for gpu in gpus
            ]
        if config.result_cache_bytes > 0:
            self.result = CacheTier(
                env,
                name="result-cache",
                capacity_bytes=config.result_cache_bytes,
                policy=config.policy,
                ttl_seconds=config.result_ttl_seconds,
            )

    # -- lookups/admissions (no-ops without a content id or tier) ------------

    def lookup_image(self, content_id: str) -> Optional[CacheEntry]:
        if self.image is None or not content_id:
            return None
        return self.image.lookup(content_id)

    def admit_image(self, content_id: str, nbytes: float) -> Optional[CacheEntry]:
        if self.image is None or not content_id:
            return None
        return self.image.admit(content_id, nbytes)

    def lookup_tensor(self, gpu_index: int, key: str) -> Optional[CacheEntry]:
        if not self.tensor or not key:
            return None
        return self.tensor[gpu_index].lookup(key)

    def admit_tensor(self, gpu_index: int, key: str, nbytes: float) -> Optional[CacheEntry]:
        if not self.tensor or not key:
            return None
        return self.tensor[gpu_index].admit(key, nbytes)

    def lookup_result(self, key: str) -> Optional[CacheEntry]:
        if self.result is None or not key:
            return None
        return self.result.lookup(key)

    def admit_result(self, key: str, nbytes: float) -> Optional[CacheEntry]:
        if self.result is None or not key:
            return None
        return self.result.admit(key, nbytes)

    # -- reporting -----------------------------------------------------------

    def stats_dict(self) -> Dict[str, float]:
        """Flat counters for ``RunMetrics.extras`` / exports."""
        out: Dict[str, float] = {}
        if self.image is not None:
            out.update(self.image.stats.as_dict("cache_image_"))
        if self.tensor:
            merged = CacheStats()
            for cache in self.tensor:
                merged = merged.merge(cache.stats)
            out.update(merged.as_dict("cache_tensor_"))
            out["cache_tensor_resident_bytes"] = float(
                sum(cache.tier.used_bytes for cache in self.tensor)
            )
        if self.result is not None:
            out.update(self.result.stats.as_dict("cache_result_"))
        return out

    def register_metrics(self, registry) -> None:
        """Publish per-tier counters as registry views."""

        def tier_stats(tier_name: str):
            if tier_name == "image":
                return self.image.stats
            if tier_name == "result":
                return self.result.stats
            merged = CacheStats()
            for cache in self.tensor:
                merged = merged.merge(cache.stats)
            return merged

        tiers = []
        if self.image is not None:
            tiers.append(("image", lambda: self.image.used_bytes))
        if self.tensor:
            tiers.append(
                ("tensor", lambda: sum(c.tier.used_bytes for c in self.tensor))
            )
        if self.result is not None:
            tiers.append(("result", lambda: self.result.used_bytes))
        for tier_name, used_fn in tiers:
            registry.counter_fn(
                "repro_cache_hits_total",
                "Cache lookups served by the tier",
                lambda t=tier_name: tier_stats(t).hits,
                tier=tier_name,
            )
            registry.counter_fn(
                "repro_cache_misses_total",
                "Cache lookups the tier could not serve",
                lambda t=tier_name: tier_stats(t).misses,
                tier=tier_name,
            )
            registry.counter_fn(
                "repro_cache_evictions_total",
                "Entries evicted from the tier",
                lambda t=tier_name: tier_stats(t).evictions,
                tier=tier_name,
            )
            registry.gauge_fn(
                "repro_cache_used_bytes",
                "Bytes currently resident in the tier",
                used_fn,
                tier=tier_name,
            )
