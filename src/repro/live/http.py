"""Minimal asyncio HTTP/1.1 front-end for a :class:`~repro.live.node.LiveNode`.

Hand-rolled on ``asyncio.start_server`` (the repo deliberately has no
web-framework dependency).  Good enough for the serving surface it
exposes — short-lived JSON requests from benchmarking tools and a
Prometheus scraper — not a general-purpose HTTP implementation.

Endpoints:

- ``GET /healthz``  — liveness: ``{"status": "ok"}`` (``"draining"``
  once shutdown has begun).
- ``GET /metrics``  — Prometheus text exposition from the node's
  :class:`~repro.telemetry.session.TelemetrySession` registry (with
  exemplar trace ids on histogram buckets when tracing flows).
- ``GET /metrics/history`` — the ring-buffered time-series store as
  JSON (``?since=<t>`` trims to points at or after ``t``); 404 until a
  scraper is configured.  ``repro top`` polls this.
- ``GET /stats``    — JSON snapshot of admission/completion counters,
  SLO burn windows, and scraper/alert state.
- ``POST /v1/infer`` — admit one request; body ``{"size": "medium",
  "key": 123}`` (both optional); responds after completion with
  latency, batch size, cache tier, and per-span seconds.  A W3C
  ``traceparent`` header joins the caller's distributed trace; the
  response carries the server-side ``traceparent`` back.

Connections are ``Connection: close`` — one request per connection
keeps the parser trivial and the shutdown path enumerable.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from .node import LiveNode, NodeShuttingDown

__all__ = ["LiveHttpServer"]

_MAX_HEADER_BYTES = 16384
_MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class LiveHttpServer:
    """Serve a :class:`LiveNode` over HTTP on ``host:port``."""

    def __init__(self, node: LiveNode, host: str = "127.0.0.1", port: int = 8080) -> None:
        self.node = node
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound (host, port) — resolves ``port=0``."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(self._handle, self.host, self.port)

    async def stop(self) -> None:
        """Stop accepting new connections (in-flight handlers finish)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request handling --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await self._respond(reader)
        except Exception as error:  # noqa: BLE001 - handler must not leak
            status, payload = 500, {"error": type(error).__name__, "detail": str(error)}
        body = json.dumps(payload).encode()
        reason = _REASONS.get(status, "Unknown")
        content_type = (
            "text/plain; version=0.0.4; charset=utf-8"
            if payload.get("_raw")
            else "application/json"
        )
        if "_raw" in payload:
            body = payload["_raw"].encode()
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode()
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _respond(self, reader: asyncio.StreamReader) -> Tuple[int, Dict[str, Any]]:
        try:
            request_line, headers = await self._read_head(reader)
        except ValueError as error:
            return 400, {"error": "bad request", "detail": str(error)}
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {"error": "malformed request line"}
        method, path, _version = parts
        path, _, query = path.partition("?")

        if method == "GET" and path == "/healthz":
            return 200, {"status": "ok" if self.node.accepting else "draining"}
        if method == "GET" and path == "/metrics":
            return 200, {"_raw": self.node.prometheus_text()}
        if method == "GET" and path == "/metrics/history":
            return self._history(query)
        if method == "GET" and path == "/stats":
            return 200, self.node.stats()
        if path == "/v1/infer":
            if method != "POST":
                return 405, {"error": "use POST"}
            return await self._infer(reader, headers)
        if method not in ("GET", "POST"):
            return 405, {"error": f"method {method} not supported"}
        return 404, {"error": f"no route for {path}"}

    def _history(self, query: str) -> Tuple[int, Dict[str, Any]]:
        since: Optional[float] = None
        for part in query.split("&"):
            name, _, value = part.partition("=")
            if name == "since" and value:
                try:
                    since = float(value)
                except ValueError:
                    return 400, {"error": f"since must be a number, got {value!r}"}
        payload = self.node.history_dict(since=since)
        if payload is None:
            return 404, {"error": "no metrics scraper configured on this node"}
        return 200, payload

    async def _infer(self, reader: asyncio.StreamReader, headers: Dict[str, str]) -> Tuple[int, Dict[str, Any]]:
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            return 413, {"error": "body too large"}
        body = await reader.readexactly(length) if length else b""
        if body:
            try:
                spec = json.loads(body)
            except json.JSONDecodeError:
                return 400, {"error": "body must be JSON"}
            if not isinstance(spec, dict):
                return 400, {"error": "body must be a JSON object"}
        else:
            spec = {}
        size = spec.get("size", "medium")
        key = spec.get("key")
        if key is not None and not isinstance(key, int):
            return 400, {"error": "key must be an integer"}
        traceparent = headers.get("traceparent")
        try:
            result = await self.node.infer(size=size, key=key, traceparent=traceparent)
        except NodeShuttingDown:
            self.node.rejected += 1
            return 503, {"error": "node is shutting down"}
        except ValueError as error:
            return 400, {"error": str(error)}
        return 200, result

    @staticmethod
    async def _read_head(reader: asyncio.StreamReader) -> Tuple[str, Dict[str, str]]:
        try:
            raw = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            raise ValueError("truncated request head") from error
        except asyncio.LimitOverrunError as error:
            raise ValueError("request head too large") from error
        if len(raw) > _MAX_HEADER_BYTES:
            raise ValueError("request head too large")
        lines = raw.decode("latin-1").split("\r\n")
        request_line = lines[0]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return request_line, headers
