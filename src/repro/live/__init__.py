"""Live serving: the simulated policy stack on a real clock.

``python -m repro serve`` boots a :class:`LiveNode` — the same
:class:`~repro.core.server.InferenceServer`, dynamic batchers, cache
tiers, and telemetry the discrete-event experiments measure — on an
:class:`~repro.kernel.AsyncioBackend`, fronted by a small HTTP API
(:class:`LiveHttpServer`).  :func:`replay_trace` drives one recorded
``repro-trace-v1`` workload through both clocks and reports the
sim-vs-live latency gap.
"""

from .http import LiveHttpServer
from .node import LiveNode, LiveNodeConfig, NodeShuttingDown
from .replay import ReplayReport, replay_trace

__all__ = [
    "LiveHttpServer",
    "LiveNode",
    "LiveNodeConfig",
    "NodeShuttingDown",
    "ReplayReport",
    "replay_trace",
]
