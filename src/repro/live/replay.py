"""Sim-vs-live comparison: one trace, two clocks, one policy stack.

:func:`replay_trace` drives a recorded ``repro-trace-v1`` workload
through the serving stack twice —

1. under the :class:`~repro.kernel.VirtualTimeBackend` (the
   deterministic DES every golden result uses), and
2. under an :class:`~repro.kernel.AsyncioBackend` (time-compressed by
   ``time_scale``, or ``fast_forward`` for a no-sleep run)

— using the *same* :func:`~repro.serving.runner.run_open_loop` source
both times.  Because the kernel is clock-agnostic, any disagreement
between the two :class:`~repro.core.metrics.RunMetrics` is attributable
to the clock: wall-time scheduling jitter, asyncio dispatch overhead,
or genuine nondeterminism — exactly the gap the comparison quantifies.
In ``fast_forward`` mode the dispatch order is identical, so the run is
a strict parity check (the test suite pins this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.config import ServerConfig
from ..kernel import AsyncioBackend
from ..serving.runner import ExperimentConfig, RunResult, run_open_loop
from ..vision.datasets import reference_dataset
from ..workload import Workload

__all__ = ["ReplayReport", "replay_trace"]


def _pct(live: float, sim: float) -> Optional[float]:
    """Relative live-vs-sim delta, or None when sim is zero."""
    if sim == 0:
        return None
    return (live - sim) / sim


@dataclass(frozen=True)
class ReplayReport:
    """Side-by-side measurements of one trace under both clocks."""

    trace: str
    workload_name: str
    time_scale: float
    fast_forward: bool
    sim: RunResult
    live: RunResult

    @property
    def exact_parity_expected(self) -> bool:
        """Fast-forward replays dispatch in DES order: metrics match."""
        return self.fast_forward

    def rows(self) -> List[List[str]]:
        """(metric, sim, live, delta) rows for tabular display."""
        pairs = [
            ("completed requests", "{:,.0f}", float(self.sim.metrics.completed),
             float(self.live.metrics.completed)),
            ("throughput (req/s)", "{:,.2f}", self.sim.throughput, self.live.throughput),
            ("mean latency (ms)", "{:.3f}", self.sim.mean_latency * 1e3,
             self.live.mean_latency * 1e3),
            ("p50 latency (ms)", "{:.3f}", self.sim.metrics.latency.p50 * 1e3,
             self.live.metrics.latency.p50 * 1e3),
            ("p90 latency (ms)", "{:.3f}", self.sim.metrics.latency.p90 * 1e3,
             self.live.metrics.latency.p90 * 1e3),
            ("p99 latency (ms)", "{:.3f}", self.sim.p99_latency * 1e3,
             self.live.p99_latency * 1e3),
            ("mean batch size", "{:.3f}", self.sim.metrics.mean_batch_size,
             self.live.metrics.mean_batch_size),
            ("cache hit fraction", "{:.4f}", self.sim.metrics.cache_hit_fraction,
             self.live.metrics.cache_hit_fraction),
        ]
        rows = []
        for name, fmt, sim_value, live_value in pairs:
            delta = _pct(live_value, sim_value)
            rows.append([
                name,
                fmt.format(sim_value),
                fmt.format(live_value),
                "-" if delta is None else f"{delta:+.2%}",
            ])
        return rows

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace": self.trace,
            "workload": self.workload_name,
            "time_scale": self.time_scale,
            "fast_forward": self.fast_forward,
            "sim_completed": self.sim.metrics.completed,
            "live_completed": self.live.metrics.completed,
            "sim_throughput": self.sim.throughput,
            "live_throughput": self.live.throughput,
            "sim_mean_latency": self.sim.mean_latency,
            "live_mean_latency": self.live.mean_latency,
            "sim_p50_latency": self.sim.metrics.latency.p50,
            "live_p50_latency": self.live.metrics.latency.p50,
            "sim_p99_latency": self.sim.p99_latency,
            "live_p99_latency": self.live.p99_latency,
            "sim_mean_batch_size": self.sim.metrics.mean_batch_size,
            "live_mean_batch_size": self.live.metrics.mean_batch_size,
            "sim_cache_hit_fraction": self.sim.metrics.cache_hit_fraction,
            "live_cache_hit_fraction": self.live.metrics.cache_hit_fraction,
        }


def replay_trace(
    trace: str,
    *,
    model: str = "resnet-50",
    preprocess_device: str = "gpu",
    size: str = "medium",
    gpu_count: int = 1,
    seed: int = 0,
    warmup_requests: int = 0,
    measure_requests: int = 500,
    max_sim_seconds: float = 600.0,
    time_scale: float = 60.0,
    fast_forward: bool = False,
    server: Optional[ServerConfig] = None,
    telemetry=None,
) -> ReplayReport:
    """Replay ``trace`` under both clocks and report the comparison.

    ``time_scale`` compresses the live run (60 = one recorded minute
    per wall second); ``fast_forward`` removes sleeping entirely, which
    turns the live run into a strict parity check of the asyncio
    dispatch path.  ``server`` overrides the full deployment config
    (``model``/``preprocess_device`` are ignored when it is given).
    ``telemetry`` (a :class:`~repro.telemetry.TelemetryConfig`) attaches
    the identical observability stack — scraper, tracer, SLO — to both
    runs; being observer-neutral it never perturbs the parity.
    """
    workload = Workload.replay(trace)
    config = ExperimentConfig(
        server=server if server is not None else ServerConfig(
            model=model,
            preprocess_device=preprocess_device,
            preprocess_batch_size=64,
        ),
        dataset=reference_dataset(size),
        gpu_count=gpu_count,
        seed=seed,
        warmup_requests=warmup_requests,
        measure_requests=measure_requests,
        max_sim_seconds=max_sim_seconds,
        telemetry=telemetry,
    )
    sim = run_open_loop(config, workload=workload)
    live = run_open_loop(
        config,
        workload=workload,
        backend=AsyncioBackend(time_scale=time_scale, fast_forward=fast_forward),
    )
    return ReplayReport(
        trace=trace,
        workload_name=workload.name,
        time_scale=time_scale,
        fast_forward=fast_forward,
        sim=sim,
        live=live,
    )
