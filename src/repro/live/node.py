"""A live serving node: the simulated policy stack on a wall clock.

:class:`LiveNode` deploys the *identical* components every simulated
experiment uses — :class:`~repro.hardware.platform.ServerNode`,
:class:`~repro.core.server.InferenceServer` (dynamic batching, cache
tiers, instances), :class:`~repro.telemetry.session.TelemetrySession` —
on an :class:`~repro.kernel.AsyncioBackend`, so external HTTP requests
flow through exactly the policy code the paper's experiments measure.

The request path for a live submission:

1. ``env.touch()`` stamps ``now`` from the wall clock (arrival time);
2. ``server.submit(image)`` enters the ordinary admission path —
   batcher queue, cache lookup, preprocess, inference;
3. ``env.as_future(done)`` bridges the completion event to an
   :class:`asyncio.Future` the HTTP handler awaits.

Shutdown is graceful: admission closes, every batcher drains its queue
as partial batches (bounded by ``grace_seconds``), then the dispatch
loop is stopped and final metrics are snapshotted.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.config import ServerConfig
from ..core.metrics import MetricsCollector, RunMetrics
from ..core.server import InferenceServer
from ..hardware.calibration import DEFAULT_CALIBRATION, Calibration
from ..hardware.platform import ServerNode
from ..kernel import AsyncioBackend, RandomStreams
from ..telemetry import TelemetryConfig, TelemetrySession
from ..vision.datasets import reference_dataset

__all__ = ["LiveNodeConfig", "LiveNode", "NodeShuttingDown"]

_SIZES = ("small", "medium", "large")


class NodeShuttingDown(RuntimeError):
    """Raised for submissions arriving after shutdown began."""


@dataclass(frozen=True, kw_only=True)
class LiveNodeConfig:
    """Deployment of one live serving node."""

    server: ServerConfig = field(default_factory=ServerConfig)
    calibration: Calibration = DEFAULT_CALIBRATION
    gpu_count: int = 1
    seed: int = 0
    #: Simulated seconds per wall second.  ``1.0`` serves in real time;
    #: larger values compress time (useful for accelerated soak tests).
    time_scale: float = 1.0
    #: Batcher-drain deadline on shutdown, in (virtual) seconds.
    grace_seconds: float = 5.0
    telemetry: TelemetryConfig = field(
        default_factory=lambda: TelemetryConfig(enabled=True, trace=False)
    )

    def __post_init__(self) -> None:
        if self.gpu_count < 1:
            raise ValueError(f"gpu_count must be >= 1, got {self.gpu_count}")
        if self.time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {self.time_scale}")
        if self.grace_seconds < 0:
            raise ValueError(f"grace_seconds must be >= 0, got {self.grace_seconds}")


class LiveNode:
    """One wall-clock serving node built from the simulation stack."""

    def __init__(self, config: LiveNodeConfig, *, backend: Optional[AsyncioBackend] = None) -> None:
        self.config = config
        self.env: AsyncioBackend = (
            backend if backend is not None else AsyncioBackend(time_scale=config.time_scale)
        )
        self.streams = RandomStreams(config.seed)
        self.node = ServerNode(self.env, config.calibration, gpu_count=config.gpu_count)
        self.collector = MetricsCollector()
        self.session = TelemetrySession(config.telemetry, env=self.env)
        self.server = InferenceServer(
            self.env,
            self.node,
            config.server,
            metrics=self.collector,
            on_complete=self._on_complete,
        )
        self.session.attach_server(self.server)
        self._datasets = {size: reference_dataset(size) for size in _SIZES}
        self._rng = self.streams.stream("live-admission")
        self._task: Optional[asyncio.Task] = None
        self.accepting = False
        self.admitted = 0
        self.completed = 0
        self.rejected = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._final_metrics: Optional[RunMetrics] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> asyncio.Task:
        """Start the kernel dispatch loop as an asyncio task."""
        if self._task is not None:
            raise RuntimeError("node already started")
        self.session.start()
        self.collector.arm(self.env.now)
        self.accepting = True
        self._task = asyncio.get_running_loop().create_task(
            self.env.run_async(stop_on_empty=False), name="repro-kernel"
        )
        return self._task

    async def shutdown(self) -> RunMetrics:
        """Stop admission, drain batchers (bounded), stop the kernel.

        Returns the metrics for everything completed while serving.
        Safe to call more than once; later calls return the same
        metrics object.
        """
        if self._task is None:
            raise RuntimeError("node was never started")
        if self._final_metrics is not None:
            return self._final_metrics
        self.accepting = False
        self.env.touch()
        # In-flight admissions first, then flush the batcher queues as
        # partial batches; the grace period bounds both.
        grace = self.env.timeout(self.config.grace_seconds)
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.grace_seconds / self.env.time_scale
            )
        except asyncio.TimeoutError:
            pass
        drained = self.server.drain()
        await self.env.as_future(drained | grace)
        self.env.touch()
        self.collector.disarm(self.env.now)
        self.env.request_stop()
        await self._task
        self.session.finalize(self.env.now)
        self._final_metrics = self._metrics_or_empty()
        return self._final_metrics

    def _metrics_or_empty(self) -> RunMetrics:
        try:
            return self.collector.finalize()
        except RuntimeError:
            return RunMetrics.empty()

    # -- request path ------------------------------------------------------

    def _on_complete(self, request) -> None:
        self.completed += 1
        self.session.observe_completion(request, self.env.now)
        if self.completed >= self.admitted:
            self._idle.set()

    async def infer(
        self,
        *,
        size: str = "medium",
        key: Optional[int] = None,
        traceparent: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Admit one request and await its completion.

        ``size`` picks the reference image class; ``key`` selects a
        deterministic catalog item (stable cache identity across
        requests), ``None`` draws from the admission RNG.
        ``traceparent`` joins an incoming W3C distributed trace: the
        node opens a child span of the caller's context, the request
        carries it through the policy stack, and the response reports
        the server-side ``traceparent`` (malformed headers raise
        ``ValueError``).
        """
        if not self.accepting:
            raise NodeShuttingDown("node is shutting down")
        if size not in self._datasets:
            raise ValueError(f"size must be one of {_SIZES}, got {size!r}")
        trace = None
        if traceparent is not None:
            from ..telemetry.context import TraceContext

            trace = TraceContext.from_traceparent(traceparent).child(
                "infer", self.admitted
            )
        dataset = self._datasets[size]
        if key is not None:
            image = dataset.item(key) if hasattr(dataset, "item") else dataset.sample(self._rng)
        else:
            image = dataset.sample(self._rng)
        arrival = self.env.touch()
        self.admitted += 1
        self._idle.clear()
        done = self.server.submit(image, arrival_time=arrival, trace=trace)
        request = await self.env.as_future(done)
        wall_latency = self.env.wall_now() - arrival
        out = {
            "request_id": request.request_id,
            "latency_seconds": (request.completion_time or self.env.now) - arrival,
            "wall_latency_seconds": wall_latency,
            "batch_size": request.batch_size,
            "gpu_index": request.gpu_index,
            "served_from": request.served_from,
            "outcome": request.outcome,
            "spans": dict(request.spans),
        }
        if trace is not None:
            out["trace_id"] = trace.trace_id
            out["traceparent"] = trace.to_traceparent()
        return out

    # -- observability -----------------------------------------------------

    def prometheus_text(self) -> str:
        return self.session.prometheus_text()

    def history_dict(self, since: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """The ``/metrics/history`` payload (None without a scraper)."""
        return self.session.history_dict(since=since)

    def stats(self) -> Dict[str, Any]:
        server = self.config.server
        cache = self.server.cache
        out: Dict[str, Any] = {
            "model": server.model,
            "runtime": server.runtime,
            "preprocess_device": server.preprocess_device,
            "gpu_count": self.config.gpu_count,
            "time_scale": self.env.time_scale,
            "now": self.env.now,
            "accepting": self.accepting,
            "admitted": self.admitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "in_flight": self.admitted - self.completed,
        }
        if cache is not None:
            out["cache"] = cache.stats_dict()
        if self.session.slo is not None:
            out["slo"] = self.session.slo.report(self.env.now).as_dict()
        scraper = self.session.scraper
        if scraper is not None:
            out["scrape"] = {
                "interval_seconds": scraper.interval,
                "samples_taken": scraper.samples_taken,
                "series": len(scraper.store),
                "alerts_firing": scraper.alerts_firing,
            }
        return out
