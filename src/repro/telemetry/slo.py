"""SLO accounting: latency objectives, error budgets, and burn rates.

An SLO here is the classic pair *(objective, target)*: "fraction of good
requests >= target over the run", where a request is *good* when it
completes OK within ``latency_objective_seconds``.  The tracker consumes
completion events (latency + outcome), keeps O(window) state, and
reports:

- compliance and error-budget consumption over the whole run;
- **burn rate** over one or more sliding windows — the ratio of the
  observed bad fraction to the budgeted bad fraction, the quantity
  multi-window alerting policies page on (burn rate 1.0 means the budget
  lasts exactly the SLO period; 10x means it is gone in a tenth of it).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Tuple

__all__ = ["SloConfig", "SloWindowReport", "SloReport", "SloTracker"]


@dataclass(frozen=True, kw_only=True)
class SloConfig:
    """A latency service-level objective.

    Attributes:
        latency_objective_seconds: A request is *good* iff it completes
            successfully within this latency.
        target: Required fraction of good requests (e.g. 0.999).
        burn_windows_seconds: Sliding-window lengths (sim seconds) over
            which burn rate is reported, long-to-short.
    """

    latency_objective_seconds: float = 0.2
    target: float = 0.99
    burn_windows_seconds: Tuple[float, ...] = (60.0, 300.0)

    def validate(self) -> "SloConfig":
        if self.latency_objective_seconds <= 0:
            raise ValueError(
                "latency_objective_seconds must be positive, got "
                f"{self.latency_objective_seconds}"
            )
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if not self.burn_windows_seconds:
            raise ValueError("burn_windows_seconds must not be empty")
        for window in self.burn_windows_seconds:
            if window <= 0:
                raise ValueError(f"burn window must be positive, got {window}")
        return self

    def with_overrides(self, **overrides) -> "SloConfig":
        return replace(self, **overrides).validate()


@dataclass(frozen=True, kw_only=True)
class SloWindowReport:
    """Burn-rate view over one sliding window ending at ``at_time``."""

    window_seconds: float
    total: int
    bad: int
    burn_rate: float


@dataclass(frozen=True, kw_only=True)
class SloReport:
    """End-of-run (or point-in-time) SLO summary."""

    config: SloConfig
    at_time: float
    total: int
    good: int
    bad: int
    compliance: float
    error_budget_total: float
    error_budget_consumed: float
    windows: Tuple[SloWindowReport, ...] = field(default_factory=tuple)

    @property
    def met(self) -> bool:
        return self.total == 0 or self.compliance >= self.config.target

    def as_dict(self) -> Dict[str, object]:
        return {
            "latency_objective_seconds": self.config.latency_objective_seconds,
            "target": self.config.target,
            "at_time": self.at_time,
            "total": self.total,
            "good": self.good,
            "bad": self.bad,
            "compliance": self.compliance,
            "met": self.met,
            "error_budget_total": self.error_budget_total,
            "error_budget_consumed": self.error_budget_consumed,
            "windows": [
                {
                    "window_seconds": window.window_seconds,
                    "total": window.total,
                    "bad": window.bad,
                    "burn_rate": window.burn_rate,
                }
                for window in self.windows
            ],
        }


class SloTracker:
    """Streams completion events into SLO compliance and burn rates.

    State is one deque per burn window (events older than the window are
    evicted lazily on observe/report), plus whole-run good/bad totals —
    O(events in the longest window), independent of run length.
    """

    def __init__(self, config: SloConfig) -> None:
        self.config = config.validate()
        self.total = 0
        self.good = 0
        # (time, is_bad) per event, one deque per window, longest first.
        self._windows: List[Tuple[float, Deque[Tuple[float, bool]]]] = [
            (window, deque())
            for window in sorted(config.burn_windows_seconds, reverse=True)
        ]

    @property
    def bad(self) -> int:
        return self.total - self.good

    def observe(self, latency: float, now: float, ok: bool = True) -> None:
        """Record one finished request (``ok=False`` for timeout/shed)."""
        is_good = ok and latency <= self.config.latency_objective_seconds
        self.total += 1
        if is_good:
            self.good += 1
        for window_seconds, events in self._windows:
            events.append((now, not is_good))
            self._evict(events, window_seconds, now)

    @staticmethod
    def _evict(events: Deque[Tuple[float, bool]], window: float, now: float) -> None:
        while events and events[0][0] < now - window:
            events.popleft()

    def compliance(self) -> float:
        """Whole-run fraction of good requests (1.0 when empty)."""
        return self.good / self.total if self.total else 1.0

    def error_budget_consumed(self) -> float:
        """Fraction of the error budget spent so far (can exceed 1)."""
        if self.total == 0:
            return 0.0
        budget = (1.0 - self.config.target) * self.total
        return self.bad / budget if budget > 0 else float("inf")

    def burn_rate(self, window_seconds: float, now: float) -> float:
        """Bad fraction over the window divided by the budgeted fraction."""
        for configured, events in self._windows:
            if configured == window_seconds:
                self._evict(events, configured, now)
                if not events:
                    return 0.0
                bad = sum(1 for _, is_bad in events if is_bad)
                bad_fraction = bad / len(events)
                return bad_fraction / (1.0 - self.config.target)
        raise KeyError(f"window {window_seconds} not configured")

    def report(self, now: float) -> SloReport:
        windows = []
        for window_seconds, events in self._windows:
            self._evict(events, window_seconds, now)
            bad = sum(1 for _, is_bad in events if is_bad)
            total = len(events)
            burn = (bad / total) / (1.0 - self.config.target) if total else 0.0
            windows.append(
                SloWindowReport(
                    window_seconds=window_seconds,
                    total=total,
                    bad=bad,
                    burn_rate=burn,
                )
            )
        return SloReport(
            config=self.config,
            at_time=now,
            total=self.total,
            good=self.good,
            bad=self.bad,
            compliance=self.compliance(),
            error_budget_total=(1.0 - self.config.target) * self.total,
            error_budget_consumed=self.error_budget_consumed(),
            windows=tuple(windows),
        )

    def register_metrics(self, registry) -> None:
        """Publish SLO state as registry views."""
        registry.counter_fn(
            "repro_slo_requests_total",
            "Requests scored against the SLO",
            lambda: self.total,
        )
        registry.counter_fn(
            "repro_slo_bad_requests_total",
            "Requests that violated the latency objective or failed",
            lambda: self.bad,
        )
        registry.gauge_fn(
            "repro_slo_compliance_ratio",
            "Fraction of good requests over the whole run",
            self.compliance,
        )
        registry.gauge_fn(
            "repro_slo_error_budget_consumed_ratio",
            "Fraction of the error budget consumed (may exceed 1)",
            self.error_budget_consumed,
        )
