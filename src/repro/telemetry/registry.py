"""MetricsRegistry: named Counter/Gauge/Histogram instruments with labels.

The registry is the single place a run's counters live.  Components
publish *views* over their existing ledgers (callback-backed instruments
read the live value at collection time, so registering a metric never
perturbs the simulation), while per-request quantities (latencies, span
durations) stream into log-bucketed histograms that answer p50/p90/p99/
p99.9 without storing every sample.

Design notes:

- **Labels**: an instrument created with ``labelnames`` is a family;
  ``family.labels(gpu="0")`` returns (and memoizes) the child.  Without
  labelnames the registry hands back the bare instrument directly.
- **Histogram buckets** are geometric (HDR-style): ``buckets_per_decade``
  equal-ratio bins from ``min_value`` up, so relative quantile error is
  bounded by one bucket ratio (~12% at the default 20/decade) at O(1)
  memory per observed decade.
- **Snapshots** are plain frozen dicts; :meth:`MetricsRegistry.snapshot`
  and :meth:`RegistrySnapshot.delta` give windowed views, i.e. the
  time-series-of-percentiles a dashboard plots.
"""

from __future__ import annotations

import math
import re
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Exemplar",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "RegistrySnapshot",
    "OVERFLOW_LABEL_VALUE",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelPairs = Tuple[Tuple[str, str], ...]

#: Label value assigned to the shared spill-over child once a family
#: hits its cardinality cap (see :class:`MetricFamily`).
OVERFLOW_LABEL_VALUE = "_overflow_"

#: An exemplar pinned to a histogram bucket: (trace_id, value, timestamp).
Exemplar = Tuple[str, float, Optional[float]]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class Counter:
    """Monotonic count; either incremented or backed by a callback."""

    kind = "counter"

    def __init__(self, fn: Optional[Callable[[], float]] = None) -> None:
        self._value = 0.0
        self._fn = fn

    def inc(self, by: float = 1.0) -> None:
        if self._fn is not None:
            raise RuntimeError("callback-backed counters cannot be incremented")
        if by < 0:
            raise ValueError(f"counter increments must be >= 0, got {by}")
        self._value += by

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Gauge:
    """A settable level; either managed or backed by a callback."""

    kind = "gauge"

    def __init__(self, fn: Optional[Callable[[], float]] = None) -> None:
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise RuntimeError("callback-backed gauges cannot be set")
        self._value = float(value)

    def inc(self, by: float = 1.0) -> None:
        if self._fn is not None:
            raise RuntimeError("callback-backed gauges cannot be incremented")
        self._value += by

    def dec(self, by: float = 1.0) -> None:
        self.inc(-by)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Streaming log-bucketed histogram with percentile estimation.

    Buckets are geometric: bucket ``k`` covers
    ``(min_value * ratio**(k-1), min_value * ratio**k]`` with
    ``ratio = 10 ** (1 / buckets_per_decade)``; values at or below
    ``min_value`` land in bucket 0.  Storage is a sparse dict, so memory
    is O(decades x buckets_per_decade), not O(samples).
    """

    kind = "histogram"

    def __init__(self, min_value: float = 1e-6, buckets_per_decade: int = 20) -> None:
        if min_value <= 0:
            raise ValueError(f"min_value must be positive, got {min_value}")
        if buckets_per_decade < 1:
            raise ValueError(f"buckets_per_decade must be >= 1, got {buckets_per_decade}")
        self.min_value = min_value
        self.buckets_per_decade = buckets_per_decade
        self._counts: Dict[int, int] = {}
        self._exemplars: Dict[int, Exemplar] = {}
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        # ceil of log-ratio position: the smallest k with bound(k) >= value.
        return max(0, math.ceil(
            math.log10(value / self.min_value) * self.buckets_per_decade - 1e-9
        ))

    def bound(self, index: int) -> float:
        """Upper (inclusive) bound of bucket ``index``."""
        return self.min_value * 10.0 ** (index / self.buckets_per_decade)

    def observe(
        self,
        value: float,
        exemplar: Optional[str] = None,
        exemplar_time: Optional[float] = None,
    ) -> None:
        """Record ``value``; optionally pin an exemplar to its bucket.

        ``exemplar`` is an opaque reference (by convention a trace id)
        kept per bucket, last-writer-wins — the OpenMetrics model that
        lets a dashboard jump from a latency bucket to one concrete
        trace that landed there.
        """
        if value < 0:
            raise ValueError(f"histogram observations must be >= 0, got {value}")
        index = self._index(value)
        self._counts[index] = self._counts.get(index, 0) + 1
        if exemplar is not None:
            self._exemplars[index] = (exemplar, float(value), exemplar_time)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram in place and return self.

        Bucket geometry must match exactly — the merged state is then
        indistinguishable from having observed every sample in one
        global histogram, so quantiles are *identical* (not merely
        close) to the global ones.  This is what makes per-shard
        histograms safe to aggregate cluster-wide.
        """
        if (other.min_value, other.buckets_per_decade) != (
            self.min_value,
            self.buckets_per_decade,
        ):
            raise ValueError(
                "cannot merge histograms with different bucket geometry: "
                f"({self.min_value}, {self.buckets_per_decade}) vs "
                f"({other.min_value}, {other.buckets_per_decade})"
            )
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self._exemplars.update(other._exemplars)
        self.count += other.count
        self.sum += other.sum
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        return self

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def value(self) -> float:
        return float(self.count)

    def buckets(self) -> List[Tuple[float, int]]:
        """Sorted (upper_bound, count) pairs of the occupied buckets."""
        return [(self.bound(i), self._counts[i]) for i in sorted(self._counts)]

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative (le, count) pairs."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in self.buckets():
            running += count
            out.append((bound, running))
        return out

    def exemplars(self) -> List[Tuple[float, Exemplar]]:
        """Sorted (upper_bound, exemplar) pairs for buckets that have one."""
        return [(self.bound(i), self._exemplars[i]) for i in sorted(self._exemplars)]

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1].

        Linear interpolation inside the containing bucket; exact min and
        max are tracked, so q=0/q=1 are exact and the error anywhere is
        at most one bucket width.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("quantile of an empty histogram")
        assert self.min is not None and self.max is not None
        if q == 0.0:
            return self.min
        rank = q * self.count
        running = 0
        for index in sorted(self._counts):
            count = self._counts[index]
            if running + count >= rank:
                upper = min(self.bound(index), self.max)
                lower = self.bound(index - 1) if index > 0 else 0.0
                lower = max(lower, self.min if running == 0 else lower)
                fraction = (rank - running) / count
                return min(self.max, lower + (upper - lower) * fraction)
            running += count
        return self.max

    def percentiles(self) -> Dict[str, float]:
        """The standard reporting set: p50/p90/p99/p99.9."""
        if self.count == 0:
            return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "p99.9": 0.0}
        return {
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "p99.9": self.quantile(0.999),
        }


class MetricFamily:
    """All children of one metric name (one per label combination)."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Sequence[str],
        factory: Callable[[], object],
        max_children: Optional[int] = None,
    ) -> None:
        self.name = _check_name(name)
        self.kind = kind
        self.help = help_text
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self._factory = factory
        self._children: Dict[LabelPairs, object] = {}
        #: Cardinality cap: at most this many label combinations before
        #: new ones spill into a shared ``_overflow_`` child (None = no cap).
        self.max_children = max_children
        #: Series dropped (or spilled) because the cap was hit.
        self.dropped_series = 0
        self._warned_overflow = False

    def _overflow_key(self) -> LabelPairs:
        return tuple((name, OVERFLOW_LABEL_VALUE) for name in self.labelnames)

    def _at_capacity(self, key: LabelPairs) -> bool:
        if self.max_children is None or key in self._children:
            return False
        if key == self._overflow_key():
            return False  # the spill-over child itself is always admitted
        return len(self._children) >= self.max_children

    def _note_overflow(self) -> None:
        self.dropped_series += 1
        if not self._warned_overflow:
            self._warned_overflow = True
            warnings.warn(
                f"metric family {self.name!r} hit its label-cardinality cap "
                f"({self.max_children} series); further label combinations "
                f"collapse into {OVERFLOW_LABEL_VALUE!r} — raise "
                "max_series_per_family if every series is wanted",
                RuntimeWarning,
                stacklevel=4,
            )

    def labels(self, **labelvalues: str):
        """The child instrument for one label-value combination.

        Once ``max_children`` distinct combinations exist, further new
        combinations share one spill-over child labelled
        ``{name: "_overflow_"}`` so unbounded label values (request
        keys, 10k node ids) cannot grow memory without bound.
        """
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key: LabelPairs = tuple((name, str(labelvalues[name])) for name in self.labelnames)
        if self._at_capacity(key):
            self._note_overflow()
            key = self._overflow_key()
        child = self._children.get(key)
        if child is None:
            child = self._factory()
            self._children[key] = child
        return child

    def add_callback_child(self, fn: Callable[[], float], **labelvalues: str):
        """Register a callback-backed child (views over live counters).

        Returns ``None`` (and counts a dropped series) once the family
        is at its cardinality cap: callback views cannot be meaningfully
        merged into a spill-over child, so they are simply not recorded.
        """
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key: LabelPairs = tuple((name, str(labelvalues[name])) for name in self.labelnames)
        if key in self._children:
            raise ValueError(f"metric {self.name!r}{dict(key)} already registered")
        if self._at_capacity(key):
            self._note_overflow()
            return None
        child = Counter(fn) if self.kind == "counter" else Gauge(fn)
        self._children[key] = child
        return child

    def samples(self) -> List[Tuple[LabelPairs, object]]:
        return list(self._children.items())

    def __repr__(self) -> str:
        return f"<MetricFamily {self.name} {self.kind} children={len(self._children)}>"


#: Default per-family label-cardinality cap (see MetricsRegistry).
DEFAULT_MAX_SERIES_PER_FAMILY = 4096


class MetricsRegistry:
    """Central, ordered registry of named instruments.

    ``max_series_per_family`` caps label cardinality per family (spilling
    into an ``_overflow_`` child / dropping callback views beyond it) so
    per-node or per-key labels at 10k-node cluster scale cannot blow
    memory; ``None`` removes the cap.
    """

    def __init__(
        self, max_series_per_family: Optional[int] = DEFAULT_MAX_SERIES_PER_FAMILY
    ) -> None:
        if max_series_per_family is not None and max_series_per_family < 1:
            raise ValueError(
                f"max_series_per_family must be >= 1, got {max_series_per_family}"
            )
        self.max_series_per_family = max_series_per_family
        self._families: Dict[str, MetricFamily] = {}

    @property
    def dropped_series(self) -> int:
        """Total series dropped/spilled across all families (cap hits)."""
        return sum(family.dropped_series for family in self._families.values())

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)

    @property
    def names(self) -> List[str]:
        return list(self._families)

    def family(self, name: str) -> MetricFamily:
        try:
            return self._families[name]
        except KeyError:
            known = ", ".join(sorted(self._families))
            raise KeyError(f"unknown metric {name!r}; known: {known}") from None

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Sequence[str],
        factory: Callable[[], object],
    ):
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.labelnames}"
                )
        else:
            family = MetricFamily(
                name, kind, help_text, labelnames, factory,
                max_children=self.max_series_per_family,
            )
            self._families[name] = family
        if family.labelnames:
            return family
        return family.labels()

    # -- instrument constructors ---------------------------------------------

    def counter(self, name: str, help_text: str = "", labelnames: Sequence[str] = ()):
        """A monotonic counter (family when ``labelnames`` given)."""
        return self._register(name, "counter", help_text, labelnames, Counter)

    def gauge(self, name: str, help_text: str = "", labelnames: Sequence[str] = ()):
        """A settable gauge (family when ``labelnames`` given)."""
        return self._register(name, "gauge", help_text, labelnames, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        min_value: float = 1e-6,
        buckets_per_decade: int = 20,
    ):
        """A streaming log-bucketed histogram (family when labelled)."""
        factory = lambda: Histogram(min_value, buckets_per_decade)  # noqa: E731
        return self._register(name, "histogram", help_text, labelnames, factory)

    def counter_fn(self, name: str, help_text: str, fn: Callable[[], float],
                   **labels: str) -> None:
        """Register a counter *view* reading ``fn()`` at collection time."""
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, "counter", help_text, tuple(sorted(labels)),
                                  Counter, max_children=self.max_series_per_family)
            self._families[name] = family
        family.add_callback_child(fn, **labels)

    def gauge_fn(self, name: str, help_text: str, fn: Callable[[], float],
                 **labels: str) -> None:
        """Register a gauge *view* reading ``fn()`` at collection time."""
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, "gauge", help_text, tuple(sorted(labels)),
                                  Gauge, max_children=self.max_series_per_family)
            self._families[name] = family
        family.add_callback_child(fn, **labels)

    # -- collection -----------------------------------------------------------

    def snapshot(self, at_time: Optional[float] = None) -> "RegistrySnapshot":
        """Frozen point-in-time values of every instrument."""
        metrics: List[dict] = []
        for family in self._families.values():
            samples = []
            for labelpairs, instrument in family.samples():
                sample: Dict[str, object] = {"labels": dict(labelpairs)}
                if family.kind == "histogram":
                    histogram: Histogram = instrument  # type: ignore[assignment]
                    sample.update(
                        count=histogram.count,
                        sum=histogram.sum,
                        buckets=histogram.cumulative_buckets(),
                        percentiles=histogram.percentiles(),
                    )
                    exemplars = histogram.exemplars()
                    if exemplars:
                        sample["exemplars"] = exemplars
                else:
                    sample["value"] = instrument.value  # type: ignore[union-attr]
                samples.append(sample)
            metrics.append(
                {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "samples": samples,
                }
            )
        return RegistrySnapshot(at_time=at_time, metrics=metrics)

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format of the current values."""
        from .exposition import snapshot_to_prometheus_text

        return snapshot_to_prometheus_text(self.snapshot())

    def to_json(self, indent: int = 2) -> str:
        """JSON exposition of the current values."""
        from .exposition import snapshot_to_json

        return snapshot_to_json(self.snapshot(), indent=indent)


class RegistrySnapshot:
    """Immutable registry state, optionally stamped with a sim time."""

    def __init__(self, at_time: Optional[float], metrics: List[dict]) -> None:
        self.at_time = at_time
        self.metrics = metrics

    def __repr__(self) -> str:
        stamp = "" if self.at_time is None else f" t={self.at_time:.3f}"
        return f"<RegistrySnapshot{stamp} metrics={len(self.metrics)}>"

    def metric(self, name: str) -> dict:
        for metric in self.metrics:
            if metric["name"] == name:
                return metric
        raise KeyError(f"snapshot has no metric {name!r}")

    def delta(self, earlier: "RegistrySnapshot") -> "RegistrySnapshot":
        """Windowed view: this snapshot minus an earlier one.

        Counters and histogram counts/sums/buckets subtract; gauges keep
        their later value (a level, not a flow).  This is how a
        time-series of windowed percentiles is produced from periodic
        snapshots.
        """
        earlier_by_name = {metric["name"]: metric for metric in earlier.metrics}
        metrics: List[dict] = []
        for metric in self.metrics:
            base = earlier_by_name.get(metric["name"])
            if base is None or metric["kind"] == "gauge":
                metrics.append(metric)
                continue
            base_samples = {
                tuple(sorted(sample["labels"].items())): sample
                for sample in base["samples"]
            }
            samples = []
            for sample in metric["samples"]:
                key = tuple(sorted(sample["labels"].items()))
                prev = base_samples.get(key)
                if prev is None:
                    samples.append(sample)
                    continue
                if metric["kind"] == "histogram":
                    prev_buckets = dict(prev["buckets"])
                    buckets = [
                        (le, count - prev_buckets.get(le, 0))
                        for le, count in sample["buckets"]
                    ]
                    windowed = {
                        "labels": sample["labels"],
                        "count": sample["count"] - prev["count"],
                        "sum": sample["sum"] - prev["sum"],
                        "buckets": buckets,
                        "percentiles": _bucket_percentiles(buckets),
                    }
                    if "exemplars" in sample:
                        # Exemplars are point-in-time references, not
                        # flows: keep the later snapshot's.
                        windowed["exemplars"] = sample["exemplars"]
                    samples.append(windowed)
                else:
                    samples.append(
                        {
                            "labels": sample["labels"],
                            "value": sample["value"] - prev["value"],
                        }
                    )
            metrics.append({**metric, "samples": samples})
        return RegistrySnapshot(at_time=self.at_time, metrics=metrics)


def _bucket_percentiles(cumulative: List[Tuple[float, int]]) -> Dict[str, float]:
    """Percentiles from cumulative (le, count) pairs (windowed views)."""
    if not cumulative or cumulative[-1][1] <= 0:
        return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "p99.9": 0.0}
    total = cumulative[-1][1]
    out: Dict[str, float] = {}
    for label, q in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p99.9", 0.999)):
        rank = q * total
        value = cumulative[-1][0]
        for le, running in cumulative:
            if running >= rank:
                value = le
                break
        out[label] = value
    return out
