"""One run's telemetry: registry + tracer + SLO tracker + monitor.

A :class:`TelemetrySession` is created by the experiment runners when
``TelemetryConfig.enabled`` is set, attached to the serving components
(which publish callback-backed registry views and hand the tracer to
every submitted request), and returned on the result object for export.

Everything the session does is observational: instruments read live
counters at collection time, the tracer only appends to request-local
lists, and the SLO tracker consumes completion events the runner already
receives — so an enabled session leaves ``RunMetrics`` bit-identical to
a telemetry-free run (asserted by the benchmark suite).  The one
deliberate exception is the optional :class:`~repro.sim.monitor.Monitor`
sampler, which schedules zero-duration wake-ups; sampling draws no
randomness and mutates no component state, so results are unchanged.
"""

from __future__ import annotations

from typing import List, Optional

from .config import TelemetryConfig
from .registry import MetricsRegistry, RegistrySnapshot
from .slo import SloReport, SloTracker
from .tracer import Tracer

__all__ = ["TelemetrySession"]


class TelemetrySession:
    """Live telemetry state for one experiment run."""

    def __init__(self, config: TelemetryConfig, env=None) -> None:
        config.validate()
        self.config = config
        self.env = env
        self.registry = MetricsRegistry()
        self.tracer: Optional[Tracer] = None
        if config.trace:
            self.tracer = Tracer(
                limit=config.trace_limit, sample_every=config.trace_sample_every
            )
            self.tracer.register_metrics(self.registry)
        self.slo: Optional[SloTracker] = None
        if config.slo is not None:
            self.slo = SloTracker(config.slo)
            self.slo.register_metrics(self.registry)
        self.monitor = None
        if env is not None and config.monitor_interval_seconds is not None:
            from ..sim.monitor import Monitor

            self.monitor = Monitor(env, interval=config.monitor_interval_seconds)
        self.scraper = None
        if env is not None and config.scrape_interval_seconds is not None:
            from .scraper import MetricsScraper

            self.scraper = MetricsScraper(
                env,
                self.registry,
                interval=config.scrape_interval_seconds,
                capacity=config.history_points,
                slo=self.slo,
                alerts=config.alerts,
            )
        self.latency = self.registry.histogram(
            "repro_request_latency_seconds",
            "End-to-end request latency (all completions, incl. warm-up)",
        )
        #: Windowed snapshots taken via :meth:`snapshot`, in time order.
        self.snapshots: List[RegistrySnapshot] = []
        #: Simulation time :meth:`finalize` ran at (``None`` while live).
        self.finalized_at: Optional[float] = None

    def __repr__(self) -> str:
        parts = [f"metrics={len(self.registry)}"]
        if self.tracer is not None:
            parts.append(f"traced={len(self.tracer.requests)}")
        if self.slo is not None:
            parts.append(f"slo_total={self.slo.total}")
        return f"<TelemetrySession {' '.join(parts)}>"

    # -- wiring ---------------------------------------------------------------

    def attach_server(self, server) -> None:
        """Wire an :class:`~repro.core.server.InferenceServer` (or any
        component with ``tracer``/``register_metrics``)."""
        server.tracer = self.tracer
        server.register_metrics(self.registry)
        if self.monitor is not None:
            self._probe_server(server)

    def attach_pipeline(self, pipeline) -> None:
        """Wire a :class:`~repro.apps.face_pipeline.FacePipeline`."""
        pipeline.tracer = self.tracer
        pipeline.register_metrics(self.registry)
        if self.monitor is not None:
            self.monitor.probe(
                "detect queue depth", lambda: pipeline._det_batcher.queue.size
            )
            if not pipeline.fused:
                self.monitor.probe(
                    "identify queue depth", lambda: pipeline._id_batcher.queue.size
                )
                self.monitor.probe("broker depth", lambda: pipeline.broker.depth)
            self.monitor.probe(
                "gpu0 memory used bytes", lambda: pipeline.gpu.memory.used_bytes
            )

    def _probe_server(self, server) -> None:
        for index, batcher in enumerate(server._batchers):
            self.monitor.probe(
                f"gpu{index} queue depth", lambda b=batcher: b.queue.size
            )
        for gpu in server.node.gpus:
            self.monitor.probe(
                f"gpu{gpu.index} memory used bytes",
                lambda g=gpu: g.memory.used_bytes,
            )

    def start(self) -> None:
        """Begin monitor + scraper sampling (no-op without either)."""
        if self.monitor is not None:
            self.monitor.start()
        if self.scraper is not None:
            self.scraper.start()

    # -- completion stream ----------------------------------------------------

    def observe_completion(self, request, now: float) -> None:
        """Feed one completed request into the latency histogram + SLO.

        A request carrying a distributed
        :class:`~repro.telemetry.context.TraceContext` additionally pins
        its trace id as the exemplar of the latency bucket it lands in.
        """
        latency = now - request.arrival_time
        trace = getattr(request, "trace", None)
        if trace is not None:
            self.latency.observe(latency, exemplar=trace.trace_id, exemplar_time=now)
        else:
            self.latency.observe(latency)
        if self.slo is not None:
            ok = getattr(request, "outcome", "ok") == "ok"
            self.slo.observe(latency, now, ok=ok)

    # -- collection ------------------------------------------------------------

    def snapshot(self, now: Optional[float] = None) -> RegistrySnapshot:
        """Take (and retain) a point-in-time registry snapshot."""
        snap = self.registry.snapshot(at_time=now)
        self.snapshots.append(snap)
        return snap

    def finalize(self, now: Optional[float] = None) -> "TelemetrySession":
        """End-of-run housekeeping: stop sampling, surface trace drops."""
        if self.monitor is not None:
            self.monitor.stop()
        if self.scraper is not None:
            self.scraper.stop()
            # One closing sample so the store's tail reflects the final
            # state even when the run ends mid-cadence.
            self.scraper.scrape()
        if self.tracer is not None:
            self.tracer.warn_if_dropped()
        self.finalized_at = now
        self.snapshot(now)
        return self

    def slo_report(self, now: Optional[float] = None) -> Optional[SloReport]:
        """The SLO summary, or ``None`` when no objective was configured.

        ``now`` defaults to the time :meth:`finalize` ran at.
        """
        if self.slo is None:
            return None
        if now is None:
            now = self.finalized_at if self.finalized_at is not None else 0.0
        return self.slo.report(now)

    def prometheus_text(self) -> str:
        return self.registry.to_prometheus_text()

    def json_metrics(self, indent: int = 2) -> str:
        return self.registry.to_json(indent=indent)

    @property
    def store(self):
        """The scraper's time-series store, or ``None`` with no scraper."""
        return self.scraper.store if self.scraper is not None else None

    def history_dict(self, since: Optional[float] = None) -> Optional[dict]:
        """The time-series history payload (``/metrics/history``)."""
        if self.scraper is None:
            return None
        return self.scraper.store.to_dict(since=since)

    def write_timeseries(self, path: str) -> int:
        """Export the store as JSONL; returns the series count."""
        if self.scraper is None:
            raise RuntimeError("no scraper configured (scrape_interval_seconds)")
        self.scraper.store.to_jsonl(path)
        return len(self.scraper.store)

    def write_trace(self, path: str) -> int:
        """Export the Perfetto timeline trace; returns the event count."""
        if self.tracer is None:
            raise RuntimeError("tracing is disabled in this TelemetryConfig")
        return self.tracer.write_chrome_trace(path, monitor=self.monitor)
