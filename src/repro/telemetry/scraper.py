"""MetricsScraper: clock-agnostic sampling of the registry.

The scraper is a kernel process (one :class:`~repro.kernel.base.
ExecutionBackend` timeout per cadence tick), so the *same code path*
samples in virtual time under the DES and in wall time under
``python -m repro serve`` — and under ``AsyncioBackend(fast_forward=
True)`` the tick sequence is dispatched in exact DES order, which makes
the sampled series byte-identical across backends (pinned by the parity
tests).

Each tick takes one registry snapshot and turns it into store points:

- **raw values** for every counter and gauge sample;
- **recording rules** over the window since the previous tick:
  ``name:rate`` (per-second increase) for counters and histograms, and
  ``name:p50`` / ``name:p95`` / ``name:p99`` windowed latency quantiles
  from the histogram bucket deltas (the colon naming mirrors Prometheus
  recording-rule convention);
- **SLO burn rate** per configured window (``repro_slo_burn_rate``,
  labelled by window length) when an
  :class:`~repro.telemetry.slo.SloTracker` is attached;
- **threshold alerts** (:class:`~repro.telemetry.timeseries.AlertRule`)
  evaluated against the freshly recorded points, each exported as a
  0/1 ``alert:<name>`` series plus a transition log.

Like the :class:`~repro.sim.monitor.Monitor` it is modelled on, the
scraper is strictly observational: sampling draws no randomness and
mutates no component state; its only event-loop interaction is the
zero-duration cadence wake-up, so enabled runs keep ``RunMetrics``
bit-identical (asserted by the observer-neutrality tests).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .registry import MetricsRegistry, RegistrySnapshot
from .slo import SloTracker
from .timeseries import AlertRule, TimeSeriesStore

__all__ = ["MetricsScraper"]

#: Default windowed-quantile recording rules (suffix, q).
DEFAULT_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


def _window_quantile(cumulative: Sequence[Tuple[float, int]], q: float) -> float:
    """Upper-bound quantile estimate from cumulative (le, count) pairs."""
    if not cumulative or cumulative[-1][1] <= 0:
        return 0.0
    total = cumulative[-1][1]
    rank = q * total
    for le, running in cumulative:
        if running >= rank:
            return le
    return cumulative[-1][0]


class _AlertState:
    __slots__ = ("rule", "firing", "breach_since")

    def __init__(self, rule: AlertRule) -> None:
        self.rule = rule.validate()
        self.firing = False
        self.breach_since: Optional[float] = None


class MetricsScraper:
    """Samples every registry instrument on a fixed cadence."""

    def __init__(
        self,
        env,
        registry: MetricsRegistry,
        *,
        interval: float = 1.0,
        store: Optional[TimeSeriesStore] = None,
        capacity: int = 720,
        quantiles: Sequence[Tuple[str, float]] = DEFAULT_QUANTILES,
        slo: Optional[SloTracker] = None,
        alerts: Sequence[AlertRule] = (),
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.env = env
        self.registry = registry
        self.interval = interval
        self.store = store if store is not None else TimeSeriesStore(capacity=capacity)
        self.quantiles = tuple(quantiles)
        self.slo = slo
        self._alerts = [_AlertState(rule) for rule in alerts]
        #: Alert transitions: dicts of (alert, state, time, value).
        self.alert_log: List[Dict[str, object]] = []
        self.samples_taken = 0
        self._prev: Optional[RegistrySnapshot] = None
        self._prev_time = 0.0
        self._running = False
        # Same epoch guard as sim.monitor.Monitor: a sampler process
        # exits once its captured epoch goes stale, so stop() -> start()
        # never double-samples.
        self._epoch = 0

    # -- lifecycle ------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Begin cadence sampling (idempotent; restart-safe)."""
        if self._running:
            return
        self._running = True
        self._epoch += 1
        self.env.process(self._sampler(self._epoch))

    def stop(self) -> None:
        """Stop sampling; the pending wake-up becomes a no-op."""
        self._running = False

    def _sampler(self, epoch: int):
        while self._running and epoch == self._epoch:
            self.scrape()
            yield self.env.timeout(self.interval)

    # -- one tick -------------------------------------------------------------

    def scrape(self) -> RegistrySnapshot:
        """Take one sample of every instrument into the store."""
        now = self.env.now
        snapshot = self.registry.snapshot(at_time=now)
        windowed = snapshot.delta(self._prev) if self._prev is not None else snapshot
        span = now - self._prev_time
        window_samples = {
            (metric["name"], tuple(sorted(sample["labels"].items()))): sample
            for metric in windowed.metrics
            for sample in metric["samples"]
        }
        for metric in snapshot.metrics:
            name = metric["name"]
            kind = metric["kind"]
            for sample in metric["samples"]:
                labels = sample["labels"] or None
                key = (name, tuple(sorted(sample["labels"].items())))
                window = window_samples.get(key, sample)
                if kind == "histogram":
                    self.store.record(f"{name}:count", now, sample["count"], labels)
                    rate = window["count"] / span if span > 0 else 0.0
                    self.store.record(f"{name}:rate", now, rate, labels)
                    for suffix, q in self.quantiles:
                        self.store.record(
                            f"{name}:{suffix}", now,
                            _window_quantile(window["buckets"], q), labels,
                        )
                elif kind == "counter":
                    self.store.record(name, now, sample["value"], labels)
                    rate = window["value"] / span if span > 0 else 0.0
                    self.store.record(f"{name}:rate", now, rate, labels)
                else:
                    self.store.record(name, now, sample["value"], labels)
        if self.slo is not None:
            for window_seconds in self.slo.config.burn_windows_seconds:
                self.store.record(
                    "repro_slo_burn_rate", now,
                    self.slo.burn_rate(window_seconds, now),
                    {"window": _format_window(window_seconds)},
                )
        self.store.record(
            "repro_metrics_dropped_series_total", now, self.registry.dropped_series
        )
        self._evaluate_alerts(now)
        self.samples_taken += 1
        self._prev = snapshot
        self._prev_time = now
        return snapshot

    # -- alerts ---------------------------------------------------------------

    @property
    def alerts_firing(self) -> List[str]:
        """Names of alerts currently in the firing state."""
        return [state.rule.name for state in self._alerts if state.firing]

    def _evaluate_alerts(self, now: float) -> None:
        for state in self._alerts:
            rule = state.rule
            try:
                buffer = self.store.get(rule.series, dict(rule.labels) or None)
            except KeyError:
                continue  # watched series not produced (yet): no data
            last = buffer.last()
            if last is None:
                continue
            _, value = last
            if rule.breached(value):
                if state.breach_since is None:
                    state.breach_since = now
                should_fire = now - state.breach_since >= rule.for_seconds
                if should_fire and not state.firing:
                    state.firing = True
                    self.alert_log.append(
                        {"alert": rule.name, "state": "firing",
                         "time": now, "value": value}
                    )
            else:
                state.breach_since = None
                if state.firing:
                    state.firing = False
                    self.alert_log.append(
                        {"alert": rule.name, "state": "resolved",
                         "time": now, "value": value}
                    )
            self.store.record(
                f"alert:{rule.name}", now, 1.0 if state.firing else 0.0
            )


def _format_window(window_seconds: float) -> str:
    if window_seconds == int(window_seconds):
        return str(int(window_seconds))
    return repr(float(window_seconds))
