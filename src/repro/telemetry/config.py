"""Telemetry configuration.

Telemetry is **off by default** and strictly observational: enabling it
must never change simulation results (no extra RNG draws, no event-loop
interaction beyond the optional monitor sampler, no mutation of any
component state).  The benchmark suite asserts both properties —
off-path runs are bit-identical to pre-telemetry builds, and enabled
runs produce bit-identical ``RunMetrics``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from .slo import SloConfig
from .timeseries import AlertRule

__all__ = ["TelemetryConfig", "SloConfig", "AlertRule"]


@dataclass(frozen=True, kw_only=True)
class TelemetryConfig:
    """What a run should record.

    Attributes:
        enabled: Master switch; when False the stack records nothing.
        trace: Record per-request timestamped span timelines (enables
            Perfetto export with real overlap).
        trace_limit: Maximum number of requests to trace; beyond it the
            tracer counts drops instead of growing without bound.
        trace_sample_every: Trace every Nth submitted request (1 = all).
            Use for long runs where a representative sample suffices.
        slo: Latency objective to score completions against, or None.
        monitor_interval_seconds: Sampling interval for counter tracks
            (queue depth, GPU memory) exported alongside the trace, or
            None to skip the sampler entirely.
        scrape_interval_seconds: Cadence of the
            :class:`~repro.telemetry.scraper.MetricsScraper` sampling
            every registry instrument into the ring-buffered
            time-series store (virtual seconds under the DES, wall
            seconds under a realtime backend), or None for no scraper.
        history_points: Ring capacity per time series (oldest evicted).
        alerts: Threshold :class:`~repro.telemetry.timeseries.AlertRule`
            rules the scraper evaluates each tick.
    """

    enabled: bool = False
    trace: bool = True
    trace_limit: int = 2000
    trace_sample_every: int = 1
    slo: Optional[SloConfig] = None
    monitor_interval_seconds: Optional[float] = None
    scrape_interval_seconds: Optional[float] = None
    history_points: int = 720
    alerts: Tuple[AlertRule, ...] = field(default_factory=tuple)

    def validate(self) -> "TelemetryConfig":
        if self.trace_limit < 1:
            raise ValueError(f"trace_limit must be >= 1, got {self.trace_limit}")
        if self.trace_sample_every < 1:
            raise ValueError(
                f"trace_sample_every must be >= 1, got {self.trace_sample_every}"
            )
        if self.monitor_interval_seconds is not None and self.monitor_interval_seconds <= 0:
            raise ValueError(
                "monitor_interval_seconds must be positive, got "
                f"{self.monitor_interval_seconds}"
            )
        if self.scrape_interval_seconds is not None and self.scrape_interval_seconds <= 0:
            raise ValueError(
                "scrape_interval_seconds must be positive, got "
                f"{self.scrape_interval_seconds}"
            )
        if self.history_points < 1:
            raise ValueError(
                f"history_points must be >= 1, got {self.history_points}"
            )
        for rule in self.alerts:
            rule.validate()
        if self.slo is not None:
            self.slo.validate()
        return self

    def with_overrides(self, **overrides) -> "TelemetryConfig":
        return replace(self, **overrides).validate()
