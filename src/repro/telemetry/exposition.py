"""Exposition formats for registry snapshots.

Two encoders (Prometheus text format and JSON) plus a small Prometheus
text *parser* used by the round-trip tests.  The text format follows the
exposition conventions scrapers expect:

- ``# HELP``/``# TYPE`` header lines per metric family;
- label values escaped (backslash, double quote, newline);
- histograms exploded into cumulative ``_bucket{le="..."}`` series with
  a final ``le="+Inf"``, plus ``_sum`` and ``_count``;
- OpenMetrics-style exemplars appended to bucket lines
  (``... 5 # {trace_id="..."} 0.043 12.5``) so a dashboard can jump
  from a latency bucket to one concrete distributed trace.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List

__all__ = [
    "escape_label_value",
    "format_value",
    "snapshot_to_prometheus_text",
    "snapshot_to_json",
    "parse_prometheus_text",
]


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ("\\", '"'):
                out.append(nxt)
            else:
                out.append(ch)
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def format_value(value: float) -> str:
    """Render a sample value (ints without trailing .0, +Inf/-Inf/NaN)."""
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
    return repr(float(value))


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def snapshot_to_prometheus_text(snapshot) -> str:
    """Encode a :class:`RegistrySnapshot` as Prometheus text format."""
    lines: List[str] = []
    for metric in snapshot.metrics:
        name = metric["name"]
        help_text = metric["help"].replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {metric['kind']}")
        for sample in metric["samples"]:
            labels = sample["labels"]
            if metric["kind"] == "histogram":
                exemplars = {
                    format_value(float(le)): exemplar
                    for le, exemplar in sample.get("exemplars", ())
                }
                # Snapshot buckets are already cumulative (le, count) pairs.
                for le, count in sample["buckets"]:
                    bucket_labels = dict(labels)
                    le_text = format_value(float(le))
                    bucket_labels["le"] = le_text
                    line = f"{name}_bucket{_labels_text(bucket_labels)} {count}"
                    exemplar = exemplars.get(le_text)
                    if exemplar is not None:
                        trace_id, value, stamp = exemplar
                        line += (
                            f' # {{trace_id="{escape_label_value(str(trace_id))}"}}'
                            f" {format_value(float(value))}"
                        )
                        if stamp is not None:
                            line += f" {format_value(float(stamp))}"
                    lines.append(line)
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(
                    f"{name}_bucket{_labels_text(inf_labels)} {sample['count']}"
                )
                lines.append(
                    f"{name}_sum{_labels_text(labels)} {format_value(float(sample['sum']))}"
                )
                lines.append(f"{name}_count{_labels_text(labels)} {sample['count']}")
            else:
                lines.append(
                    f"{name}{_labels_text(labels)} "
                    f"{format_value(float(sample['value']))}"
                )
    return "\n".join(lines) + "\n"


def snapshot_to_json(snapshot, indent: int = 2) -> str:
    """Encode a :class:`RegistrySnapshot` as JSON."""
    payload = {
        "at_time": snapshot.at_time,
        "metrics": [
            {
                **metric,
                "samples": [
                    {
                        **sample,
                        **(
                            {"buckets": [[le, count] for le, count in sample["buckets"]]}
                            if "buckets" in sample
                            else {}
                        ),
                    }
                    for sample in metric["samples"]
                ],
            }
            for metric in snapshot.metrics
        ],
    }
    return json.dumps(payload, indent=indent)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)


def _split_labels(text: str) -> Dict[str, str]:
    """Parse the inside of ``{...}`` respecting escapes inside values."""
    labels: Dict[str, str] = {}
    i = 0
    n = len(text)
    while i < n:
        eq = text.index("=", i)
        name = text[i:eq].strip().lstrip(",").strip()
        assert text[eq + 1] == '"', f"malformed label at {text[i:]!r}"
        j = eq + 2
        raw: List[str] = []
        while j < n:
            ch = text[j]
            if ch == "\\":
                raw.append(text[j : j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        labels[name] = _unescape_label_value("".join(raw))
        i = j + 1
        while i < n and text[i] in ", ":
            i += 1
    return labels


def parse_prometheus_text(text: str) -> Dict[str, dict]:
    """Parse Prometheus text format back into family dicts.

    Returns ``{family_name: {"help", "kind", "samples"}}`` where each
    sample is ``{"name", "labels", "value"}`` (histogram ``_bucket`` /
    ``_sum`` / ``_count`` series are attributed to their base family).
    Built for round-trip tests, not as a general scraper.
    """
    families: Dict[str, dict] = {}
    suffixes = ("_bucket", "_sum", "_count")

    def family_of(sample_name: str) -> str:
        for suffix in suffixes:
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and base in families and families[base]["kind"] == "histogram":
                return base
        return sample_name

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"help": "", "kind": "untyped", "samples": []})
            families[name]["help"] = help_text.replace("\\n", "\n").replace("\\\\", "\\")
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(name, {"help": "", "kind": "untyped", "samples": []})
            families[name]["kind"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        exemplar = None
        if " # {" in line:
            # OpenMetrics exemplar suffix: `# {labels} value [timestamp]`.
            line, _, exemplar_text = line.partition(" # {")
            close = exemplar_text.rindex("}")
            exemplar_labels = _split_labels(exemplar_text[:close])
            tail = exemplar_text[close + 1 :].split()
            exemplar = {
                "labels": exemplar_labels,
                "value": _parse_value(tail[0]),
                "timestamp": _parse_value(tail[1]) if len(tail) > 1 else None,
            }
        if "{" in line:
            brace = line.index("{")
            sample_name = line[:brace]
            close = line.rindex("}")
            labels = _split_labels(line[brace + 1 : close])
            value_text = line[close + 1 :].strip()
        else:
            sample_name, _, value_text = line.partition(" ")
            labels = {}
        family = family_of(sample_name)
        families.setdefault(family, {"help": "", "kind": "untyped", "samples": []})
        sample = {
            "name": sample_name,
            "labels": labels,
            "value": _parse_value(value_text.strip()),
        }
        if exemplar is not None:
            sample["exemplar"] = exemplar
        families[family]["samples"].append(sample)
    return families
