"""First-class observability for the serving simulator.

The paper's contribution is *attribution* — knowing where every
millisecond of a request goes.  This package turns the simulator's
ad-hoc counters into a real telemetry layer:

- :mod:`~repro.telemetry.spans` — span kinds and timestamped span trees;
- :mod:`~repro.telemetry.tracer` — per-run collection of request
  timelines for Perfetto export;
- :mod:`~repro.telemetry.registry` — named Counter/Gauge/Histogram
  instruments with labels and streaming (HDR-style) percentiles;
- :mod:`~repro.telemetry.exposition` — Prometheus text-format and JSON
  encoders (plus the parser the round-trip tests use);
- :mod:`~repro.telemetry.slo` — latency objectives, error budgets and
  burn rates;
- :mod:`~repro.telemetry.context` — deterministic W3C Trace Context for
  distributed traces across the cluster fabric and live HTTP;
- :mod:`~repro.telemetry.timeseries` — ring-buffered time-series store
  with JSONL/OpenMetrics export and threshold alert rules;
- :mod:`~repro.telemetry.scraper` — the clock-agnostic
  :class:`MetricsScraper` sampling every instrument on a cadence, with
  rate/quantile recording rules and SLO burn series;
- :mod:`~repro.telemetry.session` — one run's worth of all of the
  above, wired in by the experiment runners via
  :class:`~repro.telemetry.config.TelemetryConfig`.

Telemetry is off by default and strictly observational: enabling it
never changes simulation results.
"""

from .config import TelemetryConfig
from .context import TraceContext, derive_span_id, derive_trace_id
from .exposition import (
    parse_prometheus_text,
    snapshot_to_json,
    snapshot_to_prometheus_text,
)
from .registry import (
    OVERFLOW_LABEL_VALUE,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    RegistrySnapshot,
)
from .scraper import MetricsScraper
from .session import TelemetrySession
from .timeseries import AlertRule, SeriesBuffer, TimeSeriesStore
from .slo import SloConfig, SloReport, SloTracker, SloWindowReport
from .spans import (
    KIND_BROKER,
    KIND_COMPUTE,
    KIND_QUEUE,
    KIND_TRANSFER,
    SPAN_KINDS,
    SpanNode,
    build_span_tree,
    span_kind,
)
from .tracer import Tracer

__all__ = [
    "TelemetryConfig",
    "TelemetrySession",
    "Tracer",
    "TraceContext",
    "derive_trace_id",
    "derive_span_id",
    "MetricsScraper",
    "TimeSeriesStore",
    "SeriesBuffer",
    "AlertRule",
    "OVERFLOW_LABEL_VALUE",
    "MetricsRegistry",
    "MetricFamily",
    "RegistrySnapshot",
    "Counter",
    "Gauge",
    "Histogram",
    "SloConfig",
    "SloTracker",
    "SloReport",
    "SloWindowReport",
    "snapshot_to_prometheus_text",
    "snapshot_to_json",
    "parse_prometheus_text",
    "SpanNode",
    "build_span_tree",
    "span_kind",
    "SPAN_KINDS",
    "KIND_QUEUE",
    "KIND_COMPUTE",
    "KIND_TRANSFER",
    "KIND_BROKER",
]
