"""Span model: kinds, timestamped intervals, and per-request span trees.

A request's *span ledger* (``InferenceRequest.spans``) records only
durations — enough for mean breakdowns, useless for attribution.  When a
:class:`~repro.telemetry.tracer.Tracer` is attached, every request also
carries a *timeline*: a list of ``(name, start, end)`` tuples stamped
with simulated wall-clock time as each stage closes.  This module gives
those intervals meaning:

- every span name maps to a **kind** — ``queue`` (waiting for a
  resource), ``compute`` (occupying CPU/GPU), ``transfer`` (PCIe/DMA),
  or ``broker`` (inter-stage messaging) — the taxonomy of the paper's
  Fig. 1 end-to-end breakdown;
- :func:`build_span_tree` reconstructs the parent/child structure of a
  request (a synthetic ``request`` root spanning arrival to completion,
  stage spans as children, nested by interval containment).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = [
    "KIND_QUEUE",
    "KIND_COMPUTE",
    "KIND_TRANSFER",
    "KIND_BROKER",
    "SPAN_KINDS",
    "span_kind",
    "SpanNode",
    "build_span_tree",
]

KIND_QUEUE = "queue"
KIND_COMPUTE = "compute"
KIND_TRANSFER = "transfer"
KIND_BROKER = "broker"

#: Kind of every span name the stack emits.  Unknown (user-defined)
#: spans default to ``compute``.
SPAN_KINDS = {
    "frontend": KIND_COMPUTE,
    "preprocess_wait": KIND_QUEUE,
    "preprocess": KIND_COMPUTE,
    "queue": KIND_QUEUE,
    "transfer": KIND_TRANSFER,
    "inference": KIND_COMPUTE,
    "postprocess": KIND_COMPUTE,
    "broker": KIND_BROKER,
    "identify": KIND_COMPUTE,
}


def span_kind(name: str) -> str:
    """The kind (queue/compute/transfer/broker) of a span name."""
    return SPAN_KINDS.get(name, KIND_COMPUTE)


class SpanNode:
    """One node of a request's span tree."""

    __slots__ = ("name", "kind", "start", "end", "children")

    def __init__(self, name: str, start: float, end: float) -> None:
        self.name = name
        self.kind = span_kind(name)
        self.start = start
        self.end = end
        self.children: List["SpanNode"] = []

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:
        return (
            f"<SpanNode {self.name} [{self.start:.6f}, {self.end:.6f}] "
            f"children={len(self.children)}>"
        )

    def walk(self):
        """Depth-first iteration over the subtree (self first)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "children": [child.to_dict() for child in self.children],
        }


def _contains(outer: SpanNode, inner: SpanNode) -> bool:
    # Half-open containment with a tiny tolerance for same-instant edges.
    eps = 1e-12
    return outer.start - eps <= inner.start and inner.end <= outer.end + eps


def build_span_tree(
    timeline: Sequence[Tuple[str, float, float]],
    arrival_time: float,
    completion_time: Optional[float],
    root_name: str = "request",
) -> SpanNode:
    """Nest timestamped intervals into a parent/child span tree.

    The root is a synthetic ``request`` span from ``arrival_time`` to
    ``completion_time`` (or the last interval end for in-flight
    requests).  Each interval becomes a child of the smallest earlier
    interval that contains it — the natural nesting for a pipeline where
    a stage may record sub-spans inside its own window.
    """
    intervals = sorted(timeline, key=lambda event: (event[1], -(event[2] - event[1])))
    end = completion_time
    if end is None:
        end = max((event[2] for event in intervals), default=arrival_time)
    root = SpanNode(root_name, arrival_time, max(arrival_time, end))
    stack: List[SpanNode] = [root]
    for name, start, stop in intervals:
        node = SpanNode(name, start, stop)
        while len(stack) > 1 and not _contains(stack[-1], node):
            stack.pop()
        stack[-1].children.append(node)
        stack.append(node)
    return root
