"""Ring-buffered time series: the storage behind the metrics pipeline.

A :class:`TimeSeriesStore` holds many named, labelled
:class:`SeriesBuffer` rings.  The :class:`~repro.telemetry.scraper.
MetricsScraper` appends one point per series per scrape; ``repro top``
and ``/metrics/history`` read them back; JSONL / OpenMetrics exports
persist them (the golden-day cluster artifact in CI is exactly the
JSONL form).

Everything is bounded: each series keeps at most ``capacity`` points
(oldest evicted first), so a day-long run and a ten-minute run cost the
same memory.  Exports are byte-stable for a given store content — the
scraper-parity tests rely on that to compare virtual-time and
fast-forward wall-time runs byte for byte.

:class:`AlertRule` lives here too (threshold alerts evaluate against
store series, and keeping it beside the store avoids an import cycle
with :mod:`~repro.telemetry.config`).
"""

from __future__ import annotations

import gzip
import io
import json
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["AlertRule", "SeriesBuffer", "TimeSeriesStore"]

LabelPairs = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True, kw_only=True)
class AlertRule:
    """Fire when a stored series crosses a threshold.

    Attributes:
        name: Alert identity (``alert:<name>`` becomes a 0/1 series).
        series: Store series name to watch (e.g.
            ``repro_request_latency_seconds:p99`` or
            ``repro_slo_burn_rate``).
        threshold: Boundary value.
        comparison: ``">"`` fires when value > threshold, ``"<"`` when
            value < threshold.
        for_seconds: Breach must hold this long (in the run's clock)
            before the alert transitions to firing; 0 fires immediately.
        labels: Exact label match for the watched series (empty matches
            the unlabelled series).
    """

    name: str
    series: str
    threshold: float
    comparison: str = ">"
    for_seconds: float = 0.0
    labels: LabelPairs = ()

    def validate(self) -> "AlertRule":
        if not self.name:
            raise ValueError("alert name must not be empty")
        if self.comparison not in (">", "<"):
            raise ValueError(f"comparison must be '>' or '<', got {self.comparison!r}")
        if self.for_seconds < 0:
            raise ValueError(f"for_seconds must be >= 0, got {self.for_seconds}")
        return self

    def breached(self, value: float) -> bool:
        if self.comparison == ">":
            return value > self.threshold
        return value < self.threshold


class SeriesBuffer:
    """One bounded time series: (time, value) pairs, oldest evicted."""

    __slots__ = ("name", "labels", "times", "values")

    def __init__(self, name: str, labels: LabelPairs, capacity: int) -> None:
        self.name = name
        self.labels = labels
        self.times: Deque[float] = deque(maxlen=capacity)
        self.values: Deque[float] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:
        return f"<SeriesBuffer {self.name}{dict(self.labels)} n={len(self)}>"

    def append(self, t: float, value: float) -> None:
        self.times.append(float(t))
        self.values.append(float(value))

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))

    def last(self) -> Optional[Tuple[float, float]]:
        if not self.times:
            return None
        return (self.times[-1], self.values[-1])

    def window(self, since: float) -> List[Tuple[float, float]]:
        """Points with ``t >= since`` (the ring may have evicted older)."""
        return [(t, v) for t, v in zip(self.times, self.values) if t >= since]


class TimeSeriesStore:
    """Many ring-buffered series, keyed by (name, sorted labels)."""

    def __init__(self, capacity: int = 720) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._series: Dict[Tuple[str, LabelPairs], SeriesBuffer] = {}

    def __len__(self) -> int:
        return len(self._series)

    def __repr__(self) -> str:
        return f"<TimeSeriesStore series={len(self._series)} capacity={self.capacity}>"

    # -- writing --------------------------------------------------------------

    def series(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> SeriesBuffer:
        """The buffer for (name, labels), created on first use."""
        key = (name, _label_key(labels))
        buffer = self._series.get(key)
        if buffer is None:
            buffer = SeriesBuffer(name, key[1], self.capacity)
            self._series[key] = buffer
        return buffer

    def record(
        self, name: str, t: float, value: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Append one point to (name, labels)."""
        self.series(name, labels).append(t, value)

    # -- reading --------------------------------------------------------------

    @property
    def names(self) -> List[str]:
        """Sorted unique series names."""
        return sorted({name for name, _ in self._series})

    def get(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> SeriesBuffer:
        """The existing buffer for (name, labels); KeyError if absent."""
        key = (name, _label_key(labels))
        try:
            return self._series[key]
        except KeyError:
            known = ", ".join(sorted({n for n, _ in self._series}))
            raise KeyError(f"no series {name!r} with labels "
                           f"{dict(_label_key(labels))}; known names: {known}") from None

    def select(self, name: str) -> List[SeriesBuffer]:
        """Every labelled buffer of one series name, label-sorted."""
        return [
            buffer
            for (series_name, _), buffer in sorted(self._series.items())
            if series_name == name
        ]

    def all_series(self) -> List[SeriesBuffer]:
        """Every buffer, sorted by (name, labels) for stable exports."""
        return [buffer for _, buffer in sorted(self._series.items())]

    # -- export / import ------------------------------------------------------

    def to_dict(self, since: Optional[float] = None) -> Dict[str, object]:
        """JSON-ready structure (the ``/metrics/history`` payload)."""
        return {
            "capacity": self.capacity,
            "series": [
                {
                    "name": buffer.name,
                    "labels": dict(buffer.labels),
                    "points": [
                        [t, v]
                        for t, v in (
                            buffer.points() if since is None else buffer.window(since)
                        )
                    ],
                }
                for buffer in self.all_series()
            ],
        }

    def to_jsonl(self, path: Optional[str] = None) -> str:
        """One JSON object per series per line (CI artifact format).

        Returns the text; when ``path`` is given also writes it there
        (gzip when the name ends in ``.gz``).
        """
        out = io.StringIO()
        for buffer in self.all_series():
            json.dump(
                {
                    "name": buffer.name,
                    "labels": dict(buffer.labels),
                    "points": [[t, v] for t, v in buffer.points()],
                },
                out,
                sort_keys=True,
                separators=(",", ":"),
            )
            out.write("\n")
        text = out.getvalue()
        if path is not None:
            if str(path).endswith(".gz"):
                with gzip.open(path, "wt", encoding="utf-8") as handle:
                    handle.write(text)
            else:
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(text)
        return text

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TimeSeriesStore":
        """Rebuild a store from :meth:`to_dict` output (the
        ``/metrics/history`` payload ``repro top`` polls)."""
        capacity = int(data.get("capacity", 0) or 0)
        rows = list(data.get("series", ()))
        if capacity < 1:
            capacity = max((len(row["points"]) for row in rows), default=1) or 1
        store = cls(capacity=capacity)
        for row in rows:
            buffer = store.series(row["name"], row.get("labels") or None)
            for t, v in row["points"]:
                buffer.append(t, v)
        return store

    @classmethod
    def from_jsonl(cls, lines: Iterable[str], capacity: Optional[int] = None
                   ) -> "TimeSeriesStore":
        """Rebuild a store from :meth:`to_jsonl` output lines."""
        rows = [json.loads(line) for line in lines if line.strip()]
        if capacity is None:
            capacity = max(
                (len(row["points"]) for row in rows), default=1
            ) or 1
        store = cls(capacity=capacity)
        for row in rows:
            buffer = store.series(row["name"], row.get("labels") or None)
            for t, v in row["points"]:
                buffer.append(t, v)
        return store

    @classmethod
    def read_jsonl(cls, path: str) -> "TimeSeriesStore":
        """Load a store from a :meth:`to_jsonl` file (gzip-aware)."""
        opener = gzip.open if str(path).endswith(".gz") else open
        with opener(path, "rt", encoding="utf-8") as handle:  # type: ignore[operator]
            return cls.from_jsonl(handle)

    def to_openmetrics(self) -> str:
        """Timestamped OpenMetrics-style text of the full history.

        Each retained point becomes one ``name{labels} value timestamp``
        line (multiple timestamps per series are legal in OpenMetrics);
        ends with the standard ``# EOF`` terminator.
        """
        from .exposition import escape_label_value, format_value

        lines: List[str] = []
        previous_name = None
        for buffer in self.all_series():
            if buffer.name != previous_name:
                lines.append(f"# TYPE {_openmetrics_name(buffer.name)} gauge")
                previous_name = buffer.name
            label_text = ""
            if buffer.labels:
                inner = ",".join(
                    f'{k}="{escape_label_value(v)}"' for k, v in buffer.labels
                )
                label_text = "{" + inner + "}"
            name = _openmetrics_name(buffer.name)
            for t, v in buffer.points():
                lines.append(f"{name}{label_text} {format_value(float(v))} "
                             f"{format_value(float(t))}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


def _openmetrics_name(name: str) -> str:
    # Derived-series names use recording-rule colons (metric:p99), which
    # OpenMetrics reserves; flatten them for the wire format.
    return name.replace(":", "_")
