"""Per-run span tracer.

The :class:`Tracer` is the attachment point between the serving stack
and trace export.  Components that create requests call
:meth:`Tracer.register`; for each admitted request the tracer arms the
request's ``timeline`` slot, after which every ``begin``/``end`` (and
timestamped ``add``) on the request appends a ``(name, start, end)``
interval.  Registration only ever touches the request object — it draws
no randomness and schedules no events, so an attached tracer cannot
perturb the simulation.

Long runs are bounded two ways: ``sample_every=N`` admits every Nth
request, and ``limit`` caps how many are retained; requests refused by
the limit are counted in :attr:`Tracer.dropped` (surfaced as a warning
and a metric at the end of a run, never silently).
"""

from __future__ import annotations

import warnings
from typing import List

__all__ = ["Tracer"]


class Tracer:
    """Collects timestamped span timelines from live requests."""

    def __init__(
        self, limit: int = 2000, sample_every: int = 1,
        only_traced: bool = False,
    ) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.limit = limit
        self.sample_every = sample_every
        #: Admit *only* requests carrying a distributed TraceContext
        #: (the cluster cells' mode: the router decides what is traced).
        self.only_traced = only_traced
        self.requests: List[object] = []
        self.dropped = 0
        self.skipped = 0
        self._offered = 0

    def register(self, request) -> bool:
        """Arm ``request`` for timeline recording; True when admitted.

        Requests already carrying a distributed
        :class:`~repro.telemetry.context.TraceContext` bypass
        ``sample_every``: the sampling decision was made upstream (by
        the cluster router or the caller's ``traceparent`` flag), and a
        trace that loses hops at some cells is worse than none.  The
        retention ``limit`` still applies.
        """
        index = self._offered
        self._offered += 1
        if getattr(request, "trace", None) is None and (
            self.only_traced or index % self.sample_every != 0
        ):
            self.skipped += 1
            return False
        if len(self.requests) >= self.limit:
            self.dropped += 1
            return False
        request.timeline = []
        self.requests.append(request)
        return True

    @property
    def offered(self) -> int:
        """Total requests offered for registration."""
        return self._offered

    def span_trees(self) -> List[object]:
        """A :class:`~repro.telemetry.spans.SpanNode` tree per request."""
        from .spans import build_span_tree

        return [
            build_span_tree(
                request.timeline or [],
                request.arrival_time,
                request.completion_time,
            )
            for request in self.requests
        ]

    def trace_events(self, monitor=None) -> List[dict]:
        """Chrome/Perfetto trace events for the collected timelines.

        Device-centric tracks with batch flow arrows; ``monitor`` adds
        counter tracks from its sampled series.
        """
        # Imported lazily: analysis.tracing imports telemetry.spans, so a
        # module-level import here would be order-sensitive.
        from ..analysis.tracing import timeline_trace_events

        return timeline_trace_events(self.requests, monitor=monitor)

    def write_chrome_trace(self, path, monitor=None) -> int:
        """Write a Perfetto-loadable trace file; returns event count."""
        from ..analysis.tracing import write_perfetto_trace

        return write_perfetto_trace(path, self.requests, monitor=monitor)

    def warn_if_dropped(self) -> None:
        """Emit a UserWarning when the limit truncated the trace."""
        if self.dropped:
            warnings.warn(
                f"trace limit {self.limit} reached: {self.dropped} request(s) "
                "not traced; raise trace_limit or use trace_sample_every",
                stacklevel=2,
            )

    def register_metrics(self, registry) -> None:
        """Publish tracer accounting as registry views."""
        registry.counter_fn(
            "repro_trace_requests_total",
            "Requests admitted for span tracing",
            lambda: len(self.requests),
        )
        registry.counter_fn(
            "repro_trace_dropped_total",
            "Requests refused by the trace limit",
            lambda: self.dropped,
        )
        registry.counter_fn(
            "repro_trace_sampled_out_total",
            "Requests skipped by trace_sample_every",
            lambda: self.skipped,
        )
