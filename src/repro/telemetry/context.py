"""W3C Trace Context for distributed request tracing.

A :class:`TraceContext` rides on every traced
:class:`~repro.core.request.InferenceRequest` and survives every hop a
request takes: across the cluster fabric (PR 7) it is carried on the
:class:`~repro.cluster.shards.Arrival` message, and over live HTTP
(PR 8) it is encoded as the standard ``traceparent`` header, so an
external caller's trace id flows through the node and back out in the
response.

Identifiers are **deterministic**: they are derived by hashing a seed
and a sequence of parts (SHA-256, truncated to the W3C field widths)
rather than drawn from a RNG.  That keeps tracing strictly
observer-neutral — enabling it draws no randomness — and makes trace
ids reproducible across runs, shard counts, and execution backends,
which is what lets the cluster golden tests pin merged traces.

The trace/span id widths and the ``traceparent`` wire format follow the
W3C Trace Context recommendation (``00-{trace_id}-{span_id}-{flags}``
with 16-byte trace ids and 8-byte span ids, lowercase hex).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["TraceContext", "derive_trace_id", "derive_span_id"]

_VERSION = "00"
_TRACE_ID_HEX = 32
_SPAN_ID_HEX = 16


def _digest(*parts: object) -> str:
    payload = "\x1f".join(str(part) for part in parts).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def _nonzero(hex_id: str, width: int) -> str:
    # The W3C spec forbids all-zero ids; a SHA-256 prefix of all zeros
    # is astronomically unlikely but trivial to guard against.
    return hex_id if any(ch != "0" for ch in hex_id) else "1".rjust(width, "0")


def derive_trace_id(*parts: object) -> str:
    """A deterministic 32-hex-char trace id from ``parts``."""
    return _nonzero(_digest("trace", *parts)[:_TRACE_ID_HEX], _TRACE_ID_HEX)


def derive_span_id(*parts: object) -> str:
    """A deterministic 16-hex-char span id from ``parts``."""
    return _nonzero(_digest("span", *parts)[:_SPAN_ID_HEX], _SPAN_ID_HEX)


@dataclass(frozen=True)
class TraceContext:
    """One hop of a distributed trace (immutable, picklable).

    Attributes:
        trace_id: 32 lowercase hex chars shared by every span of the
            trace (one trace = one user session / one external call).
        span_id: 16 lowercase hex chars naming this hop.
        parent_id: The calling hop's span id, or ``None`` at the root.
        sampled: W3C ``sampled`` flag; carried through but the simulator
            always records armed requests regardless.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    sampled: bool = True

    def __post_init__(self) -> None:
        if len(self.trace_id) != _TRACE_ID_HEX or not _is_hex(self.trace_id):
            raise ValueError(f"trace_id must be {_TRACE_ID_HEX} hex chars, "
                             f"got {self.trace_id!r}")
        if len(self.span_id) != _SPAN_ID_HEX or not _is_hex(self.span_id):
            raise ValueError(f"span_id must be {_SPAN_ID_HEX} hex chars, "
                             f"got {self.span_id!r}")

    # -- construction ---------------------------------------------------------

    @classmethod
    def derive(cls, *parts: object, sampled: bool = True) -> "TraceContext":
        """A deterministic root context for ``parts`` (seed, ids, ...)."""
        return cls(
            trace_id=derive_trace_id(*parts),
            span_id=derive_span_id(*parts),
            sampled=sampled,
        )

    def child(self, *parts: object) -> "TraceContext":
        """A child hop of this context (same trace, new span id)."""
        return replace(
            self,
            span_id=derive_span_id(self.trace_id, self.span_id, *parts),
            parent_id=self.span_id,
        )

    # -- W3C traceparent wire format ------------------------------------------

    def to_traceparent(self) -> str:
        """Encode as a ``traceparent`` header value."""
        flags = "01" if self.sampled else "00"
        return f"{_VERSION}-{self.trace_id}-{self.span_id}-{flags}"

    @classmethod
    def from_traceparent(cls, header: str) -> "TraceContext":
        """Parse a ``traceparent`` header value.

        Raises ``ValueError`` on malformed input (callers treat that as
        "no incoming context" and mint a fresh root).
        """
        fields = header.strip().lower().split("-")
        if len(fields) < 4:
            raise ValueError(f"malformed traceparent {header!r}")
        version, trace_id, span_id, flags = fields[:4]
        if version == "ff" or len(version) != 2 or not _is_hex(version):
            raise ValueError(f"invalid traceparent version in {header!r}")
        if not _is_hex(flags) or len(flags) != 2:
            raise ValueError(f"invalid traceparent flags in {header!r}")
        if set(trace_id) == {"0"} or set(span_id) == {"0"}:
            raise ValueError(f"all-zero id in traceparent {header!r}")
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            sampled=bool(int(flags, 16) & 0x01),
        )


def _is_hex(text: str) -> bool:
    return all(ch in "0123456789abcdef" for ch in text)
