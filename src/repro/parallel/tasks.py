"""Picklable sweep-point specs and their module-level task functions.

Every experiment front door in the repository gets a frozen *point*
dataclass (the picklable spec shipped to a worker) and a module-level
``run_*_point`` task (picklable by reference) that executes it and
returns the flat ``.to_dict()`` row.  ``tags`` ride along verbatim as
leading row columns, so sweep output stays self-describing ("which
concurrency / skew / broker was this row?") without the executor
knowing anything about the experiment.

Import hygiene matters here: this module is what a spawned worker
imports, so it must stay free of plotting/analysis-front-end imports
(enforced by :data:`repro.parallel.executor.HEAVY_MODULES` and the
import-hygiene tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..core.config import ServerConfig
from ..hardware.calibration import DEFAULT_CALIBRATION, Calibration
from ..serving.runner import ExperimentConfig, run_experiment, run_open_loop
from ..workload import Workload

__all__ = [
    "ExperimentPoint",
    "FacePipelinePoint",
    "FleetPoint",
    "run_experiment_point",
    "run_face_pipeline_point",
    "run_fleet_point",
    "run_fleet_result_point",
]

Tags = Tuple[Tuple[str, Any], ...]


def _tag_dict(tags: Tags) -> Dict[str, Any]:
    return dict(tags)


@dataclass(frozen=True, kw_only=True)
class ExperimentPoint:
    """One single-node experiment: closed-loop, or open-loop when
    ``offered_rate`` or ``workload`` is set."""

    config: ExperimentConfig
    offered_rate: Optional[float] = None
    #: Open-loop workload spec; overrides ``offered_rate``.  A trace
    #: replay point is picklable (the worker re-opens the file), so
    #: sweeps over a recorded day parallelize like any other point.
    workload: Optional[Workload] = None
    #: Extra row columns, e.g. ``(("concurrency", 64),)``.
    tags: Tags = ()

    def __post_init__(self) -> None:
        if self.workload is not None and self.offered_rate is not None:
            raise ValueError("pass offered_rate or workload, not both")


def run_experiment_point(point: ExperimentPoint) -> Dict[str, Any]:
    """Task: run one :class:`ExperimentPoint`, return its flat row."""
    if point.workload is not None:
        result = run_open_loop(point.config, workload=point.workload)
    elif point.offered_rate is None:
        result = run_experiment(point.config)
    else:
        # Map the legacy rate onto the non-deprecated path; bit-identical
        # to the old OpenLoopClient draw order.
        result = run_open_loop(
            point.config,
            workload=Workload.constant(point.offered_rate, dataset=point.config.dataset),
        )
    return {**_tag_dict(point.tags), **result.to_dict()}


@dataclass(frozen=True, kw_only=True)
class FacePipelinePoint:
    """One multi-DNN face-pipeline experiment (paper Sec. 4.7)."""

    pipeline: Any  # FacePipelineConfig; typed loosely to avoid app import
    concurrency: int = 96
    gpu_count: int = 1
    calibration: Calibration = DEFAULT_CALIBRATION
    seed: int = 0
    warmup_requests: int = 150
    measure_requests: int = 1200
    max_sim_seconds: float = 600.0
    think_jitter_seconds: float = 2e-3
    workload: Optional[Workload] = None
    tags: Tags = ()


def run_face_pipeline_point(point: FacePipelinePoint) -> Dict[str, Any]:
    """Task: run one :class:`FacePipelinePoint`, return its flat row."""
    from ..serving.runner import run_face_pipeline

    result = run_face_pipeline(
        point.pipeline,
        concurrency=point.concurrency,
        gpu_count=point.gpu_count,
        calibration=point.calibration,
        seed=point.seed,
        warmup_requests=point.warmup_requests,
        measure_requests=point.measure_requests,
        max_sim_seconds=point.max_sim_seconds,
        think_jitter_seconds=point.think_jitter_seconds,
        workload=point.workload,
    )
    return {**_tag_dict(point.tags), **result.to_dict()}


@dataclass(frozen=True, kw_only=True)
class FleetPoint:
    """One fleet experiment (load balancer + N nodes), optionally with a
    fault plan and resilience policy."""

    server: ServerConfig = field(default_factory=ServerConfig)
    node_count: int = 2
    offered_rate: float = 150.0
    dataset: Optional[Any] = None
    calibration: Calibration = DEFAULT_CALIBRATION
    gpu_count: int = 1
    per_node_cap: int = 512
    seed: int = 0
    warmup_requests: int = 300
    measure_requests: int = 2000
    max_sim_seconds: float = 60.0
    resilience: Optional[Any] = None
    faults: Optional[Any] = None
    workload: Optional[Workload] = None
    tags: Tags = ()

    def _run(self):
        from ..faults.experiment import run_fault_experiment

        return run_fault_experiment(
            self.server,
            faults=self.faults,
            resilience=self.resilience,
            node_count=self.node_count,
            offered_rate=self.offered_rate,
            dataset=self.dataset,
            calibration=self.calibration,
            gpu_count=self.gpu_count,
            per_node_cap=self.per_node_cap,
            seed=self.seed,
            warmup_requests=self.warmup_requests,
            measure_requests=self.measure_requests,
            max_sim_seconds=self.max_sim_seconds,
            workload=self.workload,
        )


def run_fleet_point(point: FleetPoint) -> Dict[str, Any]:
    """Task: run one :class:`FleetPoint`, return its flat row."""
    return {**_tag_dict(point.tags), **point._run().to_dict()}


def run_fleet_result_point(point: FleetPoint):
    """Task: run one :class:`FleetPoint`, return the full
    :class:`~repro.serving.fleet.FleetResult` (picklable when telemetry
    is off) for callers that need the rich object, e.g.
    :func:`repro.faults.experiment.sweep_fault_rates`."""
    return point._run()
