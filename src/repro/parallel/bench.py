"""Simulator performance harness: events/sec and sweep wall-clock.

Seeds the repository's performance trajectory (``BENCH_parallel.json``):
every future optimization PR reruns this harness and compares.  Three
probes:

- **engine**: a timeout-chain microbenchmark — pure event-loop
  throughput (schedule/pop/resume), no model logic.
- **store**: producer/consumer pairs through a :class:`~repro.sim.Store`
  plus a deep pre-filled drain (the path that used to be quadratic via
  ``list.pop(0)``).
- **schedulers**: the engine probes repeated under each selectable
  queue core (``heap`` and ``calendar``), at queue depth 1 (one chain)
  and depth ~10k (concurrent timer chains) — the comparison that
  justifies the default scheduler choice.
- **sweep**: a >=12-point closed-loop experiment sweep executed serially
  and through :func:`repro.parallel.run_sweep` — once with the default
  per-sweep pool and once with a persistent spawn pool + chunked point
  batches — reporting wall-clock, speedup, and whether the row sets
  were bit-identical.

Nothing here prints; the CLI (``python -m repro bench``) renders the
returned dict and writes the JSON file.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Optional

from ..core.config import ServerConfig
from ..serving.runner import ExperimentConfig
from ..sim import Environment, Store
from .executor import ParallelConfig, run_sweep
from .tasks import ExperimentPoint, run_experiment_point

__all__ = [
    "bench_engine_events",
    "bench_engine_concurrent",
    "bench_schedulers",
    "bench_store_throughput",
    "bench_store_drain",
    "bench_sweep",
    "run_bench",
    "write_bench",
    "sweep_points",
]

#: Bump when the harness shape changes incompatibly.  v2 added the
#: per-scheduler engine probes and the persistent/chunked sweep leg
#: (both additive; v1 baselines still compare on the shared figures).
SCHEMA_VERSION = 2


def bench_engine_events(events: int = 200_000, scheduler: Optional[str] = None) -> float:
    """Event-loop throughput: one process advancing through timeouts.

    Queue depth stays at 1 — this measures pure dispatch overhead
    (schedule/pop/resume), the binary heap's best case.
    """
    env = Environment(scheduler=scheduler)

    def chain():
        for _ in range(events):
            yield env.timeout(1.0)

    env.process(chain())
    start = time.perf_counter()
    env.run()
    return events / (time.perf_counter() - start)


def bench_engine_concurrent(
    chains: int = 10_000, rounds: int = 20, scheduler: Optional[str] = None
) -> float:
    """Event-loop throughput at queue depth ~``chains``.

    Thousands of concurrent timer chains with slightly staggered
    periods keep the pending-event set deep for the whole run — the
    regime where a binary heap pays O(log n) per operation and a
    calendar queue stays O(1) amortized.  Mirrors a fleet/cluster
    simulation's queue profile rather than a single closed loop's.
    """
    env = Environment(scheduler=scheduler)

    def chain(index: int):
        delay = 1.0 + (index % 97) * 1e-4
        for _ in range(rounds):
            yield env.timeout(delay)

    for index in range(chains):
        env.process(chain(index))
    total = chains * rounds
    start = time.perf_counter()
    env.run()
    return total / (time.perf_counter() - start)


def bench_schedulers(
    events: int = 200_000, chains: int = 10_000, rounds: int = 20
) -> Dict[str, Dict[str, float]]:
    """Both engine probes under each selectable queue core."""
    from ..sim.engine import SCHEDULERS

    return {
        name: {
            "timeout_events_per_sec": _best_of(bench_engine_events, events, name),
            "concurrent_events_per_sec": _best_of(
                bench_engine_concurrent, chains, rounds, name
            ),
        }
        for name in SCHEDULERS
    }


def bench_store_throughput(items: int = 100_000) -> float:
    """Put/get pairs through an unbounded FIFO store."""
    env = Environment()
    store = Store(env)

    def producer():
        for i in range(items):
            yield store.put(i)

    def consumer():
        for _ in range(items):
            yield store.get()

    env.process(producer())
    env.process(consumer())
    start = time.perf_counter()
    env.run()
    return items / (time.perf_counter() - start)


def bench_store_drain(items: int = 100_000) -> float:
    """Drain a deep pre-filled store (the old O(n) ``pop(0)`` path)."""
    env = Environment()
    store = Store(env)
    store.items.extend(range(items))

    def consumer():
        for _ in range(items):
            yield store.get()

    env.process(consumer())
    start = time.perf_counter()
    env.run()
    return items / (time.perf_counter() - start)


def sweep_points(
    point_count: int = 12,
    *,
    seed: int = 0,
    measure_requests: int = 400,
    warmup_requests: int = 100,
) -> List[ExperimentPoint]:
    """A concurrency-ladder sweep of ``point_count`` independent runs."""
    concurrencies = [4, 8, 16, 32]
    points = []
    for index in range(point_count):
        concurrency = concurrencies[index % len(concurrencies)]
        config = ExperimentConfig(
            server=ServerConfig(preprocess_batch_size=16),
            concurrency=concurrency,
            warmup_requests=warmup_requests,
            measure_requests=measure_requests,
            seed=seed + index // len(concurrencies),
        )
        points.append(
            ExperimentPoint(
                config=config,
                tags=(("point", index), ("concurrency", concurrency)),
            )
        )
    return points


def bench_sweep(
    point_count: int = 12,
    workers: Optional[int] = None,
    *,
    measure_requests: int = 400,
    warmup_requests: int = 100,
) -> Dict[str, Any]:
    """Run the sweep serially and in parallel; report both wall-clocks."""
    points = sweep_points(
        point_count,
        measure_requests=measure_requests,
        warmup_requests=warmup_requests,
    )
    serial = run_sweep(
        run_experiment_point, points, ParallelConfig(serial=True)
    )
    parallel = run_sweep(
        run_experiment_point, points, ParallelConfig(workers=workers)
    )
    # Persistent spawn pool + chunked batches: amortizes the ~100 ms
    # spawn-worker startup and the per-point submit/retrieve round
    # trips that cap the plain pool's efficiency on short points.
    persistent_config = ParallelConfig(
        workers=workers, persistent=True, chunk_size=2
    )
    persistent = run_sweep(run_experiment_point, points, persistent_config)
    # Second pass reuses the already-warm workers — the steady-state
    # number a long-lived sweep driver actually sees.
    persistent_warm = run_sweep(
        run_experiment_point, points, persistent_config
    )
    identical = serial.values == parallel.values
    persistent_identical = serial.values == persistent_warm.values
    speedup = (
        serial.wall_seconds / parallel.wall_seconds
        if parallel.wall_seconds > 0
        else 0.0
    )
    return {
        "points": point_count,
        "measure_requests": measure_requests,
        "serial_wall_seconds": serial.wall_seconds,
        "parallel_wall_seconds": parallel.wall_seconds,
        "parallel_workers": parallel.workers,
        "parallel_mode": parallel.mode,
        "parallel_efficiency": parallel.parallel_efficiency,
        "speedup": speedup,
        "bit_identical": identical,
        "persistent_cold_wall_seconds": persistent.wall_seconds,
        "persistent_wall_seconds": persistent_warm.wall_seconds,
        "persistent_chunk_size": 2,
        "persistent_efficiency": persistent_warm.parallel_efficiency,
        "persistent_bit_identical": persistent_identical,
        "serial_point_seconds": [r.seconds for r in serial.results],
        "parallel_point_seconds": [r.seconds for r in parallel.results],
    }


def _best_of(probe, *args, repeats: int = 3) -> float:
    """Best-of-N for wall-clock micro-probes.

    Scheduler noise only ever *slows* a run, so the max over a few
    repeats is the stable throughput estimator — what the bench-history
    CI gate compares against its committed baseline.
    """
    return max(probe(*args) for _ in range(repeats))


def run_bench(
    smoke: bool = False, workers: Optional[int] = None
) -> Dict[str, Any]:
    """Full harness; ``smoke=True`` shrinks the sweep probe for CI.

    The engine/store micro-probes stay at full size in smoke mode: they
    cost ~2 s total, and shrinking them to tens of milliseconds makes
    the throughput figures too noisy for the bench-history gate.
    """
    scale = 0.1 if smoke else 1.0
    engine_events = 200_000
    store_items = 100_000
    sweep_count = 12
    measure = int(400 * scale) or 40
    warmup = int(100 * scale) or 10
    return {
        "schema_version": SCHEMA_VERSION,
        "smoke": smoke,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": sys.platform,
            "cpu_count": os.cpu_count(),
        },
        "engine": {
            "timeout_events_per_sec": _best_of(bench_engine_events, engine_events),
            "store_ops_per_sec": _best_of(bench_store_throughput, store_items),
            "store_drain_per_sec": _best_of(bench_store_drain, store_items),
        },
        "schedulers": bench_schedulers(engine_events),
        "sweep": bench_sweep(
            sweep_count,
            workers,
            measure_requests=measure,
            warmup_requests=warmup,
        ),
    }


def write_bench(path: str, data: Dict[str, Any]) -> None:
    """Write harness output as stable, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
