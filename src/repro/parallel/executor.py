"""Process-pool sweep executor.

The paper's figures are built from sweeps — model zoo x image size x
concurrency x hardware config — replayed as dozens of *independent*
simulations.  Each point owns its own :class:`~repro.sim.Environment`
and :class:`~repro.sim.RandomStreams`, so points can run on separate
CPU cores with no shared state.  :func:`run_sweep` fans a list of
points across a process pool and aggregates results **in submission
order**, with a hard guarantee: the values produced by parallel
execution are bit-identical to serial execution, because every point is
a pure function of its (picklable) spec.

Design rules that keep the guarantee cheap to uphold:

- A *task* is a **module-level function** ``task(point) -> value`` (so it
  pickles by reference) and the *point* is a picklable spec — typically
  a frozen config dataclass; results cross back as the plain dicts of
  the existing ``.to_dict()`` API.
- Seeds for generated sweeps come from :func:`derive_seed`, which hashes
  ``(base_seed, key)``; the derivation is position-independent, so
  reordering or slicing a sweep never changes any point's result.
- Workers start from a ``spawn`` context by default: a fresh interpreter
  that imports only what the task needs, which keeps heavyweight
  optional dependencies (matplotlib & co) out of the workers and makes
  the execution environment identical no matter which process a point
  lands on.  ``fork`` is available opt-in for lower start-up latency.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "HEAVY_MODULES",
    "ParallelConfig",
    "PointResult",
    "SweepError",
    "SweepReport",
    "derive_seed",
    "run_sweep",
    "shutdown_persistent_pools",
]

#: Optional dependencies that must never be imported inside a pool
#: worker: they are slow to import, allocate aggressively, and nothing
#: in the simulation hot path needs them.  Enforced per-point by
#: :func:`_pool_point` and by the import-hygiene tests.
HEAVY_MODULES = ("matplotlib", "pandas", "PIL", "IPython", "notebook")


def derive_seed(base_seed: int, key: Any) -> int:
    """Deterministic per-point seed from ``(base_seed, key)``.

    Uses SHA-256 (like :class:`~repro.sim.rng.RandomStreams`), not
    Python's randomized ``hash()``, so the derivation is stable across
    interpreter launches and identical in every worker process.  ``key``
    is typically the point's index or a descriptive string.
    """
    digest = hashlib.sha256(f"{int(base_seed)}:point:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class SweepError(RuntimeError):
    """A sweep point failed; carries the failing index and point spec."""

    def __init__(self, index: int, point: Any, cause: BaseException) -> None:
        super().__init__(f"sweep point {index} ({point!r}) failed: {cause!r}")
        self.index = index
        self.point = point


@dataclass(frozen=True, kw_only=True)
class ParallelConfig:
    """Execution knobs for :func:`run_sweep`."""

    #: Pool size; ``None`` uses every available core.
    workers: Optional[int] = None
    #: Force in-process serial execution (no pool at all).
    serial: bool = False
    #: Multiprocessing start method: ``"spawn"`` (default, clean worker
    #: imports) or ``"fork"`` (faster start-up on POSIX).
    mp_context: str = "spawn"
    #: Re-run the sweep serially afterwards and assert the values are
    #: identical (the bit-identity guarantee, paid for twice the work).
    verify: bool = False
    #: Reuse one long-lived pool per ``(mp_context, workers)`` across
    #: sweeps instead of spawning fresh interpreters every call.  A
    #: spawn worker costs ~100ms of interpreter+import start-up; with
    #: many small sweeps (parameter searches, the bench harness) that
    #: start-up dominates the 0.66 parallel-efficiency figure.  Pools
    #: live until :func:`shutdown_persistent_pools` or process exit.
    persistent: bool = False
    #: Points submitted per pool task.  ``None``/1 submits one point per
    #: task (maximal load-balancing); larger chunks amortize per-point
    #: pickle + result-transport overhead when points are small and
    #: numerous.  Results are bit-identical regardless of chunking —
    #: every point stays a pure function of its spec.
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.mp_context not in ("spawn", "fork", "forkserver"):
            raise ValueError(f"unknown mp_context {self.mp_context!r}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")

    def resolved_workers(self, point_count: int) -> int:
        """Actual pool size for a sweep of ``point_count`` points."""
        workers = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(workers, point_count))


@dataclass(frozen=True)
class PointResult:
    """One executed sweep point: its value plus execution accounting."""

    index: int
    value: Any
    #: In-worker wall-clock of the task body (seconds).
    seconds: float
    #: PID of the process that ran the point.
    pid: int


@dataclass(frozen=True)
class SweepReport:
    """Ordered results of a sweep plus a progress/timing report."""

    results: Tuple[PointResult, ...]
    #: Parent-side wall-clock of the whole sweep (seconds).
    wall_seconds: float
    #: Pool size used ("1" for serial execution).
    workers: int
    #: ``"serial"`` or ``"parallel"``.
    mode: str
    #: True when a verify pass re-ran the sweep serially and matched.
    verified: bool = False
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def values(self) -> List[Any]:
        """Task return values in submission order."""
        return [r.value for r in self.results]

    @property
    def busy_seconds(self) -> float:
        """Total in-worker compute time across all points."""
        return sum(r.seconds for r in self.results)

    @property
    def parallel_efficiency(self) -> float:
        """busy / (wall * workers); 1.0 means a perfectly packed pool."""
        denom = self.wall_seconds * self.workers
        return self.busy_seconds / denom if denom > 0 else 0.0

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"{len(self.results)} points in {self.wall_seconds:.2f}s "
            f"({self.mode}, {self.workers} worker(s), "
            f"busy {self.busy_seconds:.2f}s, "
            f"efficiency {self.parallel_efficiency:.0%})"
        )

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-safe accounting (not the per-point values)."""
        return {
            "points": len(self.results),
            "wall_seconds": self.wall_seconds,
            "busy_seconds": self.busy_seconds,
            "workers": self.workers,
            "mode": self.mode,
            "parallel_efficiency": self.parallel_efficiency,
            "verified": self.verified,
            "point_seconds": [r.seconds for r in self.results],
            **self.extras,
        }


def _run_point(task: Callable[[Any], Any], index: int, point: Any) -> PointResult:
    start = time.perf_counter()
    value = task(point)
    return PointResult(
        index=index,
        value=value,
        seconds=time.perf_counter() - start,
        pid=os.getpid(),
    )


def _check_import_hygiene() -> None:
    loaded = [name for name in HEAVY_MODULES if name in sys.modules]
    if loaded:
        raise ImportError(
            f"sweep worker imported heavyweight optional deps {loaded}; "
            "tasks given to repro.parallel must stay lean "
            "(plotting/analysis belongs in the parent process)"
        )


def _pool_point(task: Callable[[Any], Any], index: int, point: Any) -> PointResult:
    """Worker-side entry: run the point, then enforce import hygiene."""
    result = _run_point(task, index, point)
    _check_import_hygiene()
    return result


class _ChunkPointError(Exception):
    """Worker-side failure inside a chunk; names the failing point.

    Carries only the index and a rendered cause so it pickles across the
    pool boundary regardless of what the task raised.
    """

    def __init__(self, index: int, message: str) -> None:
        super().__init__(index, message)
        self.index = index
        self.message = message


def _pool_chunk(
    task: Callable[[Any], Any], chunk: List[Tuple[int, Any]]
) -> List[PointResult]:
    """Worker-side entry for a batch of points (one pickle round-trip)."""
    results: List[PointResult] = []
    for index, point in chunk:
        try:
            results.append(_run_point(task, index, point))
        except Exception as exc:
            raise _ChunkPointError(index, repr(exc)) from exc
    _check_import_hygiene()
    return results


#: Long-lived pools reused across sweeps, keyed by (mp_context, workers).
_PERSISTENT_POOLS: Dict[Tuple[str, int], ProcessPoolExecutor] = {}


def _persistent_pool(mp_context: str, workers: int) -> ProcessPoolExecutor:
    import multiprocessing

    key = (mp_context, workers)
    pool = _PERSISTENT_POOLS.get(key)
    if pool is None:
        context = multiprocessing.get_context(mp_context)
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        _PERSISTENT_POOLS[key] = pool
    return pool


def _evict_persistent_pool(mp_context: str, workers: int) -> None:
    pool = _PERSISTENT_POOLS.pop((mp_context, workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_persistent_pools() -> None:
    """Shut down every pool created by ``ParallelConfig(persistent=True)``.

    Idempotent; also registered via :mod:`atexit` so leaked pools never
    outlive the parent process.
    """
    while _PERSISTENT_POOLS:
        _, pool = _PERSISTENT_POOLS.popitem()
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_persistent_pools)


def _run_serial(
    task: Callable[[Any], Any],
    points: Sequence[Any],
    on_progress: Optional[Callable[[PointResult, int], None]],
) -> List[PointResult]:
    results: List[PointResult] = []
    for index, point in enumerate(points):
        try:
            result = _run_point(task, index, point)
        except Exception as exc:
            raise SweepError(index, point, exc) from exc
        results.append(result)
        if on_progress is not None:
            on_progress(result, len(points))
    return results


def _run_pool(
    task: Callable[[Any], Any],
    points: Sequence[Any],
    workers: int,
    config: "ParallelConfig",
    on_progress: Optional[Callable[[PointResult, int], None]],
) -> List[PointResult]:
    import multiprocessing

    chunk_size = config.chunk_size or 1
    total = len(points)
    ordered: List[Optional[PointResult]] = [None] * total

    if config.persistent:
        pool = _persistent_pool(config.mp_context, workers)
        close = None
    else:
        context = multiprocessing.get_context(config.mp_context)
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        close = pool.shutdown

    try:
        if chunk_size == 1:
            pending = {
                pool.submit(_pool_point, task, index, point): [(index, point)]
                for index, point in enumerate(points)
            }
        else:
            indexed = list(enumerate(points))
            pending = {
                pool.submit(_pool_chunk, task, indexed[start : start + chunk_size]):
                    indexed[start : start + chunk_size]
                for start in range(0, total, chunk_size)
            }
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                chunk = pending.pop(future)
                error = future.exception()
                if error is not None:
                    for other in pending:
                        other.cancel()
                    if isinstance(error, BrokenProcessPool) and config.persistent:
                        # A dead worker poisons the whole executor; evict
                        # it so the next sweep gets a fresh pool.
                        _evict_persistent_pool(config.mp_context, workers)
                    if isinstance(error, _ChunkPointError):
                        index = error.index
                        point = points[index]
                    else:
                        index, point = chunk[0]
                    raise SweepError(index, point, error) from error
                got = future.result()
                for result in got if chunk_size > 1 else [got]:
                    ordered[result.index] = result
                    if on_progress is not None:
                        on_progress(result, total)
    finally:
        if close is not None:
            close(wait=True)
    return [r for r in ordered if r is not None]


def run_sweep(
    task: Callable[[Any], Any],
    points: Sequence[Any],
    config: Optional[ParallelConfig] = None,
    *,
    on_progress: Optional[Callable[[PointResult, int], None]] = None,
) -> SweepReport:
    """Execute ``task`` over every point, fanning across CPU cores.

    ``task`` must be a module-level callable and each point must be
    picklable.  Results come back **in submission order** regardless of
    completion order.  ``on_progress`` (if given) is invoked in the
    parent as each point finishes with ``(point_result, total_points)``.

    Serial and parallel execution are interchangeable: both run the
    same pure function on the same spec, so the returned values are
    bit-identical (``config.verify=True`` re-checks this at runtime).
    A failing point raises :class:`SweepError` naming the point.
    """
    if config is None:
        config = ParallelConfig()
    points = list(points)
    start = time.perf_counter()
    if not points:
        return SweepReport(results=(), wall_seconds=0.0, workers=0, mode="serial")

    workers = config.resolved_workers(len(points))
    serial = config.serial or workers == 1 or len(points) == 1
    if serial:
        results = _run_serial(task, points, on_progress)
        mode, used = "serial", 1
    else:
        results = _run_pool(task, points, workers, config, on_progress)
        mode, used = "parallel", workers
    wall = time.perf_counter() - start

    verified = False
    if config.verify and not serial:
        check = _run_serial(task, points, None)
        for got, expect in zip(results, check):
            if got.value != expect.value:
                raise AssertionError(
                    f"parallel/serial mismatch at point {got.index}: "
                    f"{got.value!r} != {expect.value!r}"
                )
        verified = True

    extras: Dict[str, Any] = {}
    if mode == "parallel":
        extras["chunk_size"] = config.chunk_size or 1
        extras["persistent"] = config.persistent
    return SweepReport(
        results=tuple(results),
        wall_seconds=wall,
        workers=used,
        mode=mode,
        verified=verified,
        extras=extras,
    )
