"""Process-pool sweep executor.

The paper's figures are built from sweeps — model zoo x image size x
concurrency x hardware config — replayed as dozens of *independent*
simulations.  Each point owns its own :class:`~repro.sim.Environment`
and :class:`~repro.sim.RandomStreams`, so points can run on separate
CPU cores with no shared state.  :func:`run_sweep` fans a list of
points across a process pool and aggregates results **in submission
order**, with a hard guarantee: the values produced by parallel
execution are bit-identical to serial execution, because every point is
a pure function of its (picklable) spec.

Design rules that keep the guarantee cheap to uphold:

- A *task* is a **module-level function** ``task(point) -> value`` (so it
  pickles by reference) and the *point* is a picklable spec — typically
  a frozen config dataclass; results cross back as the plain dicts of
  the existing ``.to_dict()`` API.
- Seeds for generated sweeps come from :func:`derive_seed`, which hashes
  ``(base_seed, key)``; the derivation is position-independent, so
  reordering or slicing a sweep never changes any point's result.
- Workers start from a ``spawn`` context by default: a fresh interpreter
  that imports only what the task needs, which keeps heavyweight
  optional dependencies (matplotlib & co) out of the workers and makes
  the execution environment identical no matter which process a point
  lands on.  ``fork`` is available opt-in for lower start-up latency.
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "HEAVY_MODULES",
    "ParallelConfig",
    "PointResult",
    "SweepError",
    "SweepReport",
    "derive_seed",
    "run_sweep",
]

#: Optional dependencies that must never be imported inside a pool
#: worker: they are slow to import, allocate aggressively, and nothing
#: in the simulation hot path needs them.  Enforced per-point by
#: :func:`_pool_point` and by the import-hygiene tests.
HEAVY_MODULES = ("matplotlib", "pandas", "PIL", "IPython", "notebook")


def derive_seed(base_seed: int, key: Any) -> int:
    """Deterministic per-point seed from ``(base_seed, key)``.

    Uses SHA-256 (like :class:`~repro.sim.rng.RandomStreams`), not
    Python's randomized ``hash()``, so the derivation is stable across
    interpreter launches and identical in every worker process.  ``key``
    is typically the point's index or a descriptive string.
    """
    digest = hashlib.sha256(f"{int(base_seed)}:point:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class SweepError(RuntimeError):
    """A sweep point failed; carries the failing index and point spec."""

    def __init__(self, index: int, point: Any, cause: BaseException) -> None:
        super().__init__(f"sweep point {index} ({point!r}) failed: {cause!r}")
        self.index = index
        self.point = point


@dataclass(frozen=True, kw_only=True)
class ParallelConfig:
    """Execution knobs for :func:`run_sweep`."""

    #: Pool size; ``None`` uses every available core.
    workers: Optional[int] = None
    #: Force in-process serial execution (no pool at all).
    serial: bool = False
    #: Multiprocessing start method: ``"spawn"`` (default, clean worker
    #: imports) or ``"fork"`` (faster start-up on POSIX).
    mp_context: str = "spawn"
    #: Re-run the sweep serially afterwards and assert the values are
    #: identical (the bit-identity guarantee, paid for twice the work).
    verify: bool = False

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.mp_context not in ("spawn", "fork", "forkserver"):
            raise ValueError(f"unknown mp_context {self.mp_context!r}")

    def resolved_workers(self, point_count: int) -> int:
        """Actual pool size for a sweep of ``point_count`` points."""
        workers = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(workers, point_count))


@dataclass(frozen=True)
class PointResult:
    """One executed sweep point: its value plus execution accounting."""

    index: int
    value: Any
    #: In-worker wall-clock of the task body (seconds).
    seconds: float
    #: PID of the process that ran the point.
    pid: int


@dataclass(frozen=True)
class SweepReport:
    """Ordered results of a sweep plus a progress/timing report."""

    results: Tuple[PointResult, ...]
    #: Parent-side wall-clock of the whole sweep (seconds).
    wall_seconds: float
    #: Pool size used ("1" for serial execution).
    workers: int
    #: ``"serial"`` or ``"parallel"``.
    mode: str
    #: True when a verify pass re-ran the sweep serially and matched.
    verified: bool = False
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def values(self) -> List[Any]:
        """Task return values in submission order."""
        return [r.value for r in self.results]

    @property
    def busy_seconds(self) -> float:
        """Total in-worker compute time across all points."""
        return sum(r.seconds for r in self.results)

    @property
    def parallel_efficiency(self) -> float:
        """busy / (wall * workers); 1.0 means a perfectly packed pool."""
        denom = self.wall_seconds * self.workers
        return self.busy_seconds / denom if denom > 0 else 0.0

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"{len(self.results)} points in {self.wall_seconds:.2f}s "
            f"({self.mode}, {self.workers} worker(s), "
            f"busy {self.busy_seconds:.2f}s, "
            f"efficiency {self.parallel_efficiency:.0%})"
        )

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-safe accounting (not the per-point values)."""
        return {
            "points": len(self.results),
            "wall_seconds": self.wall_seconds,
            "busy_seconds": self.busy_seconds,
            "workers": self.workers,
            "mode": self.mode,
            "parallel_efficiency": self.parallel_efficiency,
            "verified": self.verified,
            "point_seconds": [r.seconds for r in self.results],
            **self.extras,
        }


def _run_point(task: Callable[[Any], Any], index: int, point: Any) -> PointResult:
    start = time.perf_counter()
    value = task(point)
    return PointResult(
        index=index,
        value=value,
        seconds=time.perf_counter() - start,
        pid=os.getpid(),
    )


def _pool_point(task: Callable[[Any], Any], index: int, point: Any) -> PointResult:
    """Worker-side entry: run the point, then enforce import hygiene."""
    result = _run_point(task, index, point)
    loaded = [name for name in HEAVY_MODULES if name in sys.modules]
    if loaded:
        raise ImportError(
            f"sweep worker imported heavyweight optional deps {loaded}; "
            "tasks given to repro.parallel must stay lean "
            "(plotting/analysis belongs in the parent process)"
        )
    return result


def _run_serial(
    task: Callable[[Any], Any],
    points: Sequence[Any],
    on_progress: Optional[Callable[[PointResult, int], None]],
) -> List[PointResult]:
    results: List[PointResult] = []
    for index, point in enumerate(points):
        try:
            result = _run_point(task, index, point)
        except Exception as exc:
            raise SweepError(index, point, exc) from exc
        results.append(result)
        if on_progress is not None:
            on_progress(result, len(points))
    return results


def _run_pool(
    task: Callable[[Any], Any],
    points: Sequence[Any],
    workers: int,
    mp_context: str,
    on_progress: Optional[Callable[[PointResult, int], None]],
) -> List[PointResult]:
    import multiprocessing

    context = multiprocessing.get_context(mp_context)
    ordered: List[Optional[PointResult]] = [None] * len(points)
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        pending = {
            pool.submit(_pool_point, task, index, point): (index, point)
            for index, point in enumerate(points)
        }
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index, point = pending.pop(future)
                error = future.exception()
                if error is not None:
                    for other in pending:
                        other.cancel()
                    raise SweepError(index, point, error) from error
                result = future.result()
                ordered[index] = result
                if on_progress is not None:
                    on_progress(result, len(points))
    return [r for r in ordered if r is not None]


def run_sweep(
    task: Callable[[Any], Any],
    points: Sequence[Any],
    config: Optional[ParallelConfig] = None,
    *,
    on_progress: Optional[Callable[[PointResult, int], None]] = None,
) -> SweepReport:
    """Execute ``task`` over every point, fanning across CPU cores.

    ``task`` must be a module-level callable and each point must be
    picklable.  Results come back **in submission order** regardless of
    completion order.  ``on_progress`` (if given) is invoked in the
    parent as each point finishes with ``(point_result, total_points)``.

    Serial and parallel execution are interchangeable: both run the
    same pure function on the same spec, so the returned values are
    bit-identical (``config.verify=True`` re-checks this at runtime).
    A failing point raises :class:`SweepError` naming the point.
    """
    if config is None:
        config = ParallelConfig()
    points = list(points)
    start = time.perf_counter()
    if not points:
        return SweepReport(results=(), wall_seconds=0.0, workers=0, mode="serial")

    workers = config.resolved_workers(len(points))
    serial = config.serial or workers == 1 or len(points) == 1
    if serial:
        results = _run_serial(task, points, on_progress)
        mode, used = "serial", 1
    else:
        results = _run_pool(task, points, workers, config.mp_context, on_progress)
        mode, used = "parallel", workers
    wall = time.perf_counter() - start

    verified = False
    if config.verify and not serial:
        check = _run_serial(task, points, None)
        for got, expect in zip(results, check):
            if got.value != expect.value:
                raise AssertionError(
                    f"parallel/serial mismatch at point {got.index}: "
                    f"{got.value!r} != {expect.value!r}"
                )
        verified = True

    return SweepReport(
        results=tuple(results),
        wall_seconds=wall,
        workers=used,
        mode=mode,
        verified=verified,
    )
