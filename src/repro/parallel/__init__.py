"""Parallel sweep execution: fan independent experiment points across cores.

Public surface::

    from repro.parallel import (
        ParallelConfig, run_sweep, derive_seed,
        ExperimentPoint, FacePipelinePoint, FleetPoint,
        run_experiment_point, run_face_pipeline_point, run_fleet_point,
    )

    points = [ExperimentPoint(config=replace(cfg, concurrency=c),
                              tags=(("concurrency", c),))
              for c in (1, 16, 64, 256)]
    report = run_sweep(run_experiment_point, points,
                       ParallelConfig(workers=4))
    rows = report.values        # ordered, bit-identical to serial

Every point is an independent simulation (own Environment, own RNG
family), so serial and parallel execution produce bit-identical
results; :mod:`repro.parallel.bench` measures events/sec and sweep
wall-clock for the performance trajectory in ``BENCH_parallel.json``.
"""

from .executor import (
    HEAVY_MODULES,
    ParallelConfig,
    PointResult,
    SweepError,
    SweepReport,
    derive_seed,
    run_sweep,
)
from .tasks import (
    ExperimentPoint,
    FacePipelinePoint,
    FleetPoint,
    run_experiment_point,
    run_face_pipeline_point,
    run_fleet_point,
    run_fleet_result_point,
)

__all__ = [
    "HEAVY_MODULES",
    "ParallelConfig",
    "PointResult",
    "SweepError",
    "SweepReport",
    "derive_seed",
    "run_sweep",
    "ExperimentPoint",
    "FacePipelinePoint",
    "FleetPoint",
    "run_experiment_point",
    "run_face_pipeline_point",
    "run_fleet_point",
    "run_fleet_result_point",
]
