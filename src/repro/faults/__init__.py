"""Fault injection for the simulated serving fleet.

The paper measures a healthy testbed; production serving is defined by
how the system behaves when GPUs stall, brokers drop messages, and
queues overflow.  This package injects those degradations into the
simulation deterministically (every fault time is drawn from a named
:class:`~repro.sim.RandomStreams` stream), so robustness experiments
are exactly as reproducible as the paper-figure runs:

- :class:`GpuCrash` — a GPU instance dies and restarts; queued kernels
  stall until the restart completes.
- :class:`SlowNode` — transient degradation (thermal throttling, noisy
  neighbour): every kernel on the node runs ``slowdown`` times longer.
- :class:`PcieThrottle` — link contention: transfers run at a fraction
  of calibrated bandwidth.
- :class:`NodeOutage` — the whole node drops out of the load balancer's
  healthy set (and its GPUs stall) for the outage duration.
- :class:`BrokerFault` — broker outages block producers/consumers, and
  a delivery-loss probability exercises the redelivery semantics
  (at-least-once for kafka/redis, loss for fused).

A :class:`FaultPlan` bundles profiles; :class:`FaultInjector` attaches
them to nodes/brokers and drives the on/off timeline.  With no plan
configured nothing is attached and the serving stack is bit-identical
to the fault-free simulation.
"""

from .health import BrokerHealth, DeviceHealth
from .injector import FaultEvent, FaultInjector
from .profiles import (
    BrokerFault,
    FaultPlan,
    GpuCrash,
    NodeOutage,
    PcieThrottle,
    SlowNode,
    gpu_crash_plan,
)
from .experiment import FaultSweepPoint, run_fault_experiment, sweep_fault_rates

__all__ = [
    "BrokerFault",
    "BrokerHealth",
    "DeviceHealth",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSweepPoint",
    "GpuCrash",
    "NodeOutage",
    "PcieThrottle",
    "SlowNode",
    "gpu_crash_plan",
    "run_fault_experiment",
    "sweep_fault_rates",
]
