"""The fault injector: turns profiles into deterministic fault timelines.

One injector owns the fault schedule of one experiment.  Targets are
attached explicitly (server nodes with their index, the load balancer,
brokers); ``start()`` then spawns one simulation process per
(profile, target) pair.  Fault times are drawn from streams named after
the profile kind and target identity, so adding a profile never
perturbs the schedule of another, and the same seed always produces the
same fault timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from ..kernel import ExecutionBackend, RandomStreams
from .health import BrokerHealth, DeviceHealth
from .profiles import (
    BrokerFault,
    FaultPlan,
    GpuCrash,
    NodeOutage,
    PcieThrottle,
    SlowNode,
)

__all__ = ["FaultInjector", "FaultEvent"]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for the experiment's fault log."""

    at_time: float
    kind: str
    target: str
    duration_seconds: float


class FaultInjector:
    """Drives the fault timeline of one simulation."""

    def __init__(self, env: ExecutionBackend, streams: RandomStreams, plan: FaultPlan) -> None:
        self.env = env
        self.streams = streams
        self.plan = plan
        self.events: List[FaultEvent] = []
        self._nodes = []  # (index, node, balancer)
        self._brokers = []
        self._started = False

    def __repr__(self) -> str:
        return f"<FaultInjector profiles={len(self.plan.profiles)} events={len(self.events)}>"

    @property
    def fault_count(self) -> int:
        return len(self.events)

    def register_metrics(self, registry) -> None:
        """Publish the fault log size as a registry view."""
        registry.counter_fn(
            "repro_faults_injected_total",
            "Faults injected from the experiment's fault plan",
            lambda: self.fault_count,
        )

    # -- target registration -------------------------------------------------

    def attach_node(self, node, index: int = 0, balancer=None) -> None:
        """Register one server node (and optionally its balancer, so
        node outages are visible to health-aware dispatch)."""
        for gpu in node.gpus:
            if gpu.health is None:
                gpu.health = DeviceHealth(self.env)
            if gpu.link.health is None:
                gpu.link.health = DeviceHealth(self.env)
        self._nodes.append((index, node, balancer))

    def attach_fleet(self, fleet) -> None:
        """Register every node of a :class:`~repro.serving.fleet.Fleet`."""
        for index, node in enumerate(fleet.nodes):
            self.attach_node(node, index=index, balancer=fleet.balancer)

    def attach_broker(self, broker) -> None:
        """Register a broker; loss probability comes from the plan's
        :class:`BrokerFault` profile (if any)."""
        profile = next(
            (p for p in self.plan.profiles if isinstance(p, BrokerFault)), None
        )
        if broker.health is None:
            rng = self.streams.stream(f"faults:broker:{broker.name}:loss")
            broker.health = BrokerHealth(
                self.env,
                rng,
                loss_probability=profile.loss_probability if profile else 0.0,
                redelivery_seconds=profile.redelivery_seconds if profile else 50e-3,
            )
        self._brokers.append(broker)

    # -- schedule ------------------------------------------------------------

    def start(self) -> None:
        """Spawn the fault processes (idempotent)."""
        if self._started:
            return
        self._started = True
        for profile in self.plan.profiles:
            if isinstance(profile, GpuCrash):
                for index, node, _ in self._nodes:
                    for gpu in node.gpus:
                        self._spawn(
                            profile.kind,
                            f"node{index}:{gpu.name}",
                            profile.mtbf_seconds,
                            profile.restart_seconds,
                            lambda d, g=gpu: g.health.fail(d),
                        )
            elif isinstance(profile, SlowNode):
                for index, node, _ in self._nodes:
                    self._spawn(
                        profile.kind,
                        f"node{index}",
                        profile.mtbf_seconds,
                        profile.duration_seconds,
                        lambda d, n=node, s=profile.slowdown: self._degrade(n, s, d),
                    )
            elif isinstance(profile, PcieThrottle):
                for index, node, _ in self._nodes:
                    for gpu in node.gpus:
                        self._spawn(
                            profile.kind,
                            f"node{index}:{gpu.name}.pcie",
                            profile.mtbf_seconds,
                            profile.duration_seconds,
                            lambda d, g=gpu, f=profile.bandwidth_factor: self._throttle(
                                g.link, f, d
                            ),
                        )
            elif isinstance(profile, NodeOutage):
                for index, node, balancer in self._nodes:
                    self._spawn(
                        profile.kind,
                        f"node{index}",
                        profile.mtbf_seconds,
                        profile.duration_seconds,
                        lambda d, i=index, n=node, b=balancer: self._node_outage(
                            n, b, i, d
                        ),
                    )
            elif isinstance(profile, BrokerFault):
                for broker in self._brokers:
                    self._spawn(
                        profile.kind,
                        f"broker:{broker.name}",
                        profile.mtbf_seconds,
                        profile.duration_seconds,
                        lambda d, b=broker: b.health.fail(d),
                    )

    def _spawn(self, kind, target, mtbf, duration, trigger) -> None:
        self.env.process(self._hazard(kind, target, mtbf, duration, trigger))

    def _hazard(self, kind, target, mtbf, duration, trigger) -> Generator:
        """One Poisson fault process against one target."""
        rng = self.streams.stream(f"faults:{kind}:{target}")
        if self.plan.start_after_seconds > 0:
            yield self.env.timeout(self.plan.start_after_seconds)
        while True:
            yield self.env.timeout(rng.expovariate(1.0 / mtbf))
            self.events.append(FaultEvent(self.env.now, kind, target, duration))
            trigger(duration)
            # Let the fault play out before re-arming the hazard, so the
            # configured duty cycle (duration / (mtbf + duration)) holds.
            yield self.env.timeout(duration)

    # -- fault actions ---------------------------------------------------------

    def _degrade(self, node, slowdown: float, duration: float) -> None:
        for gpu in node.gpus:
            gpu.health.slowdown = slowdown
        self.env.process(self._restore_slowdown(node, duration))

    def _restore_slowdown(self, node, duration: float) -> Generator:
        yield self.env.timeout(duration)
        for gpu in node.gpus:
            gpu.health.slowdown = 1.0

    def _throttle(self, link, factor: float, duration: float) -> None:
        link.health.bandwidth_factor = factor
        self.env.process(self._restore_bandwidth(link, duration))

    def _restore_bandwidth(self, link, duration: float) -> Generator:
        yield self.env.timeout(duration)
        link.health.bandwidth_factor = 1.0

    def _node_outage(self, node, balancer, index: int, duration: float) -> None:
        for gpu in node.gpus:
            gpu.health.fail(duration)
        if balancer is not None:
            balancer.set_node_up(index, False)
            self.env.process(self._restore_node(balancer, index, duration))

    def _restore_node(self, balancer, index: int, duration: float) -> Generator:
        yield self.env.timeout(duration)
        balancer.set_node_up(index, True)
