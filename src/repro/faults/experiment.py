"""Fault-tolerance experiments: goodput and tail latency vs fault rate.

The headline robustness question: how much of the paper's healthy-
testbed throughput survives a given fault rate, and what do deadlines,
retries, and circuit breaking buy?  :func:`run_fault_experiment` runs
one fleet under one fault plan; :func:`sweep_fault_rates` walks GPU
downtime fractions and reports goodput/p99 degradation against the
fault-free baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.config import ServerConfig
from ..hardware.calibration import DEFAULT_CALIBRATION, Calibration
from ..serving.fleet import FleetResult, run_fleet_experiment
from ..serving.resilience import ResiliencePolicy
from ..vision.datasets import Dataset
from ..workload import Workload
from .profiles import FaultPlan, gpu_crash_plan

__all__ = ["FaultSweepPoint", "run_fault_experiment", "sweep_fault_rates"]


def run_fault_experiment(
    server_config: ServerConfig,
    faults: Optional[FaultPlan] = None,
    resilience: Optional[ResiliencePolicy] = None,
    node_count: int = 2,
    offered_rate: float = 150.0,
    dataset: Optional[Dataset] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    gpu_count: int = 1,
    per_node_cap: int = 512,
    seed: int = 0,
    warmup_requests: int = 300,
    measure_requests: int = 2000,
    max_sim_seconds: float = 60.0,
    workload: Optional[Workload] = None,
) -> FleetResult:
    """One fleet experiment under a fault plan.

    A thin front door over
    :func:`~repro.serving.fleet.run_fleet_experiment` that defaults the
    resilience policy on whenever a fault plan is active (running faults
    without deadlines would just hang the tail).  ``workload`` overrides
    the flat ``offered_rate``/``dataset`` knobs; without one, those map
    onto ``Workload.constant`` (bit-identical to the old inline load).
    """
    if resilience is None and faults is not None and faults.enabled:
        resilience = ResiliencePolicy()
    if workload is None:
        workload = Workload.constant(offered_rate, dataset=dataset)
    return run_fleet_experiment(
        server_config,
        node_count=node_count,
        workload=workload,
        calibration=calibration,
        gpu_count=gpu_count,
        per_node_cap=per_node_cap,
        seed=seed,
        warmup_requests=warmup_requests,
        measure_requests=measure_requests,
        max_sim_seconds=max_sim_seconds,
        resilience=resilience,
        faults=faults,
    )


@dataclass(frozen=True, kw_only=True)
class FaultSweepPoint:
    """One point of a fault-rate sweep, relative to the healthy baseline."""

    downtime_fraction: float
    result: FleetResult
    baseline: FleetResult

    @property
    def goodput_ratio(self) -> float:
        """Throughput under faults relative to the fault-free run."""
        if self.baseline.throughput <= 0:
            return 0.0
        return self.result.throughput / self.baseline.throughput

    @property
    def p99_ratio(self) -> float:
        """p99 latency under faults relative to the fault-free run."""
        if self.baseline.metrics.latency.p99 <= 0:
            return float("inf")
        return self.result.metrics.latency.p99 / self.baseline.metrics.latency.p99

    @property
    def retries(self) -> int:
        return self.result.metrics.retry_count

    @property
    def timeouts(self) -> int:
        return self.result.metrics.timeout_count


def sweep_fault_rates(
    server_config: ServerConfig,
    downtime_fractions: Sequence[float] = (0.005, 0.01, 0.02, 0.05),
    restart_seconds: float = 0.5,
    resilience: Optional[ResiliencePolicy] = None,
    workers: Optional[int] = None,
    **run_kwargs,
) -> List[FaultSweepPoint]:
    """GPU-crash sweep: goodput/p99 degradation vs per-GPU downtime.

    Runs one fault-free baseline plus one experiment per downtime
    fraction; all runs share the same seed and load, so differences are
    attributable to the injected faults alone.  The baseline and every
    fault point are independent simulations, so ``workers > 1`` fans
    them across CPU cores via :func:`repro.parallel.run_sweep` with
    bit-identical results.
    """
    if resilience is None:
        resilience = ResiliencePolicy()
    plans = [
        gpu_crash_plan(fraction, restart_seconds=restart_seconds)
        for fraction in downtime_fractions
    ]
    if workers is not None and workers > 1:
        from ..parallel import FleetPoint, ParallelConfig, run_fleet_result_point, run_sweep

        sweep = [
            FleetPoint(server=server_config, faults=faults,
                       resilience=resilience, **run_kwargs)
            for faults in [None, *plans]
        ]
        report = run_sweep(
            run_fleet_result_point, sweep, ParallelConfig(workers=workers)
        )
        baseline, *results = report.values
    else:
        baseline = run_fault_experiment(
            server_config, faults=None, resilience=resilience, **run_kwargs
        )
        results = [
            run_fault_experiment(
                server_config, faults=plan, resilience=resilience, **run_kwargs
            )
            for plan in plans
        ]
    return [
        FaultSweepPoint(downtime_fraction=fraction, result=result, baseline=baseline)
        for fraction, result in zip(downtime_fractions, results)
    ]
