"""Mutable health state attached to simulated devices and brokers.

A :class:`DeviceHealth` hangs off a :class:`~repro.hardware.gpu.Gpu` or
:class:`~repro.hardware.pcie.PcieLink` (their ``health`` attribute is
``None`` until a :class:`~repro.faults.injector.FaultInjector` attaches
one, keeping the healthy path zero-cost).  Device code consults it at
its choke points: ``gate()`` blocks while the device is down, and the
``slowdown`` / ``bandwidth_factor`` multipliers degrade service rates.

Overlapping faults extend the down window (the device restores at the
maximum of all requested restore times).
"""

from __future__ import annotations

import random
from typing import Generator, Optional

from ..kernel import Event, ExecutionBackend

__all__ = ["DeviceHealth", "BrokerHealth"]


class DeviceHealth:
    """Down/degraded state for one device (GPU, PCIe link, node)."""

    def __init__(self, env: ExecutionBackend) -> None:
        self.env = env
        #: Kernel-duration multiplier (>= 1.0 when degraded).
        self.slowdown = 1.0
        #: Transfer-rate multiplier in (0, 1] (PCIe throttling).
        self.bandwidth_factor = 1.0
        self._resume: Optional[Event] = None
        self._down_until = 0.0
        #: Total failures injected (diagnostics).
        self.failures = 0
        #: Accumulated seconds spent down.
        self.down_seconds = 0.0
        self._down_since: Optional[float] = None

    def __repr__(self) -> str:
        state = "down" if self.is_down else "up"
        return f"<DeviceHealth {state} slowdown={self.slowdown} bw={self.bandwidth_factor}>"

    @property
    def is_down(self) -> bool:
        return self._resume is not None

    def fail(self, duration_seconds: float) -> None:
        """Take the device down for ``duration_seconds`` from now."""
        if duration_seconds <= 0:
            raise ValueError("fault duration must be positive")
        self.failures += 1
        restore_at = self.env.now + duration_seconds
        if self._resume is None:
            self._resume = self.env.event()
            self._down_since = self.env.now
            self._down_until = restore_at
            self.env.process(self._restore())
        else:
            # Overlapping fault: extend the outage window.
            self._down_until = max(self._down_until, restore_at)

    def _restore(self) -> Generator:
        while self.env.now < self._down_until:
            yield self.env.timeout(self._down_until - self.env.now)
        resume = self._resume
        self._resume = None
        if self._down_since is not None:
            self.down_seconds += self.env.now - self._down_since
            self._down_since = None
        assert resume is not None
        resume.succeed()

    def gate(self) -> Generator:
        """Process generator: block while the device is down.

        Usage from device code: ``yield from health.gate()``.
        """
        while self._resume is not None:
            yield self._resume


class BrokerHealth(DeviceHealth):
    """Broker health: outages plus a delivery-loss probability."""

    def __init__(
        self,
        env: ExecutionBackend,
        rng: random.Random,
        loss_probability: float = 0.0,
        redelivery_seconds: float = 50e-3,
    ) -> None:
        super().__init__(env)
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if redelivery_seconds <= 0:
            raise ValueError("redelivery_seconds must be positive")
        self._rng = rng
        #: Probability that one delivery attempt is lost.
        self.loss_probability = loss_probability
        #: Producer-side retry delay after a lost ack (at-least-once).
        self.redelivery_seconds = redelivery_seconds

    def draw_loss(self) -> bool:
        """Deterministically decide whether this delivery attempt fails."""
        if self.loss_probability <= 0.0:
            return False
        return self._rng.random() < self.loss_probability
