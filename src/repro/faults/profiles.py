"""Fault profiles: declarative specifications of what can go wrong.

Each profile describes one failure mode as a Poisson hazard (mean time
between faults) plus the fault's shape (duration, severity).  Profiles
carry no simulation state — a
:class:`~repro.faults.injector.FaultInjector` turns them into
deterministic on/off timelines against concrete targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple, Union

__all__ = [
    "GpuCrash",
    "SlowNode",
    "PcieThrottle",
    "NodeOutage",
    "BrokerFault",
    "FaultProfile",
    "FaultPlan",
    "gpu_crash_plan",
]


def _check_hazard(mtbf_seconds: float, duration_seconds: float) -> None:
    if mtbf_seconds <= 0:
        raise ValueError("mtbf_seconds must be positive")
    if duration_seconds <= 0:
        raise ValueError("fault duration must be positive")


@dataclass(frozen=True, kw_only=True)
class GpuCrash:
    """A GPU instance crashes and restarts (driver reset / OOM kill).

    While down, kernels queued on the device stall until the restart
    completes; resilient callers detect the stall via their deadline and
    retry elsewhere.
    """

    kind = "gpu_crash"
    #: Mean time between crashes, per GPU.
    mtbf_seconds: float = 30.0
    #: Restart time (driver reset + model reload + engine warm-up).
    restart_seconds: float = 0.5

    def __post_init__(self) -> None:
        _check_hazard(self.mtbf_seconds, self.restart_seconds)

    @property
    def downtime_fraction(self) -> float:
        """Long-run fraction of time each GPU spends restarting."""
        return self.restart_seconds / (self.mtbf_seconds + self.restart_seconds)


@dataclass(frozen=True, kw_only=True)
class SlowNode:
    """Transient degradation: every kernel runs ``slowdown`` times longer
    (thermal throttling, a noisy co-tenant, ECC scrubbing)."""

    kind = "slow_node"
    mtbf_seconds: float = 20.0
    duration_seconds: float = 2.0
    slowdown: float = 4.0

    def __post_init__(self) -> None:
        _check_hazard(self.mtbf_seconds, self.duration_seconds)
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1.0")


@dataclass(frozen=True, kw_only=True)
class PcieThrottle:
    """Link contention: PCIe transfers run at ``bandwidth_factor`` of the
    calibrated rate for the fault's duration."""

    kind = "pcie_throttle"
    mtbf_seconds: float = 20.0
    duration_seconds: float = 2.0
    bandwidth_factor: float = 0.25

    def __post_init__(self) -> None:
        _check_hazard(self.mtbf_seconds, self.duration_seconds)
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must be in (0, 1]")


@dataclass(frozen=True, kw_only=True)
class NodeOutage:
    """The whole node drops out: the balancer marks it unhealthy and its
    GPUs stall for the outage duration (power event, kernel panic)."""

    kind = "node_outage"
    mtbf_seconds: float = 60.0
    duration_seconds: float = 3.0

    def __post_init__(self) -> None:
        _check_hazard(self.mtbf_seconds, self.duration_seconds)


@dataclass(frozen=True, kw_only=True)
class BrokerFault:
    """Broker outage and/or message loss.

    Outages block producers and consumers until the broker returns.
    ``loss_probability`` models delivery failures: at-least-once brokers
    (kafka, redis) pay a redelivery delay but never lose the message;
    the at-most-once fused hand-off drops it.
    """

    kind = "broker"
    mtbf_seconds: float = 30.0
    duration_seconds: float = 1.0
    loss_probability: float = 0.0
    redelivery_seconds: float = 50e-3

    def __post_init__(self) -> None:
        _check_hazard(self.mtbf_seconds, self.duration_seconds)
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if self.redelivery_seconds <= 0:
            raise ValueError("redelivery_seconds must be positive")


FaultProfile = Union[GpuCrash, SlowNode, PcieThrottle, NodeOutage, BrokerFault]


@dataclass(frozen=True, kw_only=True)
class FaultPlan:
    """A bundle of fault profiles active during one experiment."""

    profiles: Tuple[FaultProfile, ...] = ()
    #: Faults fire only after this much simulated time (lets the system
    #: warm up cleanly before degradation starts).
    start_after_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.start_after_seconds < 0:
            raise ValueError("start_after_seconds must be >= 0")

    @property
    def enabled(self) -> bool:
        return bool(self.profiles)

    def with_overrides(self, **kwargs) -> "FaultPlan":
        """Copy with fields replaced."""
        return replace(self, **kwargs)


def gpu_crash_plan(
    downtime_fraction: float,
    restart_seconds: float = 0.5,
    start_after_seconds: float = 0.0,
) -> FaultPlan:
    """A GPU-crash plan targeting a long-run per-GPU downtime fraction.

    ``downtime_fraction=0.01`` means each GPU spends ~1 % of the run
    restarting; the implied mean time between crashes is
    ``restart * (1 - f) / f``.
    """
    if not 0.0 < downtime_fraction < 1.0:
        raise ValueError("downtime_fraction must be in (0, 1)")
    mtbf = restart_seconds * (1.0 - downtime_fraction) / downtime_fraction
    return FaultPlan(
        profiles=(GpuCrash(mtbf_seconds=mtbf, restart_seconds=restart_seconds),),
        start_after_seconds=start_after_seconds,
    )
