"""repro — a faithful, calibrated simulation reproduction of

    "Beyond Inference: Performance Analysis of DNN Server Overheads
     for Computer Vision" (DAC 2024).

The package implements the paper's entire measurement stack from
scratch as a deterministic discrete-event simulation: the server
platform (CPU / GPU / PCIe / device memory / energy), the vision
preprocessing substrate (JPEG decode, resize, normalize on either
device), a Triton-like serving system (dynamic batching, instances,
stage isolation), load generation, message brokers (Kafka-like,
Redis-like, fused), and the multi-DNN face-identification pipeline.

Quickstart::

    from repro import serve_classification

    result = serve_classification(model="resnet-50",
                                  preprocess_device="gpu",
                                  image_size="medium")
    print(result.throughput, "img/s")
    print(result.metrics.span_fractions)

Every figure in the paper's evaluation has a regenerating benchmark
under ``benchmarks/``; see ``DESIGN.md`` for the experiment index and
``EXPERIMENTS.md`` for paper-vs-measured results.
"""

from .analysis import ClaimSet, LatencyBreakdown, breakdown_from_metrics, cache_summary, format_table
from .cache import CacheConfig, CacheHierarchy, CacheStats, CacheTier
from .apps import (
    FacePipeline,
    FacePipelineConfig,
    NaiveLoopConfig,
    run_naive_loop,
    serve_classification,
    stage_throughputs,
    zero_load_breakdown,
)
from .core import (
    DynamicBatcher,
    InferenceRequest,
    InferenceServer,
    MetricsCollector,
    RunMetrics,
    ServerConfig,
)
from .core.tuner import TuningResult, tune_server
from .faults import (
    BrokerFault,
    FaultInjector,
    FaultPlan,
    GpuCrash,
    NodeOutage,
    PcieThrottle,
    SlowNode,
    gpu_crash_plan,
    run_fault_experiment,
    sweep_fault_rates,
)
from .hardware import DEFAULT_CALIBRATION, Calibration, ServerNode
from .models import MODEL_ZOO, ModelSpec, get_model, inference_latency
from .serving import (
    BreakerPolicy,
    ExperimentConfig,
    ResiliencePolicy,
    RetryPolicy,
    RunResult,
    run_experiment,
    run_face_pipeline,
)
from .kernel import (
    AsyncioBackend,
    ExecutionBackend,
    VirtualTimeBackend,
    run_until,
)
from .sim import Environment, RandomStreams
from .telemetry import (
    MetricsRegistry,
    SloConfig,
    SloTracker,
    TelemetryConfig,
    TelemetrySession,
    Tracer,
)
from .vision import (
    LARGE_IMAGE,
    MEDIUM_IMAGE,
    SMALL_IMAGE,
    Image,
    ImageNetLikeDataset,
    ZipfDataset,
    reference_dataset,
)
from .workload import (
    DiurnalCurve,
    FlashCrowd,
    MarkovSessionModel,
    RegionalMix,
    Workload,
    synthesize_trace,
    trace_digest,
)

__version__ = "1.0.0"

__all__ = [
    "BreakerPolicy",
    "BrokerFault",
    "CacheConfig",
    "CacheHierarchy",
    "CacheStats",
    "CacheTier",
    "Calibration",
    "ClaimSet",
    "FaultInjector",
    "FaultPlan",
    "GpuCrash",
    "NodeOutage",
    "PcieThrottle",
    "ResiliencePolicy",
    "RetryPolicy",
    "SlowNode",
    "gpu_crash_plan",
    "run_fault_experiment",
    "sweep_fault_rates",
    "AsyncioBackend",
    "DEFAULT_CALIBRATION",
    "DynamicBatcher",
    "Environment",
    "ExecutionBackend",
    "run_until",
    "VirtualTimeBackend",
    "ExperimentConfig",
    "FacePipeline",
    "FacePipelineConfig",
    "Image",
    "ImageNetLikeDataset",
    "InferenceRequest",
    "InferenceServer",
    "LARGE_IMAGE",
    "LatencyBreakdown",
    "MEDIUM_IMAGE",
    "MODEL_ZOO",
    "MetricsCollector",
    "MetricsRegistry",
    "ModelSpec",
    "NaiveLoopConfig",
    "RandomStreams",
    "RunMetrics",
    "RunResult",
    "SMALL_IMAGE",
    "ServerConfig",
    "ServerNode",
    "SloConfig",
    "SloTracker",
    "TelemetryConfig",
    "TelemetrySession",
    "Tracer",
    "TuningResult",
    "Workload",
    "DiurnalCurve",
    "FlashCrowd",
    "MarkovSessionModel",
    "RegionalMix",
    "synthesize_trace",
    "trace_digest",
    "ZipfDataset",
    "breakdown_from_metrics",
    "cache_summary",
    "format_table",
    "get_model",
    "inference_latency",
    "reference_dataset",
    "run_experiment",
    "run_face_pipeline",
    "run_naive_loop",
    "serve_classification",
    "stage_throughputs",
    "tune_server",
    "zero_load_breakdown",
    "__version__",
]
