"""Load generation and the experiment runner."""

from .client import ClosedLoopClient, OpenLoopClient
from .autoscaler import AutoscaledFleet, AutoscalerPolicy, ScalingEvent
from .loadgen import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PatternedClient,
    PoissonArrivals,
    WorkloadClient,
)
from .fleet import (
    CapacityPlan,
    Fleet,
    FleetResult,
    LEAST_OUTSTANDING,
    LoadBalancer,
    ROUND_ROBIN,
    plan_capacity,
    run_fleet_experiment,
)
from .resilience import (
    BreakerPolicy,
    CircuitBreaker,
    ResiliencePolicy,
    RetryPolicy,
)
from .runner import ExperimentConfig, RunResult, run_experiment, run_face_pipeline, run_open_loop

__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "ResiliencePolicy",
    "RetryPolicy",
    "ArrivalProcess",
    "AutoscaledFleet",
    "AutoscalerPolicy",
    "ScalingEvent",
    "BurstyArrivals",
    "CapacityPlan",
    "DiurnalArrivals",
    "PatternedClient",
    "PoissonArrivals",
    "WorkloadClient",
    "ClosedLoopClient",
    "Fleet",
    "FleetResult",
    "LEAST_OUTSTANDING",
    "LoadBalancer",
    "ROUND_ROBIN",
    "plan_capacity",
    "run_fleet_experiment",
    "ExperimentConfig",
    "OpenLoopClient",
    "RunResult",
    "run_experiment",
    "run_face_pipeline",
    "run_open_loop",
]
