"""Load generation clients.

The paper's methodology (Sec. 4.3) is *closed-loop*: a load balancer caps
the number of concurrent requests per node, so the node always has
exactly ``concurrency`` requests in flight — each completion immediately
triggers the next submission.  :class:`ClosedLoopClient` implements that;
:class:`OpenLoopClient` (Poisson arrivals) is provided for open-loop
studies and the loadgen ablation.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.metrics import MetricsCollector
from ..core.server import InferenceServer
from ..kernel import ExecutionBackend, RandomStreams
from ..vision.datasets import Dataset
from .resilience import ResiliencePolicy

__all__ = ["ClosedLoopClient", "OpenLoopClient"]


class ClosedLoopClient:
    """Keeps exactly ``concurrency`` requests outstanding.

    With a :class:`~repro.serving.resilience.ResiliencePolicy` each
    worker races its request against the per-attempt deadline and
    retries with exponential backoff (drawing jitter from the
    ``client:retry`` stream); an abandoned attempt still drains on the
    server, where it is recorded as a timeout.  With ``resilience=None``
    (the default) the submit path is untouched.
    """

    def __init__(
        self,
        env: ExecutionBackend,
        server: InferenceServer,
        dataset: Dataset,
        concurrency: int,
        streams: RandomStreams,
        think_time_seconds: float = 0.0,
        think_jitter_seconds: float = 0.0,
        resilience: Optional[ResiliencePolicy] = None,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if think_time_seconds < 0 or think_jitter_seconds < 0:
            raise ValueError("think time must be >= 0")
        self.env = env
        self.server = server
        self.dataset = dataset
        self.concurrency = concurrency
        self.think_time = think_time_seconds
        self.think_jitter = think_jitter_seconds
        self.resilience = resilience
        self.metrics = metrics
        self.issued = 0
        self.retries = 0
        self._stopped = False
        self._rng = streams.stream("client:images")
        self._think_rng = streams.stream("client:think")
        self._retry_rng = streams.stream("client:retry") if resilience is not None else None
        for _ in range(concurrency):
            env.process(self._worker())

    def stop(self) -> None:
        """Stop issuing new requests (in-flight ones finish)."""
        self._stopped = True

    def _worker(self):
        while not self._stopped:
            image = self.dataset.sample(self._rng)
            self.issued += 1
            if self.resilience is None:
                yield self.server.submit(image)
            else:
                yield from self._resilient_call(image)
            delay = self.think_time
            if self.think_jitter > 0:
                delay += self._think_rng.uniform(0, self.think_jitter)
            if delay > 0:
                yield self.env.timeout(delay)

    def _resilient_call(self, image):
        """One logical request: deadline-raced attempts with backoff."""
        policy = self.resilience
        enqueued_at = self.env.now
        attempt = 0
        while True:
            deadline = None
            if policy.deadline_seconds is not None:
                deadline = self.env.now + policy.deadline_seconds
            inner = self.server.submit(
                image, arrival_time=enqueued_at, deadline=deadline, attempt=attempt
            )
            if deadline is None:
                yield inner
                return
            yield inner | self.env.timeout(policy.deadline_seconds)
            if inner.triggered and not inner.value.deadline_exceeded:
                return
            # Attempt timed out (the stalled attempt drains server-side
            # and is recorded there); retry if budget remains.
            attempt += 1
            if attempt >= policy.retry.max_attempts:
                return
            self.retries += 1
            if self.metrics is not None:
                self.metrics.note_retry()
            delay = policy.retry.backoff_seconds(attempt, self._retry_rng)
            if delay > 0:
                yield self.env.timeout(delay)


class OpenLoopClient:
    """Poisson arrivals at a fixed offered rate (requests/second)."""

    def __init__(
        self,
        env: ExecutionBackend,
        server: InferenceServer,
        dataset: Dataset,
        rate: float,
        streams: RandomStreams,
        on_complete: Optional[Callable] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.env = env
        self.server = server
        self.dataset = dataset
        self.rate = rate
        self.issued = 0
        self.on_complete = on_complete
        self._stopped = False
        self._rng = streams.stream("client:images")
        self._arrival_rng = streams.stream("client:arrivals")
        env.process(self._generator())

    def stop(self) -> None:
        self._stopped = True

    def _generator(self):
        while not self._stopped:
            yield self.env.timeout(self._arrival_rng.expovariate(self.rate))
            if self._stopped:
                return
            image = self.dataset.sample(self._rng)
            self.issued += 1
            done = self.server.submit(image)
            if self.on_complete is not None:
                self.env.process(self._watch(done))

    def _watch(self, done):
        request = yield done
        self.on_complete(request)
