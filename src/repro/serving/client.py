"""Load generation clients.

The paper's methodology (Sec. 4.3) is *closed-loop*: a load balancer caps
the number of concurrent requests per node, so the node always has
exactly ``concurrency`` requests in flight — each completion immediately
triggers the next submission.  :class:`ClosedLoopClient` implements that;
:class:`OpenLoopClient` (Poisson arrivals) is provided for open-loop
studies and the loadgen ablation.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.server import InferenceServer
from ..sim import Environment, RandomStreams
from ..vision.datasets import Dataset

__all__ = ["ClosedLoopClient", "OpenLoopClient"]


class ClosedLoopClient:
    """Keeps exactly ``concurrency`` requests outstanding."""

    def __init__(
        self,
        env: Environment,
        server: InferenceServer,
        dataset: Dataset,
        concurrency: int,
        streams: RandomStreams,
        think_time_seconds: float = 0.0,
        think_jitter_seconds: float = 0.0,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if think_time_seconds < 0 or think_jitter_seconds < 0:
            raise ValueError("think time must be >= 0")
        self.env = env
        self.server = server
        self.dataset = dataset
        self.concurrency = concurrency
        self.think_time = think_time_seconds
        self.think_jitter = think_jitter_seconds
        self.issued = 0
        self._stopped = False
        self._rng = streams.stream("client:images")
        self._think_rng = streams.stream("client:think")
        for _ in range(concurrency):
            env.process(self._worker())

    def stop(self) -> None:
        """Stop issuing new requests (in-flight ones finish)."""
        self._stopped = True

    def _worker(self):
        while not self._stopped:
            image = self.dataset.sample(self._rng)
            self.issued += 1
            yield self.server.submit(image)
            delay = self.think_time
            if self.think_jitter > 0:
                delay += self._think_rng.uniform(0, self.think_jitter)
            if delay > 0:
                yield self.env.timeout(delay)


class OpenLoopClient:
    """Poisson arrivals at a fixed offered rate (requests/second)."""

    def __init__(
        self,
        env: Environment,
        server: InferenceServer,
        dataset: Dataset,
        rate: float,
        streams: RandomStreams,
        on_complete: Optional[Callable] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.env = env
        self.server = server
        self.dataset = dataset
        self.rate = rate
        self.issued = 0
        self.on_complete = on_complete
        self._stopped = False
        self._rng = streams.stream("client:images")
        self._arrival_rng = streams.stream("client:arrivals")
        env.process(self._generator())

    def stop(self) -> None:
        self._stopped = True

    def _generator(self):
        while not self._stopped:
            yield self.env.timeout(self._arrival_rng.expovariate(self.rate))
            if self._stopped:
                return
            image = self.dataset.sample(self._rng)
            self.issued += 1
            done = self.server.submit(image)
            if self.on_complete is not None:
                self.env.process(self._watch(done))

    def _watch(self, done):
        request = yield done
        self.on_complete(request)
