"""Request-level resilience: deadlines, retries, shedding, circuit breaking.

Production serving is defined by how it behaves when nodes stall or
crash — the regime the paper's healthy testbed never enters.  This
module holds the policy objects and the circuit-breaker state machine
used by :class:`~repro.serving.fleet.LoadBalancer` and the clients:

- **deadlines**: a request that does not complete within
  ``deadline_seconds`` of dispatch counts as a timeout, not a success,
  bounding tail latency at the cost of goodput;
- **retries**: failed attempts are retried with exponential backoff and
  deterministic jitter (drawn from a named
  :class:`~repro.sim.RandomStreams` stream, so the same seed yields the
  same retry timeline);
- **load shedding**: the balancer rejects new work outright once its
  backlog exceeds ``max_backlog`` (admission control);
- **circuit breaking**: a per-node breaker ejects nodes after
  consecutive failures and later lets a limited number of probes
  through (closed → open → half-open → closed).

Everything here is plain state driven by the caller's clock; nothing
spawns simulation processes, so a ``None`` policy is exactly zero-cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional

__all__ = [
    "RetryPolicy",
    "BreakerPolicy",
    "ResiliencePolicy",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


@dataclass(frozen=True, kw_only=True)
class RetryPolicy:
    """Exponential backoff with bounded jitter.

    Attempt ``k`` (first retry is ``k=1``) backs off
    ``min(backoff_max_seconds, base * multiplier**(k-1))`` plus a
    uniform jitter in ``[0, jitter_seconds)``.
    """

    #: Total attempts including the first try (1 disables retries).
    max_attempts: int = 3
    backoff_base_seconds: float = 2e-3
    backoff_multiplier: float = 2.0
    backoff_max_seconds: float = 0.25
    jitter_seconds: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_seconds < 0 or self.backoff_max_seconds < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1.0")
        if self.jitter_seconds < 0:
            raise ValueError("jitter_seconds must be >= 0")

    def backoff_seconds(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Delay before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.backoff_max_seconds,
            self.backoff_base_seconds * self.backoff_multiplier ** (attempt - 1),
        )
        if rng is not None and self.jitter_seconds > 0:
            delay += rng.uniform(0, self.jitter_seconds)
        return delay

    def schedule(self, rng: Optional[random.Random] = None) -> List[float]:
        """The full backoff timeline for a request that keeps failing."""
        return [self.backoff_seconds(k, rng) for k in range(1, self.max_attempts)]


@dataclass(frozen=True, kw_only=True)
class BreakerPolicy:
    """Circuit-breaker thresholds."""

    #: Consecutive failures that open the breaker.
    failure_threshold: int = 5
    #: Time the breaker stays open before probing the node again.
    recovery_seconds: float = 0.5
    #: Concurrent probe requests admitted while half-open.
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.recovery_seconds <= 0:
            raise ValueError("recovery_seconds must be positive")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


@dataclass(frozen=True, kw_only=True)
class ResiliencePolicy:
    """The complete request-resilience configuration of a deployment."""

    #: Per-attempt completion deadline, measured from dispatch; ``None``
    #: disables deadline enforcement (and therefore retries on timeout).
    deadline_seconds: Optional[float] = 0.25
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Balancer backlog depth beyond which new requests are shed;
    #: ``None`` disables admission control.
    max_backlog: Optional[int] = None
    #: Per-node circuit breaker; ``None`` disables breaking.
    breaker: Optional[BreakerPolicy] = field(default_factory=BreakerPolicy)

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive or None")
        if self.max_backlog is not None and self.max_backlog < 1:
            raise ValueError("max_backlog must be >= 1 or None")

    def with_overrides(self, **kwargs) -> "ResiliencePolicy":
        """Copy with fields replaced."""
        return replace(self, **kwargs)


class CircuitBreaker:
    """Per-node failure ejection with half-open recovery probes.

    State machine:

    - **closed**: requests flow; ``failure_threshold`` consecutive
      failures trip it open.
    - **open**: no requests for ``recovery_seconds``; then the next
      ``allows()`` call transitions to half-open.
    - **half-open**: up to ``half_open_probes`` in-flight probes; one
      success closes the breaker, one failure re-opens it.
    """

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.probes_in_flight = 0
        # Diagnostics
        self.open_transitions = 0

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.state} failures={self.consecutive_failures}>"

    def allows(self, now: float) -> bool:
        """Whether a request may be routed to this node right now."""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            assert self.opened_at is not None
            if now - self.opened_at >= self.policy.recovery_seconds:
                self.state = BREAKER_HALF_OPEN
                self.probes_in_flight = 0
                return True
            return False
        # half-open
        return self.probes_in_flight < self.policy.half_open_probes

    def note_dispatch(self) -> None:
        """Register that a request was actually routed here."""
        if self.state == BREAKER_HALF_OPEN:
            self.probes_in_flight += 1

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_CLOSED
            self.probes_in_flight = 0
            self.opened_at = None

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == BREAKER_HALF_OPEN or (
            self.state == BREAKER_CLOSED
            and self.consecutive_failures >= self.policy.failure_threshold
        ):
            self.state = BREAKER_OPEN
            self.opened_at = now
            self.probes_in_flight = 0
            self.open_transitions += 1
