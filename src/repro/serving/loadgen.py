"""Arrival processes for open-loop load generation.

Real serving load is not constant-rate Poisson: request rates burst
(feed refreshes, batch uploads) and swing diurnally.  These processes
plug into :class:`PatternedClient`, which drives an
:class:`~repro.core.server.InferenceServer` (or a
:class:`~repro.serving.fleet.Fleet`) with time-varying offered load —
the regime where dynamic batching and queue sizing earn their keep.
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING, Callable, Optional, Tuple

from ..kernel import ExecutionBackend, RandomStreams
from ..vision.datasets import Dataset

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..workload.source import ArrivalSource

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "PatternedClient",
    "WorkloadClient",
]


class ArrivalProcess:
    """Generates inter-arrival times; may depend on simulated time.

    ``idle_repoll_seconds`` is how long the process sleeps before
    re-examining the rate when :meth:`rate_at` reports zero (or a
    negative value): smaller values react faster to a rate resuming,
    at the cost of more wake-ups during idle stretches.
    """

    def __init__(self, idle_repoll_seconds: float = 0.1) -> None:
        if idle_repoll_seconds <= 0:
            raise ValueError(
                f"idle_repoll_seconds must be positive, got {idle_repoll_seconds}"
            )
        self.idle_repoll_seconds = idle_repoll_seconds

    def rate_at(self, now: float) -> float:
        """Instantaneous offered rate (requests/second) at ``now``."""
        raise NotImplementedError

    def next_interval(self, now: float, rng: random.Random) -> float:
        """Time until the next arrival, sampled at ``now``."""
        interval, _ = self.wait(now, rng)
        return interval

    def wait(self, now: float, rng: random.Random) -> Tuple[float, bool]:
        """``(interval, is_arrival)``: how long to sleep, and whether an
        arrival fires when the sleep ends.

        During zero-rate stretches the client must wake up to re-check
        the rate *without emitting a request* — ``is_arrival=False``
        marks those re-polls (a re-poll that submitted would inject one
        spurious request per ``idle_repoll_seconds`` of idle time).
        """
        rate = self.rate_at(now)
        if rate <= 0:
            return self.idle_repoll_seconds, False  # idle: re-examine later
        return rng.expovariate(rate), True


class PoissonArrivals(ArrivalProcess):
    """Constant-rate Poisson arrivals."""

    def __init__(self, rate: float, idle_repoll_seconds: float = 0.1) -> None:
        super().__init__(idle_repoll_seconds)
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate

    def rate_at(self, now: float) -> float:
        return self.rate


class BurstyArrivals(ArrivalProcess):
    """Two-state (Markov-modulated) arrivals: base rate with bursts.

    The process alternates deterministically between a base period and
    a burst period (deterministic phases keep experiments reproducible
    and make burst effects easy to localize in time).
    """

    def __init__(
        self,
        base_rate: float,
        burst_rate: float,
        base_seconds: float = 1.0,
        burst_seconds: float = 0.2,
        idle_repoll_seconds: float = 0.1,
    ) -> None:
        super().__init__(idle_repoll_seconds)
        if base_rate <= 0 or burst_rate <= 0:
            raise ValueError("rates must be positive")
        if burst_rate <= base_rate:
            raise ValueError("burst_rate must exceed base_rate")
        if base_seconds <= 0 or burst_seconds <= 0:
            raise ValueError("phase durations must be positive")
        self.base_rate = base_rate
        self.burst_rate = burst_rate
        self.base_seconds = base_seconds
        self.burst_seconds = burst_seconds

    @property
    def mean_rate(self) -> float:
        period = self.base_seconds + self.burst_seconds
        return (
            self.base_rate * self.base_seconds + self.burst_rate * self.burst_seconds
        ) / period

    def rate_at(self, now: float) -> float:
        period = self.base_seconds + self.burst_seconds
        phase = now % period
        return self.base_rate if phase < self.base_seconds else self.burst_rate


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal rate swing (a day compressed to ``period_seconds``)."""

    def __init__(self, mean_rate: float, swing: float = 0.5, period_seconds: float = 60.0,
                 idle_repoll_seconds: float = 0.1) -> None:
        super().__init__(idle_repoll_seconds)
        if mean_rate <= 0:
            raise ValueError("mean_rate must be positive")
        if not 0 <= swing < 1:
            raise ValueError("swing must be in [0, 1)")
        if period_seconds <= 0:
            raise ValueError("period must be positive")
        self.mean_rate = mean_rate
        self.swing = swing
        self.period_seconds = period_seconds

    def rate_at(self, now: float) -> float:
        phase = 2 * math.pi * now / self.period_seconds
        return self.mean_rate * (1 + self.swing * math.sin(phase))


class PatternedClient:
    """Open-loop client driven by an :class:`ArrivalProcess`."""

    def __init__(
        self,
        env: ExecutionBackend,
        server,  # anything with .submit(image) -> Event
        dataset: Dataset,
        arrivals: ArrivalProcess,
        streams: RandomStreams,
        on_complete: Optional[Callable] = None,
    ) -> None:
        self.env = env
        self.server = server
        self.dataset = dataset
        self.arrivals = arrivals
        self.on_complete = on_complete
        self.issued = 0
        self._stopped = False
        self._rng = streams.stream("patterned:images")
        self._arrival_rng = streams.stream("patterned:arrivals")
        env.process(self._generator())

    def stop(self) -> None:
        self._stopped = True

    def _generator(self):
        while not self._stopped:
            interval, is_arrival = self.arrivals.wait(self.env.now, self._arrival_rng)
            yield self.env.timeout(interval)
            if self._stopped:
                return
            if not is_arrival:
                continue  # idle re-poll: the rate was zero, nothing arrives
            self.issued += 1
            done = self.server.submit(self.dataset.sample(self._rng))
            if self.on_complete is not None:
                self.env.process(self._watch(done))

    def _watch(self, done):
        request = yield done
        self.on_complete(request)


class WorkloadClient:
    """Open-loop client driven by a :class:`~repro.workload.source.ArrivalSource`.

    The successor to :class:`PatternedClient` and
    :class:`~repro.serving.client.OpenLoopClient`: one client for every
    arrival shape (constant, diurnal, flash crowd, sessions, trace
    replay).  The source streams lazily — a synthesized 24h day or a
    100M-event trace never materializes a schedule in memory — and only
    reports *actual* arrivals, so bursty gaps cost no idle re-polls and
    can never emit spurious requests.

    Each submission is stamped with the source's phase label, which
    flows onto the request (per-phase metrics, Perfetto span args).
    ``on_exhausted`` fires when a bounded source (duration or trace end)
    runs dry, letting the experiment controller stop early.
    """

    def __init__(
        self,
        env: ExecutionBackend,
        server,  # anything with .submit(image, phase=...) -> Event
        source: "ArrivalSource",
        on_complete: Optional[Callable] = None,
        on_exhausted: Optional[Callable] = None,
    ) -> None:
        self.env = env
        self.server = server
        self.source = source
        self.on_complete = on_complete
        self.on_exhausted = on_exhausted
        self.issued = 0
        self.exhausted = False
        self._stopped = False
        env.process(self._generator())

    def stop(self) -> None:
        self._stopped = True

    def _generator(self):
        while not self._stopped:
            interval = self.source.next_interval(self.env.now)
            if interval is None:
                self.exhausted = True
                if self.on_exhausted is not None:
                    self.on_exhausted()
                return
            yield self.env.timeout(interval)
            if self._stopped:
                return
            image = self.source.next_image()
            self.issued += 1
            done = self.server.submit(image, phase=self.source.last_phase)
            if self.on_complete is not None:
                self.env.process(self._watch(done))

    def _watch(self, done):
        request = yield done
        self.on_complete(request)
