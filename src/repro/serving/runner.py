"""Experiment runner: build platform + server + clients, run, collect.

Every experiment in the paper reduces to: construct a
:class:`~repro.hardware.platform.ServerNode`, deploy an
:class:`~repro.core.server.InferenceServer` with some
:class:`~repro.core.config.ServerConfig`, drive it closed-loop at some
concurrency with some image dataset, discard a warm-up prefix, and
measure a window.  :func:`run_experiment` does exactly that and returns
a :class:`RunResult` with throughput, latency statistics, per-span
breakdowns, and per-image energy.

The run scaffolding every experiment shares — environment/node/collector
construction, the warm-up/measure completion observer, the controller
process that snapshots energy and arms the measurement window, and the
post-run utilization arithmetic — lives in :class:`RunSession`.  A
session is clock-agnostic: pass ``backend=AsyncioBackend(...)`` to any
runner and the identical policy stack executes against the wall clock
(``repro.live`` uses this for trace replay through the live stack).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, Optional

from ..core.config import ServerConfig
from ..core.metrics import MetricsCollector, RunMetrics
from ..core.server import InferenceServer
from ..hardware.calibration import DEFAULT_CALIBRATION, Calibration
from ..hardware.platform import ServerNode
from ..hardware.power import DeviceEnergy, EnergySnapshot
from ..kernel import (
    ExecutionBackend,
    RandomStreams,
    VirtualTimeBackend,
    resolve_scheduler,
    run_until,
)
from ..telemetry import TelemetryConfig, TelemetrySession
from ..vision.datasets import Dataset, reference_dataset
from ..workload import Workload
from .client import ClosedLoopClient
from .loadgen import WorkloadClient
from .resilience import ResiliencePolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..faults import FaultPlan

__all__ = [
    "ExperimentConfig",
    "RunResult",
    "RunSession",
    "run_experiment",
    "run_face_pipeline",
    "run_open_loop",
]


@dataclass(frozen=True, kw_only=True)
class ExperimentConfig:
    """One serving experiment: platform, deployment, and load."""

    server: ServerConfig = field(default_factory=ServerConfig)
    dataset: Optional[Dataset] = None  # defaults to the medium reference image
    #: Unified traffic spec (:class:`repro.workload.Workload`).  Its
    #: dataset takes precedence over ``dataset``; open-loop runners
    #: additionally draw arrival timing from it (closed-loop load is set
    #: by ``concurrency``, so only the popularity component applies).
    workload: Optional[Workload] = None
    concurrency: int = 64
    gpu_count: int = 1
    calibration: Calibration = DEFAULT_CALIBRATION
    seed: int = 0
    warmup_requests: int = 300
    measure_requests: int = 2000
    #: Hard wall on simulated seconds (guards mis-configured runs).
    max_sim_seconds: float = 600.0
    #: Client think-time jitter; breaks arrival synchronization so tail
    #: latencies are meaningful (real clients are never lock-stepped).
    think_jitter_seconds: float = 0.0
    #: Optional callback invoked with every completed request (e.g. a
    #: :class:`~repro.analysis.tracing.TraceCollector`).
    on_complete: Optional[Callable] = None
    #: Client-side deadlines/retries; ``None`` leaves the submit path
    #: untouched (fault-free runs are bit-identical).
    resilience: Optional[ResiliencePolicy] = None
    #: Fault plan injected into the node; ``None`` injects nothing.
    faults: Optional["FaultPlan"] = None
    #: Observability: span tracing, metrics registry, SLO tracking.
    #: ``None`` (or ``enabled=False``) records nothing; either way the
    #: simulated results are identical.
    telemetry: Optional[TelemetryConfig] = None
    #: DES queue core: ``"heap"`` or ``"calendar"`` (``None`` defers to
    #: the ``REPRO_SCHEDULER`` environment variable, then the default).
    #: Results are bit-identical under either core; this only selects
    #: the dispatch data structure.  Ignored when an explicit
    #: ``backend=`` is handed to the runner.
    scheduler: Optional[str] = None

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.gpu_count < 1:
            raise ValueError(f"gpu_count must be >= 1, got {self.gpu_count}")
        if self.warmup_requests < 0 or self.measure_requests < 1:
            raise ValueError("warmup_requests must be >= 0 and measure_requests >= 1")
        if self.max_sim_seconds <= 0:
            raise ValueError("max_sim_seconds must be positive")
        if self.think_jitter_seconds < 0:
            raise ValueError("think_jitter_seconds must be >= 0")
        if self.scheduler is not None:
            resolve_scheduler(self.scheduler)  # raises on unknown names
        if self.workload is not None:
            self.workload.validate()

    def validate(self) -> "ExperimentConfig":
        """Re-run field validation (useful after deserialization)."""
        self.__post_init__()
        return self

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Copy with fields replaced."""
        return replace(self, **kwargs)

    def with_(self, **kwargs) -> "ExperimentConfig":
        """Deprecated alias of :meth:`with_overrides`."""
        warnings.warn(
            "ExperimentConfig.with_() is deprecated; use with_overrides()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.with_overrides(**kwargs)


@dataclass(frozen=True)
class RunResult:
    """Everything measured in one experiment."""

    config: ExperimentConfig
    metrics: RunMetrics
    energy: Dict[str, DeviceEnergy]
    cpu_utilization: float
    gpu_utilization: float  # mean across GPUs
    #: Faults injected during the run (0 for fault-free experiments).
    fault_count: int = 0
    #: The run's :class:`~repro.telemetry.session.TelemetrySession`
    #: (registry + tracer + SLO state), or ``None`` when telemetry was
    #: disabled.  Excluded from equality: two runs are the same run if
    #: they measured the same things.
    telemetry: Optional[TelemetrySession] = field(default=None, compare=False)

    def to_dict(self) -> Dict[str, object]:
        """Flat dict of the run's measurements (see
        :func:`repro.analysis.export.result_to_dict`)."""
        from ..analysis.export import result_to_dict

        return result_to_dict(self)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"throughput={self.throughput:.1f}/s "
            f"mean={self.mean_latency * 1e3:.1f}ms p99={self.p99_latency * 1e3:.1f}ms "
            f"cpu={self.cpu_utilization:.0%} gpu={self.gpu_utilization:.0%}"
        )

    @property
    def throughput(self) -> float:
        return self.metrics.throughput

    @property
    def mean_latency(self) -> float:
        return self.metrics.latency.mean

    @property
    def p99_latency(self) -> float:
        return self.metrics.latency.p99

    @property
    def cpu_joules_per_image(self) -> float:
        return self.energy["cpu"].total_joules / self.metrics.completed

    @property
    def gpu_joules_per_image(self) -> float:
        total = sum(e.total_joules for name, e in self.energy.items() if name != "cpu")
        return total / self.metrics.completed

    @property
    def joules_per_image(self) -> float:
        return self.cpu_joules_per_image + self.gpu_joules_per_image


def _open_session(
    telemetry: Optional[TelemetryConfig], env: ExecutionBackend
) -> Optional[TelemetrySession]:
    """Create the run's telemetry session, or ``None`` when disabled."""
    if telemetry is None or not telemetry.enabled:
        return None
    return TelemetrySession(telemetry, env=env)


def _closed_loop_dataset(config: ExperimentConfig, default: Dataset) -> Dataset:
    """Dataset for a closed-loop run: workload > config.dataset > default."""
    if config.workload is not None:
        return config.workload.resolved_dataset(
            config.dataset if config.dataset is not None else default)
    return config.dataset if config.dataset is not None else default


class RunSession:
    """Shared scaffolding for one measured serving run.

    Owns the pieces every runner previously copy-pasted: the execution
    backend, RNG streams, the :class:`ServerNode`, the metrics
    collector, the optional telemetry session, the warm-up/measurement
    completion events, the controller process (energy snapshots +
    collector arm/disarm + client stop), and the post-run
    energy/utilization arithmetic.  Construction order matches the
    historical runners exactly, so DES runs are bit-identical.

    The session never inspects the backend's clock: handed a
    :class:`~repro.kernel.AsyncioBackend` it drives the same stack on
    the wall clock (``run_until`` picks the right dispatch loop).
    """

    def __init__(
        self,
        *,
        seed: int,
        calibration: Calibration,
        gpu_count: int,
        telemetry: Optional[TelemetryConfig] = None,
        backend: Optional[ExecutionBackend] = None,
        scheduler: Optional[str] = None,
    ) -> None:
        self.env: ExecutionBackend = (
            backend if backend is not None else VirtualTimeBackend(scheduler=scheduler)
        )
        self.streams = RandomStreams(seed)
        self.node = ServerNode(self.env, calibration, gpu_count=gpu_count)
        self.collector = MetricsCollector()
        self.session = _open_session(telemetry, self.env)
        self.warmup_done = self.env.event()
        self.measure_done = self.env.event()
        self.completed = 0
        self.client = None
        self._snapshots: Dict[str, EnergySnapshot] = {}

    # -- completion stream -------------------------------------------------

    def completion_observer(
        self,
        warmup_target: int,
        total_target: int,
        after: Optional[Callable] = None,
    ) -> Callable:
        """The ``on_complete`` callback shared by all runners.

        Counts completions, fires the warm-up/measurement events at
        their targets, feeds telemetry, then invokes ``after`` (the
        runner-specific tail: user callbacks, exhaustion checks).
        """

        def on_complete(request) -> None:
            self.completed += 1
            if self.completed == warmup_target and not self.warmup_done.triggered:
                self.warmup_done.succeed()
            elif self.completed == total_target and not self.measure_done.triggered:
                self.measure_done.succeed()
            if self.session is not None:
                self.session.observe_completion(request, self.env.now)
            if after is not None:
                after(request)

        return on_complete

    def arm_immediately(self) -> None:
        """Open the measurement window at t=0 (no warm-up phase)."""
        if not self.warmup_done.triggered:
            self.warmup_done.succeed()

    # -- the measured run --------------------------------------------------

    def _controller(self, max_sim_seconds: float):
        env = self.env
        yield self.warmup_done | env.timeout(max_sim_seconds)
        self._snapshots["start"] = self.node.energy.snapshot(env.now)
        self.collector.arm(env.now)
        yield self.measure_done | env.timeout(max_sim_seconds)
        self.collector.disarm(env.now)
        self._snapshots["end"] = self.node.energy.snapshot(env.now)
        if self.client is not None:
            self.client.stop()

    def execute(self, client, max_sim_seconds: float) -> None:
        """Run warm-up + measurement to completion under either clock."""
        self.client = client
        done = self.env.process(self._controller(max_sim_seconds))
        run_until(self.env, done)

    # -- post-run accounting -----------------------------------------------

    def finalize_metrics(self, cache=None) -> RunMetrics:
        """Window metrics, with run-global cache counters in extras."""
        metrics = self.collector.finalize()
        if cache is not None:
            # Run-global cache counters ride along in extras (window-gated
            # per-tier hit counts live in metrics.cache_hits).
            metrics = replace(metrics, extras={**metrics.extras, **cache.stats_dict()})
        return metrics

    def energy_window(self) -> Dict[str, DeviceEnergy]:
        return self.node.energy.energy_between(
            self._snapshots["start"], self._snapshots["end"]
        )

    def utilization(self, window: float) -> tuple:
        """(cpu_util, mean gpu_util) over the measurement window."""
        start = self._snapshots["start"]
        end = self._snapshots["end"]
        cpu_busy = end.busy["cpu"] - start.busy["cpu"]
        gpu_busy = [end.busy[gpu.name] - start.busy[gpu.name] for gpu in self.node.gpus]
        cpu_util = (
            min(1.0, cpu_busy / (self.node.cpu.core_count * window)) if window > 0 else 0.0
        )
        gpu_util = (
            sum(min(1.0, b / window) for b in gpu_busy) / len(gpu_busy)
            if window > 0
            else 0.0
        )
        return cpu_util, gpu_util

    def result(
        self,
        config: ExperimentConfig,
        *,
        cache=None,
        fault_count: int = 0,
    ) -> RunResult:
        """Assemble the :class:`RunResult` and finalize telemetry."""
        metrics = self.finalize_metrics(cache)
        energy = self.energy_window()
        cpu_util, gpu_util = self.utilization(metrics.window_seconds)
        if self.session is not None:
            self.session.finalize(self.env.now)
        return RunResult(
            config=config,
            metrics=metrics,
            energy=energy,
            cpu_utilization=cpu_util,
            gpu_utilization=gpu_util,
            fault_count=fault_count,
            telemetry=self.session,
        )


def run_experiment(
    config: ExperimentConfig,
    *,
    workload: Optional[Workload] = None,
    backend: Optional[ExecutionBackend] = None,
) -> RunResult:
    """Simulate one experiment and return its measurements.

    ``workload`` (equivalently ``config.workload``) supplies the request
    mix — a closed-loop run draws its images/popularity from it, while
    load intensity stays set by ``config.concurrency``.  ``backend``
    selects the execution clock (default: deterministic virtual time).
    """
    if workload is not None:
        config = config.with_overrides(workload=workload)
    run = RunSession(
        seed=config.seed,
        calibration=config.calibration,
        gpu_count=config.gpu_count,
        telemetry=config.telemetry,
        backend=backend,
        scheduler=config.scheduler,
    )
    env = run.env

    on_complete = run.completion_observer(
        config.warmup_requests,
        config.warmup_requests + config.measure_requests,
        after=config.on_complete,
    )
    server = InferenceServer(
        env, run.node, config.server, metrics=run.collector, on_complete=on_complete
    )
    if run.session is not None:
        run.session.attach_server(server)
        run.session.start()
    dataset = _closed_loop_dataset(config, reference_dataset("medium"))
    client = ClosedLoopClient(
        env,
        server,
        dataset,
        concurrency=config.concurrency,
        streams=run.streams,
        think_jitter_seconds=config.think_jitter_seconds,
        resilience=config.resilience,
        metrics=run.collector,
    )

    injector = None
    if config.faults is not None and config.faults.enabled:
        from ..faults.injector import FaultInjector

        injector = FaultInjector(env, run.streams, config.faults)
        injector.attach_node(run.node)
        injector.start()
        if run.session is not None:
            injector.register_metrics(run.session.registry)

    run.execute(client, config.max_sim_seconds)
    return run.result(
        config,
        cache=server.cache,
        fault_count=injector.fault_count if injector is not None else 0,
    )


def run_face_pipeline(
    pipeline_config,
    concurrency: int = 96,
    gpu_count: int = 1,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
    warmup_requests: int = 150,
    measure_requests: int = 1200,
    max_sim_seconds: float = 600.0,
    think_jitter_seconds: float = 2e-3,
    frame_dataset: Optional[Dataset] = None,
    telemetry: Optional[TelemetryConfig] = None,
    *,
    workload: Optional[Workload] = None,
    backend: Optional[ExecutionBackend] = None,
    scheduler: Optional[str] = None,
) -> RunResult:
    """Simulate the multi-DNN face pipeline (paper Sec. 4.7 / Fig. 11).

    Same measurement protocol as :func:`run_experiment`, but the server
    is a :class:`~repro.apps.face_pipeline.FacePipeline` fed with video
    frames instead of a single-model classification deployment.

    Frames come from ``workload`` (its dataset component; closed-loop
    load is set by ``concurrency``).  The legacy ``frame_dataset=``
    kwarg is a deprecated shim for ``workload=Workload.constant(...,
    dataset=frame_dataset)``.
    """
    # Imported here to avoid a circular import (apps imports serving).
    from ..apps.face_pipeline import FacePipeline
    from ..vision.datasets import VideoFrameDataset

    if frame_dataset is not None:
        warnings.warn(
            "run_face_pipeline(frame_dataset=...) is deprecated; pass "
            "workload=Workload.constant(rate, dataset=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        if workload is not None:
            raise ValueError("pass either workload= or frame_dataset=, not both")

    run = RunSession(
        seed=seed,
        calibration=calibration,
        gpu_count=gpu_count,
        telemetry=telemetry,
        backend=backend,
        scheduler=scheduler,
    )
    env = run.env

    on_complete = run.completion_observer(
        warmup_requests, warmup_requests + measure_requests
    )
    pipeline = FacePipeline(
        env, run.node, pipeline_config, run.streams,
        metrics=run.collector, on_complete=on_complete,
    )
    if run.session is not None:
        run.session.attach_pipeline(pipeline)
        run.session.start()
    if frame_dataset is not None:
        dataset = frame_dataset
    elif workload is not None:
        dataset = workload.resolved_dataset(VideoFrameDataset())
    else:
        dataset = VideoFrameDataset()
    client = ClosedLoopClient(
        env,
        pipeline,
        dataset,
        concurrency=concurrency,
        streams=run.streams,
        think_jitter_seconds=think_jitter_seconds,
    )

    run.execute(client, max_sim_seconds)

    experiment = ExperimentConfig(
        workload=workload,
        concurrency=concurrency,
        gpu_count=gpu_count,
        calibration=calibration,
        seed=seed,
        warmup_requests=warmup_requests,
        measure_requests=measure_requests,
        max_sim_seconds=max_sim_seconds,
        think_jitter_seconds=think_jitter_seconds,
    )
    return run.result(experiment)


def run_open_loop(
    config: ExperimentConfig,
    offered_rate: Optional[float] = None,
    *,
    workload: Optional[Workload] = None,
    backend: Optional[ExecutionBackend] = None,
) -> RunResult:
    """Open-loop variant of :func:`run_experiment`.

    Arrival timing comes from ``workload`` (or ``config.workload``):
    constant Poisson, diurnal curves, flash crowds, per-user sessions,
    or trace replay.  The legacy ``offered_rate=`` argument is a
    deprecated shim mapping onto ``Workload.constant(offered_rate)`` —
    the RNG draws are bit-identical, plus a ``DeprecationWarning``.

    Under open-loop load at a rate below capacity, a *fixed-batch*
    server exhibits long batch-fill waits that dominate tail latency —
    the regime in which the paper observes dynamic batching improving
    p99 from 55 ms to 38 ms (Sec. 2.3) at a small throughput cost.

    ``backend=AsyncioBackend(...)`` replays the same workload through
    the identical stack on the wall clock (see ``repro.live.replay``).
    """
    resolved = workload if workload is not None else config.workload
    if resolved is None:
        if offered_rate is None:
            raise ValueError("pass a workload= (or the legacy offered_rate=)")
        warnings.warn(
            "run_open_loop(config, offered_rate) is deprecated; pass "
            "workload=Workload.constant(offered_rate)",
            DeprecationWarning,
            stacklevel=2,
        )
        resolved = Workload.constant(offered_rate, dataset=config.dataset)
    elif offered_rate is not None:
        raise ValueError("pass either workload= or the legacy offered_rate=, not both")
    resolved.validate()

    run = RunSession(
        seed=config.seed,
        calibration=config.calibration,
        gpu_count=config.gpu_count,
        telemetry=config.telemetry,
        backend=backend,
        scheduler=config.scheduler,
    )
    env = run.env

    if config.warmup_requests == 0:
        run.arm_immediately()  # measurement window arms at t=0

    def finish_if_exhausted(_request=None):
        # A bounded workload (duration or trace end) may run dry before
        # the completion targets are hit; once every issued request has
        # completed, waiting out max_sim_seconds would only pad the
        # measurement window with dead air.
        if not client.exhausted or run.completed < client.issued:
            return
        if not run.warmup_done.triggered:
            run.warmup_done.succeed()
        if not run.measure_done.triggered:
            run.measure_done.succeed()

    on_complete = run.completion_observer(
        config.warmup_requests,
        config.warmup_requests + config.measure_requests,
        after=finish_if_exhausted,
    )
    server = InferenceServer(
        env, run.node, config.server, metrics=run.collector, on_complete=on_complete
    )
    if run.session is not None:
        run.session.attach_server(server)
        run.session.start()
    default_dataset = (
        config.dataset if config.dataset is not None else reference_dataset("medium")
    )
    source = resolved.source(run.streams, prefix="client",
                             default_dataset=default_dataset)
    if run.session is not None and source.model is not None:
        model = source.model
        run.session.registry.gauge_fn(
            "repro_workload_offered_rate",
            "Instantaneous workload arrival rate (requests/second)",
            lambda: model.rate_at(env.now),
        )
    client = WorkloadClient(env, server, source, on_exhausted=finish_if_exhausted)

    run.execute(client, config.max_sim_seconds)
    return run.result(config, cache=server.cache)
