"""Reactive fleet autoscaling (closing the loop on paper Sec. 2.1).

"In instances where incoming requests exceed the system's predefined
capacity, additional servers are added to maintain performance."  The
:class:`AutoscaledFleet` starts with a node pool, activates a subset,
and a controller loop grows/shrinks the active set from the observed
per-node outstanding load — the standard target-utilization policy.

Simulated node "provisioning" takes ``provision_delay_seconds`` (boot +
model load + TensorRT engine warm-up), which is what makes bursty load
interesting: capacity arrives *late*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.config import ServerConfig
from ..core.metrics import MetricsCollector
from ..core.request import OUTCOME_SHED, InferenceRequest
from ..core.server import InferenceServer
from ..hardware.calibration import DEFAULT_CALIBRATION, Calibration
from ..hardware.platform import ServerNode
from ..kernel import Event, ExecutionBackend, Store

__all__ = ["AutoscalerPolicy", "AutoscaledFleet", "ScalingEvent"]


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Target-load scaling policy."""

    #: Per-node outstanding requests the controller aims for.
    target_outstanding_per_node: float = 256.0
    #: Scale out when observed/target exceeds this factor...
    scale_out_threshold: float = 1.25
    #: ...and in when it falls below this factor.
    scale_in_threshold: float = 0.5
    #: Controller evaluation period.
    interval_seconds: float = 0.25
    #: Boot + model load + engine warm-up before a node takes traffic.
    provision_delay_seconds: float = 2.0
    #: Minimum time between scaling actions (anti-flapping).
    cooldown_seconds: float = 1.0
    #: Hard per-node in-flight cap (the paper's load-balancer cap);
    #: excess requests wait in the balancer backlog.
    per_node_cap: int = 512
    #: Active-set bounds.
    min_nodes: int = 1
    max_nodes: int = 8
    #: Shed new requests once the balancer backlog reaches this depth
    #: (``None`` = never shed, the original unbounded-queue behaviour).
    #: Under a flash crowd this is what bounds queueing delay while the
    #: scale-out capacity is still provisioning.
    max_backlog: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_backlog is not None and self.max_backlog < 1:
            raise ValueError("max_backlog must be >= 1 when set")
        if self.target_outstanding_per_node <= 0:
            raise ValueError("target outstanding must be positive")
        if self.scale_out_threshold <= 1.0:
            raise ValueError("scale_out_threshold must exceed 1.0")
        if not 0 < self.scale_in_threshold < 1.0:
            raise ValueError("scale_in_threshold must be in (0, 1)")
        if self.interval_seconds <= 0 or self.provision_delay_seconds < 0:
            raise ValueError("intervals must be positive")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown must be >= 0")
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ValueError("need 1 <= min_nodes <= max_nodes")
        if self.per_node_cap < 1:
            raise ValueError("per_node_cap must be >= 1")


@dataclass(frozen=True)
class ScalingEvent:
    """One controller action, for the scaling timeline."""

    at_time: float
    action: str  # "scale_out" | "scale_in"
    active_nodes: int


class AutoscaledFleet:
    """A fleet whose active node count follows the offered load."""

    def __init__(
        self,
        env: ExecutionBackend,
        server_config: ServerConfig,
        policy: AutoscalerPolicy,
        calibration: Calibration = DEFAULT_CALIBRATION,
        gpu_count: int = 1,
        metrics: Optional[MetricsCollector] = None,
        on_complete=None,
    ) -> None:
        self.env = env
        self.policy = policy
        self.metrics = metrics if metrics is not None else MetricsCollector()
        # All max_nodes nodes exist up front (simulating a warm pool);
        # "provisioning" models activation latency.
        self.servers: List[InferenceServer] = [
            InferenceServer(
                env,
                ServerNode(env, calibration, gpu_count=gpu_count),
                server_config,
                metrics=self.metrics,
                on_complete=on_complete,
            )
            for _ in range(policy.max_nodes)
        ]
        self.active_count = policy.min_nodes
        self._provisioning = 0
        self.outstanding = [0] * policy.max_nodes
        self.events: List[ScalingEvent] = []
        self.shed = 0
        self._last_action_time = -float("inf")
        self._backlog: Store = Store(env)
        env.process(self._dispatcher())
        env.process(self._controller())

    # -- public API --------------------------------------------------------------

    def submit(self, image, phase: Optional[str] = None) -> Event:
        done = self.env.event()
        if (
            self.policy.max_backlog is not None
            and self._backlog.size >= self.policy.max_backlog
        ):
            # Admission control: reject without touching any node (same
            # contract as LoadBalancer shedding).
            self.shed += 1
            self.metrics.note_shed()
            request = InferenceRequest(image, arrival_time=self.env.now,
                                       phase=phase)
            request.outcome = OUTCOME_SHED
            done.succeed(request)
            return done
        self._backlog.put((image, done, self.env.now, phase))
        return done

    @property
    def total_outstanding(self) -> int:
        return sum(self.outstanding[: self.active_count])

    def register_metrics(self, registry) -> None:
        """Publish autoscaler state as registry views (observation only)."""
        registry.gauge_fn(
            "repro_autoscaler_active_nodes",
            "Nodes currently taking traffic",
            lambda: self.active_count,
        )
        registry.gauge_fn(
            "repro_autoscaler_provisioning_nodes",
            "Nodes booting toward the active set",
            lambda: self._provisioning,
        )
        registry.gauge_fn(
            "repro_autoscaler_backlog_depth",
            "Requests waiting in the autoscaler balancer queue",
            lambda: self._backlog.size,
        )
        registry.gauge_fn(
            "repro_autoscaler_outstanding",
            "In-flight requests across the active set",
            lambda: self.total_outstanding,
        )
        registry.counter_fn(
            "repro_autoscaler_actions_total",
            "Scale-out/in actions taken by the controller",
            lambda: len(self.events),
        )
        registry.counter_fn(
            "repro_autoscaler_shed_total",
            "Requests rejected by backlog admission control",
            lambda: self.shed,
        )

    @property
    def load_factor(self) -> float:
        """Observed load per active node, relative to target.

        Includes the balancer backlog: requests held at the cap are the
        clearest over-capacity signal.
        """
        per_node = (self.total_outstanding + self._backlog.size) / self.active_count
        return per_node / self.policy.target_outstanding_per_node

    # -- internals ----------------------------------------------------------------

    def _dispatcher(self):
        cap = self.policy.per_node_cap
        while True:
            image, done, enqueued_at, phase = yield self._backlog.get()
            while True:
                index = min(
                    range(self.active_count), key=lambda i: self.outstanding[i]
                )
                if self.outstanding[index] < cap:
                    break
                # Every active node at its cap: hold the request in the
                # balancer until capacity (or a new node) appears.
                yield self.env.timeout(0.5e-3)
            self.outstanding[index] += 1
            # Backdated so balancer queueing counts in request latency.
            inner = self.servers[index].submit(image, arrival_time=enqueued_at,
                                               phase=phase)
            self.env.process(self._track(index, inner, done))

    def _track(self, index: int, inner: Event, done: Event):
        request = yield inner
        self.outstanding[index] -= 1
        done.succeed(request)

    def _controller(self):
        policy = self.policy
        while True:
            yield self.env.timeout(policy.interval_seconds)
            if self.env.now - self._last_action_time < policy.cooldown_seconds:
                continue
            factor = self.load_factor
            if (
                factor > policy.scale_out_threshold
                and self.active_count + self._provisioning < policy.max_nodes
            ):
                self._last_action_time = self.env.now
                self._provisioning += 1
                self.env.process(self._provision())
            elif factor < policy.scale_in_threshold and self.active_count > policy.min_nodes:
                # Drain-free scale-in: stop routing to the last node; its
                # in-flight requests finish via their tracked events.
                self._last_action_time = self.env.now
                self.active_count -= 1
                self.events.append(
                    ScalingEvent(self.env.now, "scale_in", self.active_count)
                )

    def _provision(self):
        yield self.env.timeout(self.policy.provision_delay_seconds)
        self._provisioning -= 1
        if self.active_count < self.policy.max_nodes:
            self.active_count += 1
            self.events.append(
                ScalingEvent(self.env.now, "scale_out", self.active_count)
            )
