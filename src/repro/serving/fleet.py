"""Multi-node serving: the load balancer of paper Sec. 2.1.

"A load balancer within the datacenter receives incoming requests and
strategically distributes them among the available processing servers
... the load balancer imposes a cap on the number of concurrent
requests each server can handle.  In instances where incoming requests
exceed the system's predefined capacity, additional servers are added."

This module implements exactly that: a :class:`Fleet` of identical
:class:`~repro.core.server.InferenceServer` nodes behind a
:class:`LoadBalancer` with pluggable dispatch policies and a per-node
concurrency cap, plus :func:`plan_capacity` — the node-count sizing
loop the paper's single-node throughput numbers exist to inform.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..core.config import ServerConfig
from ..core.metrics import MetricsCollector, RunMetrics
from ..core.request import OUTCOME_SHED, OUTCOME_TIMEOUT, InferenceRequest
from ..core.server import InferenceServer
from ..hardware.calibration import DEFAULT_CALIBRATION, Calibration
from ..hardware.platform import ServerNode
from ..kernel import Event, ExecutionBackend, RandomStreams, Store, VirtualTimeBackend
from ..vision.datasets import Dataset, reference_dataset
from .resilience import CircuitBreaker, ResiliencePolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..faults import FaultPlan
    from ..workload import Workload

__all__ = [
    "DispatchPolicy",
    "ROUND_ROBIN",
    "LEAST_OUTSTANDING",
    "LoadBalancer",
    "Fleet",
    "FleetResult",
    "run_fleet_experiment",
    "plan_capacity",
    "CapacityPlan",
]

ROUND_ROBIN = "round_robin"
LEAST_OUTSTANDING = "least_outstanding"
DispatchPolicy = str
_POLICIES = (ROUND_ROBIN, LEAST_OUTSTANDING)


class _Job:
    """One request travelling through the balancer (possibly retried)."""

    __slots__ = ("image", "done", "enqueued_at", "attempt", "phase", "trace")

    def __init__(self, image, done: Event, enqueued_at: float,
                 phase: Optional[str] = None, trace=None) -> None:
        self.image = image
        self.done = done
        self.enqueued_at = enqueued_at
        self.attempt = 0
        self.phase = phase
        self.trace = trace


class LoadBalancer:
    """Dispatches requests across nodes with a per-node concurrency cap.

    When every node is at its cap, requests wait in the balancer's own
    queue (the datacenter-level backlog the paper's model assumes gets
    absorbed by *adding servers*).

    With a :class:`~repro.serving.resilience.ResiliencePolicy` the
    balancer also enforces per-attempt deadlines (racing each dispatch
    against a timer), retries timed-out attempts with exponential
    backoff, sheds new work when its backlog exceeds ``max_backlog``,
    and ejects failing nodes behind per-node circuit breakers.  With
    ``resilience=None`` (the default) none of that machinery exists and
    the dispatch path is identical to the fault-free balancer.
    """

    def __init__(
        self,
        env: ExecutionBackend,
        servers: List[InferenceServer],
        per_node_cap: int,
        policy: DispatchPolicy = LEAST_OUTSTANDING,
        *,
        resilience: Optional[ResiliencePolicy] = None,
        streams: Optional[RandomStreams] = None,
        metrics: Optional[MetricsCollector] = None,
        node_ids: Optional[Sequence[str]] = None,
    ) -> None:
        if not servers:
            raise ValueError("fleet needs at least one server")
        if per_node_cap < 1:
            raise ValueError(f"per_node_cap must be >= 1, got {per_node_cap}")
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
        if node_ids is None:
            node_ids = tuple(str(index) for index in range(len(servers)))
        else:
            node_ids = tuple(str(node_id) for node_id in node_ids)
            if len(node_ids) != len(servers):
                raise ValueError(
                    f"{len(node_ids)} node ids for {len(servers)} servers")
            if len(set(node_ids)) != len(node_ids):
                raise ValueError(f"node ids must be unique, got {node_ids}")
        #: Stable per-node identity used for metric labels.  Defaults to
        #: the node index; a sharded cluster passes globally unique ids
        #: so two balancers sharing one registry never collide.
        self.node_ids: Tuple[str, ...] = node_ids
        self.env = env
        self.servers = servers
        self.per_node_cap = per_node_cap
        self.policy = policy
        self.resilience = resilience
        self.metrics = metrics
        self.outstanding = [0] * len(servers)
        self.dispatched = [0] * len(servers)
        #: Health flags flipped by the fault injector on node outages.
        self.node_up = [True] * len(servers)
        self.breakers: Optional[List[CircuitBreaker]] = None
        if resilience is not None and resilience.breaker is not None:
            self.breakers = [CircuitBreaker(resilience.breaker) for _ in servers]
        self._retry_rng = None
        if resilience is not None and streams is not None:
            self._retry_rng = streams.stream("balancer:retry")
        # Resilience counters (balancer's own view; the collector holds
        # the measure-window versions).
        self.timeouts = 0
        self.retries = 0
        self.shed = 0
        self._rr = itertools.cycle(range(len(servers)))
        self._backlog: Store = Store(env)
        env.process(self._dispatcher())

    @property
    def backlog_depth(self) -> int:
        return self._backlog.size

    @property
    def total_outstanding(self) -> int:
        return sum(self.outstanding)

    def set_node_up(self, index: int, up: bool) -> None:
        """Mark a node (un)healthy; used by node-outage fault injection."""
        self.node_up[index] = up

    def register_metrics(self, registry) -> None:
        """Publish balancer state as registry views (observation only)."""
        registry.gauge_fn(
            "repro_balancer_backlog_depth",
            "Requests waiting in the balancer queue",
            lambda: self.backlog_depth,
        )
        registry.counter_fn(
            "repro_balancer_timeouts_total",
            "Dispatch attempts that exceeded their deadline",
            lambda: self.timeouts,
        )
        registry.counter_fn(
            "repro_balancer_retries_total",
            "Attempts re-queued after a timeout",
            lambda: self.retries,
        )
        registry.counter_fn(
            "repro_balancer_shed_total",
            "Requests rejected by backlog admission control",
            lambda: self.shed,
        )
        for index, node_id in enumerate(self.node_ids):
            registry.gauge_fn(
                "repro_node_outstanding",
                "In-flight requests on the node",
                lambda i=index: self.outstanding[i],
                node=node_id,
            )
            registry.counter_fn(
                "repro_node_dispatched_total",
                "Requests routed to the node",
                lambda i=index: self.dispatched[i],
                node=node_id,
            )
            registry.gauge_fn(
                "repro_node_up",
                "1 when the node is healthy, 0 during an outage",
                lambda i=index: 1.0 if self.node_up[i] else 0.0,
                node=node_id,
            )
        if self.breakers is not None:
            registry.counter_fn(
                "repro_breaker_opens_total",
                "Circuit-breaker open transitions across all nodes",
                lambda: sum(b.open_transitions for b in self.breakers),
            )

    def submit(self, image, phase: Optional[str] = None, trace=None) -> Event:
        """Route one request; the returned event completes with the
        finished request (same contract as ``InferenceServer.submit``).

        ``trace`` is the distributed trace hop from the caller; the
        balancer carries it through retries so every attempt of one
        request lands in the same trace."""
        done = self.env.event()
        if (
            self.resilience is not None
            and self.resilience.max_backlog is not None
            and self._backlog.size >= self.resilience.max_backlog
        ):
            return self._shed(image, done, phase, trace)
        self._backlog.put(_Job(image, done, self.env.now, phase=phase, trace=trace))
        return done

    def _shed(self, image, done: Event, phase: Optional[str] = None,
              trace=None) -> Event:
        """Admission control: reject without touching any node."""
        self.shed += 1
        if self.metrics is not None:
            self.metrics.note_shed()
        request = InferenceRequest(image, arrival_time=self.env.now, phase=phase)
        request.trace = trace
        request.outcome = OUTCOME_SHED
        done.succeed(request)
        return done

    # -- dispatch loop -------------------------------------------------------

    def _node_available(self, index: int, now: float) -> bool:
        if not self.node_up[index]:
            return False
        if self.outstanding[index] >= self.per_node_cap:
            return False
        if self.breakers is not None and not self.breakers[index].allows(now):
            return False
        return True

    def _pick_node(self) -> Optional[int]:
        now = self.env.now
        if self.policy == ROUND_ROBIN:
            for _ in range(len(self.servers)):
                index = next(self._rr)
                if self._node_available(index, now):
                    return index
            return None
        # Least outstanding among available nodes.  This runs once per
        # dispatch, so at fleet scale it must stay a single allocation-free
        # scan: no candidate list, no min() key callable, and an early
        # exit on the first idle node (the first zero is the first
        # minimum, since every earlier available node had more in flight).
        outstanding = self.outstanding
        node_up = self.node_up
        cap = self.per_node_cap
        breakers = self.breakers
        best = None
        best_load = cap
        for index in range(len(outstanding)):
            load = outstanding[index]
            if load >= best_load or not node_up[index]:
                continue
            if breakers is not None and not breakers[index].allows(now):
                continue
            if load == 0:
                return index
            best = index
            best_load = load
        return best

    def _dispatcher(self):
        while True:
            job = yield self._backlog.get()
            while True:
                index = self._pick_node()
                if index is not None:
                    break
                # All nodes at cap (or unavailable): back off briefly.
                yield self.env.timeout(0.5e-3)
            self.outstanding[index] += 1
            self.dispatched[index] += 1
            if self.breakers is not None:
                self.breakers[index].note_dispatch()
            deadline = None
            if self.resilience is not None and self.resilience.deadline_seconds is not None:
                deadline = self.env.now + self.resilience.deadline_seconds
            # Backdated so balancer queueing (and earlier failed
            # attempts) count in request latency.
            inner = self.servers[index].submit(
                job.image, arrival_time=job.enqueued_at,
                deadline=deadline, attempt=job.attempt, phase=job.phase,
                trace=job.trace,
            )
            self.env.process(self._track(index, job, inner, deadline))

    def _track(self, index: int, job: _Job, inner: Event, deadline: Optional[float]):
        if deadline is None:
            request = yield inner
            self._settle_success(index, job, request)
            return
        yield inner | self.env.timeout(deadline - self.env.now)
        if inner.triggered:
            request = inner.value
            if request.deadline_exceeded:
                # Finished exactly at/after the deadline: the server has
                # already recorded it as a timeout; treat it likewise.
                self.outstanding[index] -= 1
                self._note_attempt_timeout(index)
                self._retry_or_fail(job)
            else:
                self._settle_success(index, job, request)
            return
        # Deadline fired with the attempt still in flight: give up on it
        # now (retry elsewhere) and release the node slot whenever the
        # stalled attempt finally drains.
        self._note_attempt_timeout(index)
        self.env.process(self._drain(index, inner))
        self._retry_or_fail(job)

    def _settle_success(self, index: int, job: _Job, request) -> None:
        self.outstanding[index] -= 1
        if self.breakers is not None:
            self.breakers[index].record_success(self.env.now)
        job.done.succeed(request)

    def _note_attempt_timeout(self, index: int) -> None:
        self.timeouts += 1
        if self.breakers is not None:
            self.breakers[index].record_failure(self.env.now)

    def _drain(self, index: int, inner: Event):
        yield inner
        self.outstanding[index] -= 1

    def _retry_or_fail(self, job: _Job) -> None:
        assert self.resilience is not None
        next_attempt = job.attempt + 1
        if next_attempt >= self.resilience.retry.max_attempts:
            # Attempt budget exhausted: fail the request to the caller.
            # (Each timed-out attempt was already recorded server-side.)
            request = InferenceRequest(job.image, arrival_time=job.enqueued_at,
                                       attempt=job.attempt, phase=job.phase)
            request.trace = job.trace
            request.outcome = OUTCOME_TIMEOUT
            job.done.succeed(request)
            return
        job.attempt = next_attempt
        self.retries += 1
        if self.metrics is not None:
            self.metrics.note_retry()
        self.env.process(self._requeue(job))

    def _requeue(self, job: _Job):
        delay = self.resilience.retry.backoff_seconds(job.attempt, self._retry_rng)
        if delay > 0:
            yield self.env.timeout(delay)
        self._backlog.put(job)


class Fleet:
    """N identical server nodes behind one load balancer."""

    def __init__(
        self,
        env: ExecutionBackend,
        node_count: int,
        server_config: ServerConfig,
        calibration: Calibration = DEFAULT_CALIBRATION,
        gpu_count: int = 1,
        per_node_cap: int = 512,
        policy: DispatchPolicy = LEAST_OUTSTANDING,
        metrics: Optional[MetricsCollector] = None,
        on_complete=None,
        resilience: Optional[ResiliencePolicy] = None,
        streams: Optional[RandomStreams] = None,
        node_ids: Optional[Sequence[str]] = None,
    ) -> None:
        if node_count < 1:
            raise ValueError(f"node_count must be >= 1, got {node_count}")
        self.env = env
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.nodes: List[ServerNode] = [
            ServerNode(env, calibration, gpu_count=gpu_count) for _ in range(node_count)
        ]
        self.servers: List[InferenceServer] = [
            InferenceServer(env, node, server_config, metrics=self.metrics,
                            on_complete=on_complete)
            for node in self.nodes
        ]
        self.balancer = LoadBalancer(
            env, self.servers, per_node_cap, policy,
            resilience=resilience, streams=streams, metrics=self.metrics,
            node_ids=node_ids,
        )

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def submit(self, image, phase: Optional[str] = None, trace=None) -> Event:
        return self.balancer.submit(image, phase=phase, trace=trace)


@dataclass(frozen=True)
class FleetResult:
    """Measurements of one fleet experiment."""

    node_count: int
    offered_rate: float
    metrics: RunMetrics
    dispatched_per_node: List[int]
    peak_backlog: int
    #: Faults injected during the run (0 for fault-free experiments).
    fault_count: int = 0
    #: Circuit-breaker open transitions across all nodes.
    breaker_opens: int = 0
    #: The run's telemetry session, or ``None`` when disabled.
    telemetry: Optional[object] = field(default=None, compare=False)

    def to_dict(self) -> Dict[str, object]:
        """Flat dict of the fleet measurements (see
        :func:`repro.analysis.export.result_to_dict`)."""
        from ..analysis.export import result_to_dict

        return result_to_dict(self)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"fleet[{self.node_count}] offered={self.offered_rate:.0f}/s "
            f"throughput={self.throughput:.1f}/s goodput={self.goodput_fraction:.1%} "
            f"p99={self.metrics.latency.p99 * 1e3:.1f}ms"
        )

    @property
    def throughput(self) -> float:
        return self.metrics.throughput

    @property
    def goodput_fraction(self) -> float:
        """Fraction of the offered load actually served."""
        if self.offered_rate <= 0:
            return 1.0
        return min(1.0, self.throughput / self.offered_rate)

    @property
    def balance_ratio(self) -> float:
        """max/min dispatched requests per node (1.0 = perfectly even)."""
        low = min(self.dispatched_per_node)
        if low == 0:
            return float("inf")
        return max(self.dispatched_per_node) / low


def run_fleet_experiment(
    server_config: ServerConfig,
    node_count: int,
    offered_rate: Optional[float] = None,
    dataset: Optional[Dataset] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    gpu_count: int = 1,
    per_node_cap: int = 512,
    policy: DispatchPolicy = LEAST_OUTSTANDING,
    seed: int = 0,
    warmup_requests: int = 300,
    measure_requests: int = 2000,
    max_sim_seconds: float = 60.0,
    resilience: Optional[ResiliencePolicy] = None,
    faults: Optional["FaultPlan"] = None,
    telemetry=None,
    *,
    workload: Optional["Workload"] = None,
    scheduler: Optional[str] = None,
) -> FleetResult:
    """Open-loop load against an N-node fleet.

    Traffic comes from ``workload`` (a :class:`repro.workload.Workload`:
    diurnal curves, flash crowds, sessions, trace replay, ...).  The
    legacy ``offered_rate=``/``dataset=`` kwargs are deprecated shims
    mapping onto ``Workload.constant(...)`` — bit-identical draws, plus
    a ``DeprecationWarning``.

    ``resilience`` enables deadlines/retries/shedding/circuit-breaking
    in the balancer; ``faults`` injects the given fault plan.  Both
    default to ``None``, which reproduces the fault-free experiment
    exactly (no extra processes, no extra RNG draws).
    """
    from ..workload import Workload

    if workload is None:
        if offered_rate is None:
            raise ValueError("pass a workload= (or the legacy offered_rate=)")
        warnings.warn(
            "run_fleet_experiment(offered_rate=..., dataset=...) is deprecated; "
            "pass workload=Workload.constant(rate, dataset=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        workload = Workload.constant(offered_rate, dataset=dataset)
    elif offered_rate is not None or dataset is not None:
        raise ValueError("pass either workload= or legacy offered_rate=/dataset=, not both")
    workload.validate()
    rate_label = offered_rate if offered_rate is not None else workload.offered_rate_hint()
    env = VirtualTimeBackend(scheduler=scheduler)
    streams = RandomStreams(seed)
    collector = MetricsCollector()
    from .runner import _open_session

    session = _open_session(telemetry, env)

    warmup_done = env.event()
    measure_done = env.event()
    completed = {"n": 0}
    state = {"stop": False, "issued": 0, "exhausted": False}
    target_total = warmup_requests + measure_requests
    if warmup_requests == 0:
        warmup_done.succeed()  # measurement window arms at t=0

    def finish_if_exhausted():
        # Bounded workloads (duration or trace end) may run dry before
        # the completion targets; once every submitted request has
        # resolved, waiting out max_sim_seconds would only pad the
        # measurement window with dead air.
        if not state["exhausted"] or completed["n"] < state["issued"]:
            return
        if not warmup_done.triggered:
            warmup_done.succeed()
        if not measure_done.triggered:
            measure_done.succeed()

    def on_complete(request):
        completed["n"] += 1
        if completed["n"] == warmup_requests and not warmup_done.triggered:
            warmup_done.succeed()
        elif completed["n"] == target_total and not measure_done.triggered:
            measure_done.succeed()
        if session is not None:
            session.observe_completion(request, env.now)
        finish_if_exhausted()

    fleet = Fleet(
        env,
        node_count=node_count,
        server_config=server_config,
        calibration=calibration,
        gpu_count=gpu_count,
        per_node_cap=per_node_cap,
        policy=policy,
        metrics=collector,
        on_complete=on_complete,
        resilience=resilience,
        streams=streams,
    )
    if session is not None:
        # One registration of the shared collector (the servers share
        # it, so per-server registration would duplicate); per-node
        # series come from the balancer's views.
        collector.register_metrics(session.registry)
        fleet.balancer.register_metrics(session.registry)
        for server in fleet.servers:
            server.tracer = session.tracer
        session.start()

    injector = None
    if faults is not None and faults.enabled:
        from ..faults.injector import FaultInjector

        injector = FaultInjector(env, streams, faults)
        injector.attach_fleet(fleet)
        injector.start()
        if session is not None:
            injector.register_metrics(session.registry)
    source = workload.source(streams, prefix="fleet",
                             default_dataset=reference_dataset("medium"))
    if session is not None and source.model is not None:
        model = source.model
        session.registry.gauge_fn(
            "repro_workload_offered_rate",
            "Instantaneous workload arrival rate (requests/second)",
            lambda: model.rate_at(env.now),
        )
    peak_backlog = {"n": 0}

    def generator():
        while not state["stop"]:
            interval = source.next_interval(env.now)
            if interval is None:
                # Workload exhausted (bounded duration or trace end).
                state["exhausted"] = True
                finish_if_exhausted()
                return
            yield env.timeout(interval)
            if state["stop"]:
                return
            state["issued"] += 1
            fleet.submit(source.next_image(), phase=source.last_phase)
            peak_backlog["n"] = max(peak_backlog["n"], fleet.balancer.backlog_depth)

    env.process(generator())

    def controller():
        yield warmup_done | env.timeout(max_sim_seconds)
        collector.arm(env.now)
        yield measure_done | env.timeout(max_sim_seconds)
        collector.disarm(env.now)
        state["stop"] = True

    env.run(until=env.process(controller()))

    if session is not None:
        session.finalize(env.now)

    return FleetResult(
        telemetry=session,
        node_count=node_count,
        offered_rate=rate_label,
        metrics=collector.finalize(),
        dispatched_per_node=list(fleet.balancer.dispatched),
        peak_backlog=peak_backlog["n"],
        fault_count=injector.fault_count if injector is not None else 0,
        breaker_opens=(
            sum(b.open_transitions for b in fleet.balancer.breakers)
            if fleet.balancer.breakers is not None
            else 0
        ),
    )


@dataclass(frozen=True)
class CapacityPlan:
    """Outcome of the node-count sizing loop."""

    offered_rate: float
    p99_slo_seconds: float
    nodes_required: int
    achieved_p99: float
    evaluations: Dict[int, float]  # node_count -> p99


def plan_capacity(
    server_config: ServerConfig,
    offered_rate: float,
    p99_slo_seconds: float,
    dataset: Optional[Dataset] = None,
    max_nodes: int = 16,
    **run_kwargs,
) -> CapacityPlan:
    """Find the smallest fleet meeting a p99 SLO at an offered rate.

    This is the planning question the paper's per-node throughput
    analysis exists to answer ("maximize the throughput of each node to
    subsequently minimize the number of nodes required").
    """
    if p99_slo_seconds <= 0:
        raise ValueError("p99 SLO must be positive")
    from ..workload import Workload

    # Built once here so the sizing loop stays on the non-deprecated
    # path (bit-identical to the legacy offered_rate/dataset kwargs).
    workload = Workload.constant(offered_rate, dataset=dataset)
    evaluations: Dict[int, float] = {}
    nodes = 1
    while nodes <= max_nodes:
        result = run_fleet_experiment(
            server_config,
            node_count=nodes,
            workload=workload,
            **run_kwargs,
        )
        p99 = result.metrics.latency.p99
        evaluations[nodes] = p99
        served = result.goodput_fraction
        if p99 <= p99_slo_seconds and served > 0.95:
            return CapacityPlan(
                offered_rate=offered_rate,
                p99_slo_seconds=p99_slo_seconds,
                nodes_required=nodes,
                achieved_p99=p99,
                evaluations=evaluations,
            )
        nodes += 1
    raise RuntimeError(
        f"no fleet of <= {max_nodes} nodes meets p99 <= {p99_slo_seconds}s "
        f"at {offered_rate} req/s (best: {min(evaluations.values()):.3f}s)"
    )
