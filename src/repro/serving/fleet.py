"""Multi-node serving: the load balancer of paper Sec. 2.1.

"A load balancer within the datacenter receives incoming requests and
strategically distributes them among the available processing servers
... the load balancer imposes a cap on the number of concurrent
requests each server can handle.  In instances where incoming requests
exceed the system's predefined capacity, additional servers are added."

This module implements exactly that: a :class:`Fleet` of identical
:class:`~repro.core.server.InferenceServer` nodes behind a
:class:`LoadBalancer` with pluggable dispatch policies and a per-node
concurrency cap, plus :func:`plan_capacity` — the node-count sizing
loop the paper's single-node throughput numbers exist to inform.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.config import ServerConfig
from ..core.metrics import MetricsCollector, RunMetrics
from ..core.server import InferenceServer
from ..hardware.calibration import DEFAULT_CALIBRATION, Calibration
from ..hardware.platform import ServerNode
from ..sim import Environment, Event, RandomStreams, Store
from ..vision.datasets import Dataset, reference_dataset

__all__ = [
    "DispatchPolicy",
    "ROUND_ROBIN",
    "LEAST_OUTSTANDING",
    "LoadBalancer",
    "Fleet",
    "FleetResult",
    "run_fleet_experiment",
    "plan_capacity",
    "CapacityPlan",
]

ROUND_ROBIN = "round_robin"
LEAST_OUTSTANDING = "least_outstanding"
DispatchPolicy = str
_POLICIES = (ROUND_ROBIN, LEAST_OUTSTANDING)


class LoadBalancer:
    """Dispatches requests across nodes with a per-node concurrency cap.

    When every node is at its cap, requests wait in the balancer's own
    queue (the datacenter-level backlog the paper's model assumes gets
    absorbed by *adding servers*).
    """

    def __init__(
        self,
        env: Environment,
        servers: List[InferenceServer],
        per_node_cap: int,
        policy: DispatchPolicy = LEAST_OUTSTANDING,
    ) -> None:
        if not servers:
            raise ValueError("fleet needs at least one server")
        if per_node_cap < 1:
            raise ValueError(f"per_node_cap must be >= 1, got {per_node_cap}")
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
        self.env = env
        self.servers = servers
        self.per_node_cap = per_node_cap
        self.policy = policy
        self.outstanding = [0] * len(servers)
        self.dispatched = [0] * len(servers)
        self._rr = itertools.cycle(range(len(servers)))
        self._backlog: Store = Store(env)
        env.process(self._dispatcher())

    @property
    def backlog_depth(self) -> int:
        return self._backlog.size

    @property
    def total_outstanding(self) -> int:
        return sum(self.outstanding)

    def submit(self, image) -> Event:
        """Route one request; the returned event completes with the
        finished request (same contract as ``InferenceServer.submit``)."""
        done = self.env.event()
        self._backlog.put((image, done, self.env.now))
        return done

    # -- dispatch loop -------------------------------------------------------

    def _pick_node(self) -> Optional[int]:
        if self.policy == ROUND_ROBIN:
            for _ in range(len(self.servers)):
                index = next(self._rr)
                if self.outstanding[index] < self.per_node_cap:
                    return index
            return None
        # least outstanding
        index = min(range(len(self.servers)), key=lambda i: self.outstanding[i])
        if self.outstanding[index] >= self.per_node_cap:
            return None
        return index

    def _dispatcher(self):
        while True:
            image, done, enqueued_at = yield self._backlog.get()
            while True:
                index = self._pick_node()
                if index is not None:
                    break
                # All nodes at cap: wait for any completion signal.
                yield self.env.timeout(0.5e-3)
            self.outstanding[index] += 1
            self.dispatched[index] += 1
            # Backdated so balancer queueing counts in request latency.
            inner = self.servers[index].submit(image, arrival_time=enqueued_at)
            self.env.process(self._track(index, inner, done))

    def _track(self, index: int, inner: Event, done: Event):
        request = yield inner
        self.outstanding[index] -= 1
        done.succeed(request)


class Fleet:
    """N identical server nodes behind one load balancer."""

    def __init__(
        self,
        env: Environment,
        node_count: int,
        server_config: ServerConfig,
        calibration: Calibration = DEFAULT_CALIBRATION,
        gpu_count: int = 1,
        per_node_cap: int = 512,
        policy: DispatchPolicy = LEAST_OUTSTANDING,
        metrics: Optional[MetricsCollector] = None,
        on_complete=None,
    ) -> None:
        if node_count < 1:
            raise ValueError(f"node_count must be >= 1, got {node_count}")
        self.env = env
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.nodes: List[ServerNode] = [
            ServerNode(env, calibration, gpu_count=gpu_count) for _ in range(node_count)
        ]
        self.servers: List[InferenceServer] = [
            InferenceServer(env, node, server_config, metrics=self.metrics,
                            on_complete=on_complete)
            for node in self.nodes
        ]
        self.balancer = LoadBalancer(env, self.servers, per_node_cap, policy)

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def submit(self, image) -> Event:
        return self.balancer.submit(image)


@dataclass(frozen=True)
class FleetResult:
    """Measurements of one fleet experiment."""

    node_count: int
    offered_rate: float
    metrics: RunMetrics
    dispatched_per_node: List[int]
    peak_backlog: int

    @property
    def throughput(self) -> float:
        return self.metrics.throughput

    @property
    def goodput_fraction(self) -> float:
        """Fraction of the offered load actually served."""
        if self.offered_rate <= 0:
            return 1.0
        return min(1.0, self.throughput / self.offered_rate)

    @property
    def balance_ratio(self) -> float:
        """max/min dispatched requests per node (1.0 = perfectly even)."""
        low = min(self.dispatched_per_node)
        if low == 0:
            return float("inf")
        return max(self.dispatched_per_node) / low


def run_fleet_experiment(
    server_config: ServerConfig,
    node_count: int,
    offered_rate: float,
    dataset: Optional[Dataset] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    gpu_count: int = 1,
    per_node_cap: int = 512,
    policy: DispatchPolicy = LEAST_OUTSTANDING,
    seed: int = 0,
    warmup_requests: int = 300,
    measure_requests: int = 2000,
    max_sim_seconds: float = 60.0,
) -> FleetResult:
    """Open-loop Poisson load against an N-node fleet."""
    if offered_rate <= 0:
        raise ValueError(f"offered_rate must be positive, got {offered_rate}")
    env = Environment()
    streams = RandomStreams(seed)
    collector = MetricsCollector()

    warmup_done = env.event()
    measure_done = env.event()
    completed = {"n": 0}
    target_total = warmup_requests + measure_requests

    def on_complete(_request):
        completed["n"] += 1
        if completed["n"] == warmup_requests:
            warmup_done.succeed()
        elif completed["n"] == target_total:
            measure_done.succeed()

    fleet = Fleet(
        env,
        node_count=node_count,
        server_config=server_config,
        calibration=calibration,
        gpu_count=gpu_count,
        per_node_cap=per_node_cap,
        policy=policy,
        metrics=collector,
        on_complete=on_complete,
    )
    images = dataset if dataset is not None else reference_dataset("medium")
    rng = streams.stream("fleet:images")
    arrival_rng = streams.stream("fleet:arrivals")
    state = {"stop": False}
    peak_backlog = {"n": 0}

    def generator():
        while not state["stop"]:
            yield env.timeout(arrival_rng.expovariate(offered_rate))
            if state["stop"]:
                return
            fleet.submit(images.sample(rng))
            peak_backlog["n"] = max(peak_backlog["n"], fleet.balancer.backlog_depth)

    env.process(generator())

    def controller():
        yield warmup_done | env.timeout(max_sim_seconds)
        collector.arm(env.now)
        yield measure_done | env.timeout(max_sim_seconds)
        collector.disarm(env.now)
        state["stop"] = True

    env.run(until=env.process(controller()))

    return FleetResult(
        node_count=node_count,
        offered_rate=offered_rate,
        metrics=collector.finalize(),
        dispatched_per_node=list(fleet.balancer.dispatched),
        peak_backlog=peak_backlog["n"],
    )


@dataclass(frozen=True)
class CapacityPlan:
    """Outcome of the node-count sizing loop."""

    offered_rate: float
    p99_slo_seconds: float
    nodes_required: int
    achieved_p99: float
    evaluations: Dict[int, float]  # node_count -> p99


def plan_capacity(
    server_config: ServerConfig,
    offered_rate: float,
    p99_slo_seconds: float,
    dataset: Optional[Dataset] = None,
    max_nodes: int = 16,
    **run_kwargs,
) -> CapacityPlan:
    """Find the smallest fleet meeting a p99 SLO at an offered rate.

    This is the planning question the paper's per-node throughput
    analysis exists to answer ("maximize the throughput of each node to
    subsequently minimize the number of nodes required").
    """
    if p99_slo_seconds <= 0:
        raise ValueError("p99 SLO must be positive")
    evaluations: Dict[int, float] = {}
    nodes = 1
    while nodes <= max_nodes:
        result = run_fleet_experiment(
            server_config,
            node_count=nodes,
            offered_rate=offered_rate,
            dataset=dataset,
            **run_kwargs,
        )
        p99 = result.metrics.latency.p99
        evaluations[nodes] = p99
        served = result.goodput_fraction
        if p99 <= p99_slo_seconds and served > 0.95:
            return CapacityPlan(
                offered_rate=offered_rate,
                p99_slo_seconds=p99_slo_seconds,
                nodes_required=nodes,
                achieved_p99=p99,
                evaluations=evaluations,
            )
        nodes += 1
    raise RuntimeError(
        f"no fleet of <= {max_nodes} nodes meets p99 <= {p99_slo_seconds}s "
        f"at {offered_rate} req/s (best: {min(evaluations.values()):.3f}s)"
    )
