"""The unified ``Workload`` spec: one object describing request traffic.

Every runner entry point (``run_experiment``, ``run_open_loop``,
``run_face_pipeline``, ``run_fleet_experiment``) accepts a
:class:`Workload` instead of scattered ``rate=``/``duration=``/dataset
kwargs.  A workload bundles:

- **arrivals** — a composable rate envelope
  (:mod:`repro.workload.arrivals`) turned into a non-homogeneous
  Poisson process by thinning;
- **dataset** — what each request carries, including
  :class:`~repro.vision.datasets.ZipfDataset` popularity skew;
- **sessions** — an optional per-user Markov session model
  (:mod:`repro.workload.sessions`), in which case arrivals are
  *session starts* and requests cluster per user;
- **duration_seconds** — how long the traffic lasts (``None`` =
  unbounded, the legacy behaviour);
- **trace_path** — a recorded trace to replay instead of synthesizing.

Closed-loop runners (``run_experiment``, ``run_face_pipeline``) use
the dataset/popularity component — concurrency, not an arrival
process, sets their load.  Open-loop runners (``run_open_loop``,
``run_fleet_experiment``) draw full arrival timing from the workload.

``Workload.constant(rate)`` is the exact drop-in for the legacy
kwargs: it resolves to a :class:`~repro.workload.source.ConstantSource`
whose RNG draws are identical to the old inline generators, so the
deprecation shims are bit-for-bit compatible.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional, Sequence, Tuple

from ..sim.rng import RandomStreams
from ..vision.datasets import (
    Dataset,
    FixedImageDataset,
    ImageNetLikeDataset,
    VideoFrameDataset,
    ZipfDataset,
    reference_dataset,
)
from ..vision.image import REFERENCE_IMAGES
from .arrivals import (
    DAY_SECONDS,
    ArrivalModel,
    ConstantRate,
    DiurnalCurve,
    FlashCrowd,
    Region,
    RegionalMix,
    model_from_dict,
)
from .sessions import MarkovSessionModel
from .source import ArrivalSource, ConstantSource, ReplaySource, SyntheticSource
from .trace import TraceEvent, TraceMeta, read_trace, read_trace_meta, write_trace

__all__ = [
    "Workload",
    "synthesize_trace",
    "dataset_to_dict",
    "dataset_from_dict",
]


def dataset_to_dict(dataset: Dataset) -> Dict[str, object]:
    """JSON-safe dataset recipe (round-trips through trace headers).

    Covers the datasets a workload is built from; anything else is
    recorded by name only and must be supplied explicitly at replay.
    """
    if isinstance(dataset, ZipfDataset):
        return {
            "kind": "ZipfDataset",
            "base": dataset_to_dict(dataset.base),
            "catalog_size": dataset.catalog_size,
            "skew": dataset.skew,
            "seed": dataset.seed,
        }
    if isinstance(dataset, ImageNetLikeDataset):
        return {"kind": "ImageNetLikeDataset"}
    if isinstance(dataset, VideoFrameDataset):
        return {"kind": "VideoFrameDataset", "width": dataset.width,
                "height": dataset.height, "quality": dataset.quality}
    if isinstance(dataset, FixedImageDataset):
        for size, image in REFERENCE_IMAGES.items():
            if dataset.image is image:
                return {"kind": "reference", "size": size}
    return {"kind": "opaque", "name": dataset.name}


def dataset_from_dict(data: Optional[Dict[str, object]]) -> Optional[Dataset]:
    """Rebuild a dataset from :func:`dataset_to_dict` output (or ``None``
    when the recipe is missing or opaque)."""
    if not data:
        return None
    kind = data.get("kind")
    if kind == "ZipfDataset":
        base = dataset_from_dict(data.get("base"))
        if base is None:
            return None
        return ZipfDataset(
            base,
            catalog_size=int(data["catalog_size"]),
            skew=float(data["skew"]),
            seed=int(data.get("seed", 0)),
        )
    if kind == "ImageNetLikeDataset":
        return ImageNetLikeDataset()
    if kind == "VideoFrameDataset":
        return VideoFrameDataset(
            width=int(data.get("width", 1920)),
            height=int(data.get("height", 1080)),
            quality=int(data.get("quality", 80)),
        )
    if kind == "reference":
        return reference_dataset(str(data["size"]))
    return None


@dataclass(frozen=True, kw_only=True)
class Workload:
    """One request-traffic description shared by every runner."""

    name: str = "workload"
    #: Rate envelope for synthesized traffic (session starts when a
    #: session model is attached).  Advisory for trace replay.
    arrivals: Optional[ArrivalModel] = None
    #: Request payload source; ``None`` lets the runner pick its
    #: default (medium reference image, video frames, ...).
    dataset: Optional[Dataset] = None
    #: Per-user session model layered under the arrival process.
    sessions: Optional[MarkovSessionModel] = None
    #: Traffic horizon; ``None`` runs until the experiment stops it.
    duration_seconds: Optional[float] = None
    #: Recorded trace to replay instead of synthesizing arrivals.
    trace_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.arrivals is None and self.trace_path is None:
            raise ValueError("a Workload needs arrivals or a trace_path")
        if self.trace_path is not None and self.sessions is not None:
            raise ValueError(
                "sessions are baked into a trace at synthesis time; "
                "a replay workload cannot take a session model")
        if self.duration_seconds is not None and self.duration_seconds <= 0:
            raise ValueError(
                f"duration_seconds must be positive, got {self.duration_seconds}")
        if self.arrivals is not None:
            self.arrivals.validate()

    def validate(self) -> "Workload":
        """Re-run field validation (useful after deserialization)."""
        self.__post_init__()
        return self

    def with_overrides(self, **kwargs) -> "Workload":
        """Copy with fields replaced."""
        return replace(self, **kwargs)

    # -- constructors --------------------------------------------------------

    @classmethod
    def constant(
        cls,
        rate: float,
        *,
        dataset: Optional[Dataset] = None,
        duration_seconds: Optional[float] = None,
        name: Optional[str] = None,
    ) -> "Workload":
        """Homogeneous Poisson traffic — the legacy ``rate=`` semantics."""
        return cls(
            name=name or f"constant-{rate:g}",
            arrivals=ConstantRate(rate),
            dataset=dataset,
            duration_seconds=duration_seconds,
        )

    @classmethod
    def diurnal(
        cls,
        mean_rate: float,
        *,
        swing: float = 0.5,
        period_seconds: float = DAY_SECONDS,
        phase_offset_seconds: float = 0.0,
        dataset: Optional[Dataset] = None,
        sessions: Optional[MarkovSessionModel] = None,
        duration_seconds: Optional[float] = None,
        name: Optional[str] = None,
    ) -> "Workload":
        """Day/night sinusoidal traffic."""
        return cls(
            name=name or f"diurnal-{mean_rate:g}",
            arrivals=DiurnalCurve(
                mean_rate, swing=swing, period_seconds=period_seconds,
                phase_offset_seconds=phase_offset_seconds),
            dataset=dataset,
            sessions=sessions,
            duration_seconds=duration_seconds,
        )

    @classmethod
    def flash_crowd(
        cls,
        mean_rate: float,
        *,
        bursts: Sequence[Tuple[float, float, float]],
        ramp_seconds: float = 0.0,
        swing: float = 0.0,
        period_seconds: float = DAY_SECONDS,
        dataset: Optional[Dataset] = None,
        sessions: Optional[MarkovSessionModel] = None,
        duration_seconds: Optional[float] = None,
        name: Optional[str] = None,
    ) -> "Workload":
        """Burst windows (``(start, duration, amplitude)``) on a constant
        or diurnal base."""
        base: ArrivalModel
        if swing > 0:
            base = DiurnalCurve(mean_rate, swing=swing,
                                period_seconds=period_seconds)
        else:
            base = ConstantRate(mean_rate)
        return cls(
            name=name or f"flash-{mean_rate:g}",
            arrivals=FlashCrowd(base, bursts, ramp_seconds=ramp_seconds),
            dataset=dataset,
            sessions=sessions,
            duration_seconds=duration_seconds,
        )

    @classmethod
    def regional(
        cls,
        mean_rate: float,
        *,
        regions: Sequence[Region],
        swing: float = 0.5,
        period_seconds: float = DAY_SECONDS,
        dataset: Optional[Dataset] = None,
        sessions: Optional[MarkovSessionModel] = None,
        duration_seconds: Optional[float] = None,
        name: Optional[str] = None,
    ) -> "Workload":
        """Per-region time-shifted copies of one diurnal curve."""
        return cls(
            name=name or f"regional-{mean_rate:g}",
            arrivals=RegionalMix(
                DiurnalCurve(mean_rate, swing=swing,
                             period_seconds=period_seconds),
                regions),
            dataset=dataset,
            sessions=sessions,
            duration_seconds=duration_seconds,
        )

    @classmethod
    def replay(
        cls,
        trace_path: str,
        *,
        dataset: Optional[Dataset] = None,
        name: Optional[str] = None,
    ) -> "Workload":
        """Replay a recorded trace; the header's embedded workload
        recipe supplies the dataset (and advisory rate envelope) unless
        overridden."""
        meta = read_trace_meta(trace_path)
        header = meta.workload or {}
        arrivals = model_from_dict(header.get("arrivals") or {})
        if dataset is None:
            dataset = dataset_from_dict(header.get("dataset"))
        return cls(
            name=name or f"replay-{meta.name}",
            arrivals=arrivals,
            dataset=dataset,
            duration_seconds=meta.duration_seconds,
            trace_path=trace_path,
        )

    # -- resolution ----------------------------------------------------------

    @property
    def is_replay(self) -> bool:
        return self.trace_path is not None

    def resolved_dataset(self, default: Optional[Dataset] = None) -> Dataset:
        """The dataset requests draw from, after runner defaults."""
        if self.dataset is not None:
            return self.dataset
        if default is not None:
            return default
        return reference_dataset("medium")

    def offered_rate_hint(self) -> float:
        """Best-effort mean request rate (fleet sizing, result labels)."""
        if self.arrivals is None:
            return 0.0
        if isinstance(self.arrivals, ConstantRate) and self.sessions is None:
            return self.arrivals.rate
        horizon = self.duration_seconds
        if horizon is None:
            horizon = getattr(self.arrivals, "period_seconds", None) or DAY_SECONDS
        rate = self.arrivals.mean_rate(horizon)
        if self.sessions is not None:
            rate *= self.sessions.mean_session_length
        return rate

    def source(
        self,
        streams: RandomStreams,
        *,
        prefix: str = "client",
        default_dataset: Optional[Dataset] = None,
    ) -> ArrivalSource:
        """Build the arrival source a load generator drives.

        A plain constant workload (no sessions, no trace) resolves to
        :class:`~repro.workload.source.ConstantSource`, whose draws are
        bit-identical to the legacy inline generators — that is what
        makes the ``rate=`` deprecation shims exact.
        """
        dataset = self.resolved_dataset(default_dataset)
        if self.trace_path is not None:
            _, events = read_trace(self.trace_path)
            return ReplaySource(events, dataset, streams, prefix=prefix,
                                model=self.arrivals)
        if self.sessions is None and isinstance(self.arrivals, ConstantRate):
            return ConstantSource(self.arrivals.rate, dataset, streams,
                                  prefix=prefix,
                                  duration_seconds=self.duration_seconds)
        return SyntheticSource(self.arrivals, dataset, streams, prefix=prefix,
                               sessions=self.sessions,
                               duration_seconds=self.duration_seconds)

    def describe(self) -> Dict[str, object]:
        """JSON-safe summary (embedded in trace headers)."""
        out: Dict[str, object] = {"name": self.name}
        if self.arrivals is not None:
            out["arrivals"] = self.arrivals.describe()
        if self.dataset is not None:
            out["dataset"] = dataset_to_dict(self.dataset)
        if self.sessions is not None:
            out["sessions"] = self.sessions.describe()
        if self.duration_seconds is not None:
            out["duration_seconds"] = self.duration_seconds
        if self.trace_path is not None:
            out["trace_path"] = self.trace_path
        return out

    # -- CLI spec strings ----------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "Workload":
        """Parse a CLI workload spec.

        Either a trace path (``*.jsonl`` / ``*.jsonl.gz``) to replay, or
        ``kind:key=value,...`` to synthesize::

            constant:rate=150
            diurnal:mean=120,swing=0.6,period=3600,duration=7200
            flash:mean=100,at=300,len=60,peak=6,ramp=10
            regions:mean=90,count=3,period=3600

        Shared keys: ``duration`` (seconds), ``sessions=1`` (default
        Markov browse/burst chain), ``zipf=SKEW`` / ``catalog=N``
        (Zipf popularity over an ImageNet-like catalog).
        """
        if spec.endswith((".jsonl", ".jsonl.gz", ".gz")) or os.path.exists(spec):
            return cls.replay(spec)
        kind, _, rest = spec.partition(":")
        params: Dict[str, str] = {}
        if rest:
            for item in rest.split(","):
                key, eq, value = item.partition("=")
                if not eq or not key:
                    raise ValueError(
                        f"bad workload spec item {item!r} (expected key=value)")
                params[key.strip()] = value.strip()

        def take(key: str, default: Optional[float] = None) -> Optional[float]:
            if key in params:
                return float(params.pop(key))
            return default

        duration = take("duration")
        sessions = None
        if params.pop("sessions", "0") not in ("0", "", "false"):
            sessions = MarkovSessionModel()
        dataset = None
        if "zipf" in params or "catalog" in params:
            skew = take("zipf", 1.0)
            catalog = int(take("catalog", 256.0))
            dataset = ZipfDataset(ImageNetLikeDataset(), catalog_size=catalog,
                                  skew=skew)

        if kind == "constant":
            rate = take("rate")
            if rate is None:
                raise ValueError("constant workload needs rate=")
            if sessions is not None:
                # Constant session starts still need the synthetic path.
                workload = cls(name=f"constant-{rate:g}",
                               arrivals=ConstantRate(rate), dataset=dataset,
                               sessions=sessions, duration_seconds=duration)
            else:
                workload = cls.constant(rate, dataset=dataset,
                                        duration_seconds=duration)
        elif kind == "diurnal":
            mean = take("mean")
            if mean is None:
                raise ValueError("diurnal workload needs mean=")
            workload = cls.diurnal(
                mean, swing=take("swing", 0.5),
                period_seconds=take("period", DAY_SECONDS),
                phase_offset_seconds=take("offset", 0.0),
                dataset=dataset, sessions=sessions, duration_seconds=duration)
        elif kind == "flash":
            mean = take("mean")
            start = take("at")
            if mean is None or start is None:
                raise ValueError("flash workload needs mean= and at=")
            workload = cls.flash_crowd(
                mean,
                bursts=[(start, take("len", 60.0), take("peak", 4.0))],
                ramp_seconds=take("ramp", 0.0),
                swing=take("swing", 0.0),
                period_seconds=take("period", DAY_SECONDS),
                dataset=dataset, sessions=sessions, duration_seconds=duration)
        elif kind == "regions":
            mean = take("mean")
            if mean is None:
                raise ValueError("regions workload needs mean=")
            count = int(take("count", 3.0))
            period = take("period", DAY_SECONDS)
            regions = [
                Region(f"r{i}", weight=1.0, offset_seconds=i * period / count)
                for i in range(count)
            ]
            workload = cls.regional(
                mean, regions=regions, swing=take("swing", 0.5),
                period_seconds=period, dataset=dataset, sessions=sessions,
                duration_seconds=duration)
        else:
            raise ValueError(
                f"unknown workload kind {kind!r}; expected constant, diurnal, "
                f"flash, regions, or a trace path")
        if params:
            raise ValueError(f"unknown workload spec keys: {sorted(params)}")
        return workload


def _synthesize_events(workload: Workload, seed: int) -> Iterator[TraceEvent]:
    """Lazily generate the trace events of ``(workload, seed)``."""
    streams = RandomStreams(seed)
    # Always the synthetic path (even for constant rates) so every
    # event carries a phase label; the "trace" stream prefix keeps
    # synthesis RNG independent of any run that replays the result.
    source = SyntheticSource(
        workload.arrivals,
        workload.resolved_dataset(),
        streams,
        prefix="trace",
        sessions=workload.sessions,
        duration_seconds=workload.duration_seconds,
    )
    now = 0.0
    while True:
        interval = source.next_interval(now)
        if interval is None:
            return
        now += interval
        source.next_image()
        yield TraceEvent(t=now, key=source.last_key, user=source.last_user,
                         state=source.last_state, phase=source.last_phase)


def synthesize_trace(workload: Workload, path: str, seed: int = 0) -> int:
    """Synthesize ``workload`` into a trace file; a pure function of
    ``(workload, seed)`` — same inputs, byte-identical file.

    Returns the event count.  Events stream straight to disk; a 24h
    day never materializes in memory.
    """
    if workload.is_replay:
        raise ValueError("replay workloads are already traces")
    if workload.arrivals is None:
        raise ValueError("synthesis needs an arrival model")
    if workload.duration_seconds is None:
        raise ValueError("synthesis needs a bounded duration_seconds")
    meta = TraceMeta(
        name=workload.name,
        seed=seed,
        duration_seconds=workload.duration_seconds,
        workload=workload.describe(),
    )
    return write_trace(path, meta, _synthesize_events(workload, seed))
