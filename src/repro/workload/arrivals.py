"""Composable time-varying arrival-rate models.

An :class:`ArrivalModel` is a deterministic *rate envelope* ``r(t)``
(requests/second at simulated time ``t``) with a finite peak, which is
exactly what Lewis-Shedler thinning needs to turn it into a
non-homogeneous Poisson process: draw candidate arrivals at the peak
rate and accept a candidate at ``t`` with probability
``r(t) / peak``.  The accepted points are a Poisson process with
instantaneous intensity ``r(t)`` (see MODELING.md §11 for the math).

Models compose: ``a + b`` superposes two envelopes (sum of rates — the
superposition of independent Poisson processes), and
:class:`FlashCrowd` / :class:`RegionalMix` wrap other models, so
"diurnal day with a lunchtime flash crowd mirrored across three
regions" is an expression, not a subclass.

Every model also labels time with a *phase* string ("day", "night",
"flash", "region:eu", ...) used to annotate requests, spans, and
metrics so a latency regression can be attributed to the traffic
condition that caused it.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "ArrivalModel",
    "ConstantRate",
    "DiurnalCurve",
    "FlashCrowd",
    "RegionalMix",
    "Region",
    "Superpose",
    "DAY_SECONDS",
]

#: One canonical day; the default diurnal period.
DAY_SECONDS = 86_400.0

#: Phase label for models with no finer structure.
PHASE_STEADY = "steady"


class ArrivalModel:
    """Deterministic rate envelope ``r(t)`` with a finite peak."""

    name: str = "arrivals"

    def rate_at(self, t: float) -> float:
        """Instantaneous offered rate (requests/second) at time ``t``."""
        raise NotImplementedError

    def peak_rate(self) -> float:
        """A finite upper bound on ``rate_at`` (the thinning envelope)."""
        raise NotImplementedError

    def phase_at(self, t: float) -> str:
        """Label of the traffic condition in force at time ``t``."""
        return PHASE_STEADY

    def mean_rate(self, horizon: float, samples: int = 512) -> float:
        """Numeric time-average of the rate over ``[0, horizon]``."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        step = horizon / samples
        total = sum(self.rate_at((i + 0.5) * step) for i in range(samples))
        return total / samples

    def describe(self) -> Dict[str, object]:
        """JSON-safe summary (round-trips through trace headers)."""
        return {"kind": type(self).__name__, "name": self.name,
                "peak_rate": self.peak_rate()}

    def validate(self) -> "ArrivalModel":
        peak = self.peak_rate()
        if not (peak > 0 and math.isfinite(peak)):
            raise ValueError(f"peak rate must be positive and finite, got {peak}")
        return self

    def __add__(self, other: "ArrivalModel") -> "Superpose":
        return Superpose((self, other))


class ConstantRate(ArrivalModel):
    """Homogeneous Poisson arrivals at a fixed rate."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.name = f"constant:{rate:g}"

    def rate_at(self, t: float) -> float:
        return self.rate

    def peak_rate(self) -> float:
        return self.rate

    def describe(self) -> Dict[str, object]:
        return {**super().describe(), "rate": self.rate}


class DiurnalCurve(ArrivalModel):
    """Sinusoidal day/night swing: trough at ``t = 0`` (midnight), peak
    half a period later (midday).

    ``rate(t) = mean * (1 - swing * cos(2*pi*(t + offset) / period))``

    ``swing`` in ``[0, 1)`` keeps the rate strictly positive, so the
    thinning loop always terminates.
    """

    def __init__(
        self,
        mean_rate: float,
        swing: float = 0.5,
        period_seconds: float = DAY_SECONDS,
        phase_offset_seconds: float = 0.0,
    ) -> None:
        if mean_rate <= 0:
            raise ValueError(f"mean_rate must be positive, got {mean_rate}")
        if not 0 <= swing < 1:
            raise ValueError(f"swing must be in [0, 1), got {swing}")
        if period_seconds <= 0:
            raise ValueError(f"period must be positive, got {period_seconds}")
        self.mean = float(mean_rate)
        self.swing = float(swing)
        self.period_seconds = float(period_seconds)
        self.phase_offset_seconds = float(phase_offset_seconds)
        self.name = f"diurnal:{mean_rate:g}x{swing:g}"

    def rate_at(self, t: float) -> float:
        angle = 2 * math.pi * (t + self.phase_offset_seconds) / self.period_seconds
        return self.mean * (1 - self.swing * math.cos(angle))

    def peak_rate(self) -> float:
        return self.mean * (1 + self.swing)

    def phase_at(self, t: float) -> str:
        return "day" if self.rate_at(t) >= self.mean else "night"

    def describe(self) -> Dict[str, object]:
        return {
            **super().describe(),
            "mean_rate": self.mean,
            "swing": self.swing,
            "period_seconds": self.period_seconds,
            "phase_offset_seconds": self.phase_offset_seconds,
        }


class FlashCrowd(ArrivalModel):
    """Multiplicative burst windows on top of a base model.

    Each burst is ``(start, duration, amplitude)``: between ``start``
    and ``start + duration`` the base rate is multiplied by
    ``amplitude``, with linear ramps of ``ramp_seconds`` on both edges
    (flash crowds build and decay; a step function would be a
    different, easier problem for the autoscaler).
    """

    def __init__(
        self,
        base: ArrivalModel,
        bursts: Sequence[Tuple[float, float, float]],
        ramp_seconds: float = 0.0,
    ) -> None:
        if not bursts:
            raise ValueError("FlashCrowd needs at least one burst window")
        for start, duration, amplitude in bursts:
            if start < 0 or duration <= 0:
                raise ValueError(f"bad burst window ({start}, {duration})")
            if amplitude <= 1.0:
                raise ValueError(f"burst amplitude must exceed 1, got {amplitude}")
        if ramp_seconds < 0:
            raise ValueError(f"ramp_seconds must be >= 0, got {ramp_seconds}")
        self.base = base
        self.bursts = tuple((float(s), float(d), float(a)) for s, d, a in bursts)
        self.ramp_seconds = float(ramp_seconds)
        self.name = f"flash[{len(self.bursts)}]:{base.name}"

    def _multiplier(self, t: float) -> float:
        """Largest active burst multiplier at ``t`` (1.0 outside)."""
        best = 1.0
        ramp = self.ramp_seconds
        for start, duration, amplitude in self.bursts:
            if ramp > 0 and start - ramp < t < start:
                gain = 1.0 + (amplitude - 1.0) * (t - (start - ramp)) / ramp
            elif start <= t <= start + duration:
                gain = amplitude
            elif ramp > 0 and start + duration < t < start + duration + ramp:
                gain = amplitude - (amplitude - 1.0) * (t - start - duration) / ramp
            else:
                continue
            best = max(best, gain)
        return best

    def rate_at(self, t: float) -> float:
        return self.base.rate_at(t) * self._multiplier(t)

    def peak_rate(self) -> float:
        top = max(amplitude for _, _, amplitude in self.bursts)
        return self.base.peak_rate() * top

    def phase_at(self, t: float) -> str:
        return "flash" if self._multiplier(t) > 1.0 else self.base.phase_at(t)

    def describe(self) -> Dict[str, object]:
        return {
            **super().describe(),
            "base": self.base.describe(),
            "bursts": [list(b) for b in self.bursts],
            "ramp_seconds": self.ramp_seconds,
        }


class Region:
    """One region of a :class:`RegionalMix`: a named, weighted,
    time-shifted copy of a shared arrival model."""

    __slots__ = ("name", "weight", "offset_seconds")

    def __init__(self, name: str, weight: float = 1.0,
                 offset_seconds: float = 0.0) -> None:
        if not name:
            raise ValueError("region needs a name")
        if weight <= 0:
            raise ValueError(f"region weight must be positive, got {weight}")
        self.name = name
        self.weight = float(weight)
        self.offset_seconds = float(offset_seconds)


class RegionalMix(ArrivalModel):
    """Sum of per-region time-offset copies of one base model.

    The planet is not in one timezone: each region replays the base
    curve shifted by its UTC offset and scaled by its traffic share,
    which is what flattens (but does not remove) the global diurnal
    swing.  The phase label names the region contributing the most
    traffic at ``t``.
    """

    def __init__(self, base: ArrivalModel, regions: Sequence[Region]) -> None:
        if not regions:
            raise ValueError("RegionalMix needs at least one region")
        names = [region.name for region in regions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names in {names}")
        self.base = base
        self.regions = tuple(regions)
        self.name = f"regions[{','.join(names)}]:{base.name}"

    def _region_rate(self, region: Region, t: float) -> float:
        return region.weight * self.base.rate_at(t + region.offset_seconds)

    def rate_at(self, t: float) -> float:
        return sum(self._region_rate(region, t) for region in self.regions)

    def peak_rate(self) -> float:
        return self.base.peak_rate() * sum(r.weight for r in self.regions)

    def phase_at(self, t: float) -> str:
        top = max(self.regions, key=lambda region: self._region_rate(region, t))
        return f"region:{top.name}"

    def region_rates(self, t: float) -> Dict[str, float]:
        """Per-region offered rate at ``t`` (for telemetry views)."""
        return {r.name: self._region_rate(r, t) for r in self.regions}

    def describe(self) -> Dict[str, object]:
        return {
            **super().describe(),
            "base": self.base.describe(),
            "regions": [
                {"name": r.name, "weight": r.weight,
                 "offset_seconds": r.offset_seconds}
                for r in self.regions
            ],
        }


class Superpose(ArrivalModel):
    """Sum of independent arrival models (``a + b``)."""

    def __init__(self, models: Sequence[ArrivalModel]) -> None:
        if not models:
            raise ValueError("Superpose needs at least one model")
        flat = []
        for model in models:
            if isinstance(model, Superpose):
                flat.extend(model.models)
            else:
                flat.append(model)
        self.models = tuple(flat)
        self.name = "+".join(model.name for model in self.models)

    def rate_at(self, t: float) -> float:
        return sum(model.rate_at(t) for model in self.models)

    def peak_rate(self) -> float:
        return sum(model.peak_rate() for model in self.models)

    def phase_at(self, t: float) -> str:
        top = max(self.models, key=lambda model: model.rate_at(t))
        return top.phase_at(t)

    def describe(self) -> Dict[str, object]:
        return {**super().describe(),
                "models": [model.describe() for model in self.models]}


def model_from_dict(data: Dict[str, object]) -> Optional[ArrivalModel]:
    """Rebuild a model from :meth:`ArrivalModel.describe` output.

    Used when replaying a trace whose header embeds the workload that
    synthesized it.  Returns ``None`` for unknown kinds (a trace from a
    newer format still replays — the envelope is only advisory).
    """
    kind = data.get("kind")
    if kind == "ConstantRate":
        return ConstantRate(float(data["rate"]))
    if kind == "DiurnalCurve":
        return DiurnalCurve(
            float(data["mean_rate"]),
            swing=float(data["swing"]),
            period_seconds=float(data["period_seconds"]),
            phase_offset_seconds=float(data.get("phase_offset_seconds", 0.0)),
        )
    if kind == "FlashCrowd":
        base = model_from_dict(data["base"])
        if base is None:
            return None
        return FlashCrowd(
            base,
            [tuple(burst) for burst in data["bursts"]],
            ramp_seconds=float(data.get("ramp_seconds", 0.0)),
        )
    if kind == "RegionalMix":
        base = model_from_dict(data["base"])
        if base is None:
            return None
        return RegionalMix(
            base,
            [Region(r["name"], weight=float(r["weight"]),
                    offset_seconds=float(r["offset_seconds"]))
             for r in data["regions"]],
        )
    if kind == "Superpose":
        models = [model_from_dict(m) for m in data["models"]]
        if any(model is None for model in models):
            return None
        return Superpose(models)
    return None
