"""Lazy arrival sources: the executable form of a workload.

An :class:`ArrivalSource` is what a load-generating client actually
consumes inside the simulation: ``next_interval(now)`` returns the
delay to the next arrival (``None`` once the workload is exhausted),
and ``next_image()`` — called after the delay elapses — returns the
request payload and stamps the arrival's phase/user/session-state on
the source.

All three implementations stream lazily: nothing precomputes a
schedule list, so a 100M-event synthesized day (or replayed trace)
never materializes in memory.  Zero-rate gaps cost candidate draws in
the thinning loop, not idle re-polls — the source only ever reports
*actual* arrivals, so a client never has to guess whether a wake-up
carries a request.

RNG discipline matches :class:`~repro.sim.rng.RandomStreams`: every
source draws from named streams (``{prefix}:arrivals``,
``{prefix}:images``, ``{prefix}:sessions``) derived from the run seed,
so seeded runs are deterministic and adding a draw to one component
never perturbs another.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Tuple

from ..sim.rng import RandomStreams
from ..vision.datasets import Dataset
from .arrivals import ArrivalModel
from .sessions import MarkovSessionModel
from .trace import TraceEvent

__all__ = [
    "ArrivalSource",
    "ConstantSource",
    "SyntheticSource",
    "ReplaySource",
]

#: Candidate-draw cap per accepted arrival; a correctly validated model
#: (positive peak, almost-everywhere-positive rate) never approaches
#: it, but it turns a degenerate envelope into an error, not a hang.
_MAX_THINNING_CANDIDATES = 10_000_000


class ArrivalSource:
    """Iterator-style protocol a load-generating client drives."""

    #: Stamped by :meth:`next_image` for the arrival it returned.
    last_phase: Optional[str] = None
    last_user: Optional[int] = None
    last_state: Optional[str] = None
    last_key: Optional[int] = None

    #: The rate envelope, when known (telemetry rate views).
    model: Optional[ArrivalModel] = None

    def next_interval(self, now: float) -> Optional[float]:
        """Seconds until the next arrival, or ``None`` when exhausted."""
        raise NotImplementedError

    def next_image(self):
        """Payload of the arrival announced by :meth:`next_interval`."""
        raise NotImplementedError


class ConstantSource(ArrivalSource):
    """Homogeneous Poisson arrivals, draw-for-draw identical to the
    legacy ``OpenLoopClient``/fleet generators.

    This is what the ``rate=`` deprecation shims map onto: interval
    from ``expovariate(rate)`` on ``{prefix}:arrivals``, image from
    ``{prefix}:images`` — the exact legacy stream names and draw
    order, so migrating to ``Workload.constant`` is bit-identical.
    """

    def __init__(
        self,
        rate: float,
        dataset: Dataset,
        streams: RandomStreams,
        prefix: str = "client",
        duration_seconds: Optional[float] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.dataset = dataset
        self.duration_seconds = duration_seconds
        self._arrival_rng = streams.stream(f"{prefix}:arrivals")
        self._image_rng = streams.stream(f"{prefix}:images")

    def next_interval(self, now: float) -> Optional[float]:
        interval = self._arrival_rng.expovariate(self.rate)
        if (self.duration_seconds is not None
                and now + interval > self.duration_seconds):
            return None
        return interval

    def next_image(self):
        return self.dataset.sample(self._image_rng)


class SyntheticSource(ArrivalSource):
    """Time-varying Poisson arrivals via Lewis-Shedler thinning, with
    optional per-user Markov sessions layered on top.

    Without sessions, each thinned point is one request.  With a
    session model, each thinned point *starts a session* and the
    source lazily merges the per-user request streams through a heap —
    the next emitted request is always the earliest pending one, and
    every RNG draw happens at a deterministic position in that order.
    """

    def __init__(
        self,
        model: ArrivalModel,
        dataset: Dataset,
        streams: RandomStreams,
        prefix: str = "client",
        sessions: Optional[MarkovSessionModel] = None,
        duration_seconds: Optional[float] = None,
        start_time: float = 0.0,
    ) -> None:
        self.model = model.validate()
        self.dataset = dataset
        self.sessions = sessions
        self.duration_seconds = duration_seconds
        self._arrival_rng = streams.stream(f"{prefix}:arrivals")
        self._image_rng = streams.stream(f"{prefix}:images")
        self._session_rng = (
            streams.stream(f"{prefix}:sessions") if sessions is not None else None
        )
        self._peak = self.model.peak_rate()
        self._clock = float(start_time)  # thinning candidate clock
        self._users = 0
        #: (time, tiebreak, user, state, iterator) — pending per-user
        #: next requests; tiebreak keeps heap order total and stable.
        self._heap: List[Tuple[float, int, int, str, Iterator]] = []
        self._tiebreak = 0
        #: Next accepted session-start/arrival time (one-step lookahead),
        #: or None once the envelope is exhausted.
        self._next_start: Optional[float] = self._draw_start()
        self._pending: Optional[Tuple[float, Optional[int], Optional[str]]] = None

    # -- thinning ------------------------------------------------------------

    def _draw_start(self) -> Optional[float]:
        """Next accepted point of the non-homogeneous process (lazy)."""
        rng = self._arrival_rng
        peak = self._peak
        t = self._clock
        for _ in range(_MAX_THINNING_CANDIDATES):
            t += rng.expovariate(peak)
            if self.duration_seconds is not None and t > self.duration_seconds:
                self._clock = t
                return None
            # Accept with probability rate(t)/peak; rejected candidates
            # are exactly how zero-rate gaps pass without emitting.
            if rng.random() * peak <= self.model.rate_at(t):
                self._clock = t
                return t
        raise RuntimeError(
            f"thinning drew {_MAX_THINNING_CANDIDATES} candidates without an "
            f"accept — arrival model {self.model.name!r} is effectively zero")

    # -- merge ---------------------------------------------------------------

    def _push_session(self, user: int, iterator: Iterator) -> None:
        entry = next(iterator, None)
        if entry is None:
            return
        t, state = entry
        self._tiebreak += 1
        heapq.heappush(self._heap, (t, self._tiebreak, user, state, iterator))

    def next_interval(self, now: float) -> Optional[float]:
        if self.sessions is None:
            start = self._next_start
            if start is None:
                return None
            self._next_start = self._draw_start()
            self._pending = (start, None, None)
            return max(0.0, start - now)
        # Merge: earliest of (next session start, earliest queued request).
        while True:
            head = self._heap[0][0] if self._heap else None
            start = self._next_start
            if start is not None and (head is None or start <= head):
                # A new session begins: enqueue its first request and
                # loop (that request may itself be the earliest event).
                self._users += 1
                user = self._users
                self._push_session(
                    user, self.sessions.requests(start, self._session_rng))
                self._next_start = self._draw_start()
                continue
            if head is None:
                return None  # no sessions left and the envelope is done
            t, _, user, state, iterator = heapq.heappop(self._heap)
            self._push_session(user, iterator)  # schedule the follow-up
            self._pending = (t, user, state)
            return max(0.0, t - now)

    def next_image(self):
        if self._pending is None:
            raise RuntimeError("next_image() before next_interval()")
        t, user, state = self._pending
        self._pending = None
        self.last_phase = self.model.phase_at(t)
        self.last_user = user
        self.last_state = state
        sample_index = getattr(self.dataset, "sample_index", None)
        if sample_index is not None:
            self.last_key = sample_index(self._image_rng)
            return self.dataset.catalog[self.last_key]
        self.last_key = None
        return self.dataset.sample(self._image_rng)


class ReplaySource(ArrivalSource):
    """Replays a recorded trace, event for event, lazily.

    Events carrying a catalog key map straight back to the recorded
    item (no RNG draw); keyless events draw from the dataset's image
    stream, so a trace recorded without a catalog still replays
    deterministically under a fixed seed.
    """

    def __init__(
        self,
        events: Iterator[TraceEvent],
        dataset: Dataset,
        streams: RandomStreams,
        prefix: str = "client",
        model: Optional[ArrivalModel] = None,
    ) -> None:
        self._events = events
        self.dataset = dataset
        self.model = model
        self._image_rng = streams.stream(f"{prefix}:images")
        self._pending: Optional[TraceEvent] = None
        self.replayed = 0

    def next_interval(self, now: float) -> Optional[float]:
        event = next(self._events, None)
        if event is None:
            return None
        self._pending = event
        return max(0.0, event.t - now)

    def next_image(self):
        event = self._pending
        if event is None:
            raise RuntimeError("next_image() before next_interval()")
        self._pending = None
        self.replayed += 1
        self.last_phase = event.phase
        self.last_user = event.user
        self.last_state = event.state
        self.last_key = event.key
        if event.key is not None:
            catalog = getattr(self.dataset, "catalog", None)
            if catalog is None:
                raise ValueError(
                    "trace event carries a catalog key but the replay "
                    f"dataset {self.dataset.name!r} has no catalog")
            if not 0 <= event.key < len(catalog):
                raise ValueError(
                    f"trace catalog key {event.key} outside the replay "
                    f"catalog of {len(catalog)} items")
            return catalog[event.key]
        return self.dataset.sample(self._image_rng)
