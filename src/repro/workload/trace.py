"""Compact trace record/replay format: JSONL, optionally gzipped.

A trace file is a header line followed by one event per line:

    {"format": "repro-trace-v1", "name": ..., "seed": ..., "workload": {...}}
    {"t": 0.01371, "p": "night"}
    {"t": 0.09822, "p": "night", "k": 17, "u": 4, "s": "burst"}
    ...

Event fields (all but ``t`` optional, omitted when null to keep a
100M-event day compact):

- ``t``: absolute arrival time in simulated seconds (strictly
  non-decreasing);
- ``k``: catalog index of the requested item, when the workload's
  dataset has a finite catalog (``ZipfDataset``) — replay maps it back
  to the identical image;
- ``u``: user/session id for session-model workloads;
- ``s``: session state ("browse", "burst", ...) the request was issued
  from;
- ``p``: workload phase label at the arrival ("day", "flash", ...).

Determinism is the whole point: synthesis is a pure function of
``(workload, seed)``, the writer emits canonical JSON (sorted keys,
``repr``-exact floats) and gzips with a zeroed mtime, so the same spec
always produces byte-identical files, and :func:`trace_digest` (SHA-256
over the *uncompressed* bytes) pins a trace across platforms.

Reading is lazy end to end — :func:`read_trace` returns an iterator
over the open file, so replaying a trace never materializes the event
list in memory (see :class:`~repro.workload.source.ReplaySource`).
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import os
from typing import Dict, Iterable, Iterator, Optional, Tuple

__all__ = [
    "TRACE_FORMAT",
    "TraceEvent",
    "TraceMeta",
    "write_trace",
    "read_trace",
    "read_trace_meta",
    "trace_digest",
    "describe_trace",
]

TRACE_FORMAT = "repro-trace-v1"


class TraceEvent:
    """One request arrival in a trace."""

    __slots__ = ("t", "key", "user", "state", "phase")

    def __init__(
        self,
        t: float,
        key: Optional[int] = None,
        user: Optional[int] = None,
        state: Optional[str] = None,
        phase: Optional[str] = None,
    ) -> None:
        self.t = t
        self.key = key
        self.user = user
        self.state = state
        self.phase = phase

    def __repr__(self) -> str:
        return f"<TraceEvent t={self.t:.6f} key={self.key} user={self.user}>"

    def __eq__(self, other) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (self.t, self.key, self.user, self.state, self.phase) == (
            other.t, other.key, other.user, other.state, other.phase)

    def to_line(self) -> str:
        """Canonical JSON line (sorted keys, nulls omitted)."""
        record: Dict[str, object] = {"t": self.t}
        if self.key is not None:
            record["k"] = self.key
        if self.user is not None:
            record["u"] = self.user
        if self.state is not None:
            record["s"] = self.state
        if self.phase is not None:
            record["p"] = self.phase
        return json.dumps(record, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_line(cls, line: str) -> "TraceEvent":
        record = json.loads(line)
        return cls(
            t=float(record["t"]),
            key=record.get("k"),
            user=record.get("u"),
            state=record.get("s"),
            phase=record.get("p"),
        )


class TraceMeta:
    """Trace header: provenance needed to re-synthesize or replay."""

    __slots__ = ("name", "seed", "duration_seconds", "workload", "extras")

    def __init__(
        self,
        name: str = "trace",
        seed: int = 0,
        duration_seconds: Optional[float] = None,
        workload: Optional[Dict[str, object]] = None,
        extras: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.seed = int(seed)
        self.duration_seconds = duration_seconds
        self.workload = workload
        self.extras = dict(extras or {})

    def to_line(self) -> str:
        record: Dict[str, object] = {
            "format": TRACE_FORMAT,
            "name": self.name,
            "seed": self.seed,
        }
        if self.duration_seconds is not None:
            record["duration_seconds"] = self.duration_seconds
        if self.workload is not None:
            record["workload"] = self.workload
        record.update(self.extras)
        return json.dumps(record, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_line(cls, line: str) -> "TraceMeta":
        record = json.loads(line)
        if record.get("format") != TRACE_FORMAT:
            raise ValueError(
                f"not a {TRACE_FORMAT} trace (header: {line[:120]!r})")
        known = {"format", "name", "seed", "duration_seconds", "workload"}
        return cls(
            name=record.get("name", "trace"),
            seed=int(record.get("seed", 0)),
            duration_seconds=record.get("duration_seconds"),
            workload=record.get("workload"),
            extras={k: v for k, v in record.items() if k not in known},
        )


def _is_gzip(path: str) -> bool:
    return path.endswith(".gz")


def write_trace(path: str, meta: TraceMeta, events: Iterable[TraceEvent]) -> int:
    """Stream ``events`` to ``path`` (gzipped iff it ends in ``.gz``).

    Events are consumed lazily — a generator of 100M events never
    lives in memory — and must be in non-decreasing time order
    (enforced; replay depends on it).  Returns the event count.

    The gzip stream is written with ``mtime=0`` so identical content
    always produces identical bytes (golden-trace tests diff files).
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    count = 0
    last_t = -float("inf")
    if _is_gzip(path):
        raw = open(path, "wb")
        # filename="" and mtime=0 keep the gzip header content-only, so
        # identical events always produce identical bytes regardless of
        # output path or wall clock.
        handle: io.TextIOBase = io.TextIOWrapper(
            gzip.GzipFile(filename="", fileobj=raw, mode="wb", mtime=0),
            encoding="utf-8", newline="\n")
    else:
        raw = None
        handle = open(path, "w", encoding="utf-8", newline="\n")
    try:
        handle.write(meta.to_line() + "\n")
        for event in events:
            if event.t < last_t:
                raise ValueError(
                    f"events must be time-ordered: {event.t} after {last_t}")
            last_t = event.t
            handle.write(event.to_line() + "\n")
            count += 1
    finally:
        handle.close()
        if raw is not None:
            raw.close()
    return count


def _open_text(path: str) -> io.TextIOBase:
    if _is_gzip(path):
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, encoding="utf-8")


def read_trace(path: str) -> Tuple[TraceMeta, Iterator[TraceEvent]]:
    """Open a trace: return its header and a *lazy* event iterator.

    The iterator holds the file open and yields events line by line;
    exhausting (or garbage-collecting) it closes the file.
    """
    handle = _open_text(path)
    try:
        header = handle.readline()
        if not header:
            raise ValueError(f"{path}: empty trace file")
        meta = TraceMeta.from_line(header)
    except Exception:
        handle.close()
        raise

    def events() -> Iterator[TraceEvent]:
        with handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield TraceEvent.from_line(line)

    return meta, events()


def read_trace_meta(path: str) -> TraceMeta:
    """Read just the header (opens and closes the file immediately)."""
    with _open_text(path) as handle:
        header = handle.readline()
    if not header:
        raise ValueError(f"{path}: empty trace file")
    return TraceMeta.from_line(header)


def trace_digest(path: str) -> str:
    """SHA-256 over the uncompressed trace bytes (platform-stable)."""
    digest = hashlib.sha256()
    opener = gzip.open if _is_gzip(path) else open
    with opener(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def describe_trace(path: str) -> Dict[str, object]:
    """One streaming pass over a trace: counts, rates, phase mix."""
    meta, events = read_trace(path)
    count = 0
    first_t = last_t = 0.0
    phases: Dict[str, int] = {}
    states: Dict[str, int] = {}
    users = set()
    keys = set()
    for event in events:
        if count == 0:
            first_t = event.t
        last_t = event.t
        count += 1
        if event.phase is not None:
            phases[event.phase] = phases.get(event.phase, 0) + 1
        if event.state is not None:
            states[event.state] = states.get(event.state, 0) + 1
        if event.user is not None:
            users.add(event.user)
        if event.key is not None:
            keys.add(event.key)
    span = (last_t - first_t) if count > 1 else 0.0
    out: Dict[str, object] = {
        "name": meta.name,
        "seed": meta.seed,
        "events": count,
        "first_t": first_t,
        "last_t": last_t,
        "mean_rate": (count / span) if span > 0 else 0.0,
        "digest": trace_digest(path),
    }
    if meta.duration_seconds is not None:
        out["duration_seconds"] = meta.duration_seconds
    if phases:
        out["phases"] = dict(sorted(phases.items()))
    if states:
        out["session_states"] = dict(sorted(states.items()))
    if users:
        out["users"] = len(users)
    if keys:
        out["distinct_items"] = len(keys)
    return out
