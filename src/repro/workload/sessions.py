"""Per-user Markov session models.

Real users do not issue independent requests: they arrive, click
through a burst of activity, pause, and leave.  A
:class:`MarkovSessionModel` captures that as a small continuous-time
Markov chain over behavioural states: each request is issued from a
state, the think time to the next request is exponential with the
state's mean, and after every request the chain either transitions
(per the row-stochastic transition matrix) or ends the session with
the state's exit probability.

Layered under a time-varying *session arrival* process (sessions start
per the workload's :class:`~repro.workload.arrivals.ArrivalModel`),
this produces the request-level burstiness and temporal correlation
that independent Poisson arrivals cannot: requests cluster per user,
and a flash crowd of session starts turns into a longer-lived wave of
request load as those sessions play out.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple

__all__ = ["MarkovSessionModel", "SessionState"]


class SessionState:
    """One behavioural state of the session chain."""

    __slots__ = ("name", "think_mean_seconds", "exit_probability")

    def __init__(self, name: str, think_mean_seconds: float,
                 exit_probability: float) -> None:
        if not name:
            raise ValueError("state needs a name")
        if think_mean_seconds <= 0:
            raise ValueError(
                f"think_mean_seconds must be positive, got {think_mean_seconds}")
        if not 0 < exit_probability <= 1:
            raise ValueError(
                f"exit_probability must be in (0, 1], got {exit_probability}")
        self.name = name
        self.think_mean_seconds = float(think_mean_seconds)
        self.exit_probability = float(exit_probability)


class MarkovSessionModel:
    """Finite-state Markov chain generating one user's request times.

    Args:
        states: the behavioural states, first one is the entry state.
        transitions: ``{state: {next_state: probability}}`` rows; each
            row must sum to 1 over the *continue* branch (the exit
            branch is taken first with the state's exit probability).
        max_requests: hard cap per session (guards mis-configured
            chains whose expected length diverges).

    The default chain is a classic two-state browse/burst model: most
    requests come from a slow "browse" state, with excursions into a
    fast "burst" state (image-upload batches, infinite-scroll runs).
    """

    def __init__(
        self,
        states: Optional[Sequence[SessionState]] = None,
        transitions: Optional[Mapping[str, Mapping[str, float]]] = None,
        max_requests: int = 256,
    ) -> None:
        if states is None:
            states = (
                SessionState("browse", think_mean_seconds=2.0, exit_probability=0.12),
                SessionState("burst", think_mean_seconds=0.15, exit_probability=0.05),
            )
            transitions = {
                "browse": {"browse": 0.85, "burst": 0.15},
                "burst": {"burst": 0.7, "browse": 0.3},
            }
        if not states:
            raise ValueError("session model needs at least one state")
        names = [state.name for state in states]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate state names in {names}")
        if transitions is None:
            transitions = {name: {name: 1.0} for name in names}
        for name in names:
            row = transitions.get(name)
            if not row:
                raise ValueError(f"state {name!r} has no transition row")
            if any(target not in names for target in row):
                raise ValueError(f"transition row {name!r} names unknown states")
            total = sum(row.values())
            if abs(total - 1.0) > 1e-9:
                raise ValueError(
                    f"transition row {name!r} sums to {total}, expected 1.0")
        if max_requests < 1:
            raise ValueError(f"max_requests must be >= 1, got {max_requests}")
        self.states: Dict[str, SessionState] = {s.name: s for s in states}
        self.entry_state = states[0].name
        self.transitions = {
            name: tuple(sorted(row.items())) for name, row in transitions.items()
        }
        self.max_requests = int(max_requests)

    @property
    def mean_session_length(self) -> float:
        """Expected requests per session, ignoring the hard cap.

        Solves ``L = 1 + (1 - exit) * P @ L`` for the entry state via
        fixed-point iteration (the chain is small).
        """
        lengths = {name: 1.0 for name in self.states}
        for _ in range(512):
            new = {}
            for name, state in self.states.items():
                cont = 1.0 - state.exit_probability
                follow = sum(p * lengths[target]
                             for target, p in self.transitions[name])
                new[name] = 1.0 + cont * follow
            if all(abs(new[k] - lengths[k]) < 1e-12 for k in lengths):
                lengths = new
                break
            lengths = new
        return min(lengths[self.entry_state], float(self.max_requests))

    def _next_state(self, current: str, rng: random.Random) -> str:
        u = rng.random()
        acc = 0.0
        row = self.transitions[current]
        for target, probability in row:
            acc += probability
            if u <= acc:
                return target
        return row[-1][0]

    def requests(self, start: float, rng: random.Random) -> Iterator[Tuple[float, str]]:
        """Lazily yield ``(time, state_name)`` for one session.

        The first request is at ``start`` (the session's arrival); every
        draw comes from ``rng`` in a fixed order, so a session is a pure
        function of ``(start, rng state)``.
        """
        state_name = self.entry_state
        t = float(start)
        for _ in range(self.max_requests):
            yield t, state_name
            state = self.states[state_name]
            if rng.random() < state.exit_probability:
                return
            t += rng.expovariate(1.0 / state.think_mean_seconds)
            state_name = self._next_state(state_name, rng)

    def describe(self) -> Dict[str, object]:
        return {
            "kind": "MarkovSessionModel",
            "entry_state": self.entry_state,
            "mean_session_length": self.mean_session_length,
            "max_requests": self.max_requests,
            "states": [
                {"name": s.name, "think_mean_seconds": s.think_mean_seconds,
                 "exit_probability": s.exit_probability}
                for s in self.states.values()
            ],
            "transitions": {
                name: dict(row) for name, row in self.transitions.items()
            },
        }


def session_model_from_dict(data: Dict[str, object]) -> Optional[MarkovSessionModel]:
    """Rebuild a session model from :meth:`MarkovSessionModel.describe`."""
    if data.get("kind") != "MarkovSessionModel":
        return None
    states = [
        SessionState(s["name"], think_mean_seconds=float(s["think_mean_seconds"]),
                     exit_probability=float(s["exit_probability"]))
        for s in data["states"]
    ]
    entry = data.get("entry_state")
    if entry is not None and states and states[0].name != entry:
        states.sort(key=lambda s: 0 if s.name == entry else 1)
    return MarkovSessionModel(
        states=states,
        transitions={name: dict(row)
                     for name, row in data["transitions"].items()},
        max_requests=int(data.get("max_requests", 256)),
    )
