"""Trace-driven planet-scale workload subsystem.

One :class:`Workload` object describes request traffic — composable
arrival processes (diurnal curves, flash crowds, regional mixes),
Zipf popularity, per-user Markov sessions — and every runner entry
point accepts it.  A synthesized workload can be recorded to a compact
JSONL(+gzip) trace and replayed bit-identically (see MODELING.md §11).
"""

from .arrivals import (
    DAY_SECONDS,
    ArrivalModel,
    ConstantRate,
    DiurnalCurve,
    FlashCrowd,
    Region,
    RegionalMix,
    Superpose,
    model_from_dict,
)
from .sessions import MarkovSessionModel, SessionState, session_model_from_dict
from .source import ArrivalSource, ConstantSource, ReplaySource, SyntheticSource
from .spec import Workload, dataset_from_dict, dataset_to_dict, synthesize_trace
from .trace import (
    TRACE_FORMAT,
    TraceEvent,
    TraceMeta,
    describe_trace,
    read_trace,
    read_trace_meta,
    trace_digest,
    write_trace,
)

__all__ = [
    "ArrivalModel",
    "ConstantRate",
    "DiurnalCurve",
    "FlashCrowd",
    "Region",
    "RegionalMix",
    "Superpose",
    "DAY_SECONDS",
    "model_from_dict",
    "MarkovSessionModel",
    "SessionState",
    "session_model_from_dict",
    "ArrivalSource",
    "ConstantSource",
    "SyntheticSource",
    "ReplaySource",
    "Workload",
    "synthesize_trace",
    "dataset_to_dict",
    "dataset_from_dict",
    "TRACE_FORMAT",
    "TraceEvent",
    "TraceMeta",
    "write_trace",
    "read_trace",
    "read_trace_meta",
    "trace_digest",
    "describe_trace",
]
